//! The TEE core: registries, sessions, dispatch and RPC.
//!
//! This is the OP-TEE kernel of the simulation. It owns the TA and PTA
//! registries, tracks sessions, reserves each application's declared memory
//! from the TrustZone secure carve-out, dispatches commands (charging the
//! calibrated dispatch costs), and services TA requests that need the
//! normal world by issuing supplicant RPCs (charging world switches).
//!
//! Entry from the normal world arrives through the secure monitor: the
//! core installs itself as the handler of the `STD_CALL_WITH_ARG` SMC and
//! picks up the client message from a shared mailbox, mirroring OP-TEE's
//! shared-memory message passing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use perisec_telemetry::Tracer;
use perisec_tz::monitor::{smc_func, SmcCall, SmcHandler, SmcResult};
use perisec_tz::platform::Platform;
use perisec_tz::secure_mem::{SecureBuf, SharedReservation};
use perisec_tz::world::World;

use crate::param::TeeParams;
use crate::pta::{PseudoTa, PtaEnv};
use crate::storage::SecureStorage;
use crate::supplicant::{RpcReply, RpcRequest, Supplicant};
use crate::ta::{TaDescriptor, TaEnv, TrustedApp};
use crate::uuid::TaUuid;
use crate::{TeeError, TeeResult};

/// Identifier of an open session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw session number.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session#{}", self.0)
    }
}

struct TaEntry {
    descriptor: TaDescriptor,
    instance: Mutex<Box<dyn TrustedApp>>,
    _reserved: Option<SecureBuf>,
    /// Content-keyed reservation for the TA's model weights, when the TA
    /// was registered through [`TeeCore::register_ta_shared`]: co-resident
    /// TAs on the same carve-out holding the same weights charge them once.
    _shared_model: Option<SharedReservation>,
}

struct PtaEntry {
    descriptor: TaDescriptor,
    instance: Mutex<Box<dyn PseudoTa>>,
    _reserved: SecureBuf,
}

/// A message submitted by the normal-world client through the mailbox.
#[derive(Debug)]
pub(crate) enum ClientMessage {
    /// Open a session to the given application.
    OpenSession {
        /// Target application.
        uuid: TaUuid,
        /// Open-session parameters.
        params: TeeParams,
    },
    /// Invoke a command on an open session.
    Invoke {
        /// Session to invoke on.
        session: SessionId,
        /// Command identifier.
        cmd: u32,
        /// Command parameters.
        params: TeeParams,
    },
    /// Invoke several commands on an open session with a single SMC — the
    /// transition-amortized path: one world-switch round trip covers the
    /// whole batch.
    InvokeBatch {
        /// Session to invoke on.
        session: SessionId,
        /// The `(command, parameters)` pairs, dispatched in order.
        calls: Vec<(u32, TeeParams)>,
    },
    /// Close a session.
    CloseSession {
        /// Session to close.
        session: SessionId,
    },
}

/// The core's reply to a client message.
#[derive(Debug)]
pub(crate) enum ClientReply {
    /// Session opened.
    SessionOpened {
        /// The new session.
        session: SessionId,
        /// Updated parameters.
        params: TeeParams,
    },
    /// Command completed.
    Invoked {
        /// Updated parameters.
        params: TeeParams,
    },
    /// Batched commands completed.
    InvokedBatch {
        /// Updated parameters of every call, in submission order.
        results: Vec<TeeParams>,
    },
    /// Session closed.
    Closed,
    /// The operation failed.
    Failed(TeeError),
}

/// The OP-TEE core.
pub struct TeeCore {
    platform: Platform,
    supplicant: Arc<Supplicant>,
    storage: SecureStorage,
    tas: RwLock<HashMap<TaUuid, Arc<TaEntry>>>,
    ptas: RwLock<HashMap<TaUuid, Arc<PtaEntry>>>,
    sessions: Mutex<HashMap<SessionId, TaUuid>>,
    next_session: AtomicU64,
    mailbox: Mutex<Option<ClientMessage>>,
    replybox: Mutex<Option<ClientReply>>,
    call_lock: Mutex<()>,
    /// The device's telemetry tracer (disabled by default; see
    /// [`TeeCore::set_tracer`]). Spans record in *virtual* time, so they
    /// never perturb the deterministic report contract.
    tracer: Mutex<Tracer>,
}

impl std::fmt::Debug for TeeCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeCore")
            .field("tas", &self.tas.read().len())
            .field("ptas", &self.ptas.read().len())
            .field("sessions", &self.sessions.lock().len())
            .finish()
    }
}

impl TeeCore {
    /// Boots a TEE core on `platform` with the given supplicant, and
    /// installs its SMC handler in the secure monitor.
    pub fn boot(platform: Platform, supplicant: Arc<Supplicant>) -> Arc<Self> {
        let storage = SecureStorage::for_platform(&platform);
        let core = Arc::new(TeeCore {
            platform,
            supplicant,
            storage,
            tas: RwLock::new(HashMap::new()),
            ptas: RwLock::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            mailbox: Mutex::new(None),
            replybox: Mutex::new(None),
            call_lock: Mutex::new(()),
            tracer: Mutex::new(Tracer::disabled()),
        });
        let handler: Arc<dyn SmcHandler> = Arc::new(TeeSmcHandler {
            core: Arc::clone(&core),
        });
        core.platform
            .monitor()
            .register_handler(smc_func::STD_CALL_WITH_ARG, handler);
        core
    }

    /// The platform this core runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The supplicant serving this core's RPCs.
    pub fn supplicant(&self) -> &Arc<Supplicant> {
        &self.supplicant
    }

    /// Installs the telemetry tracer the core records SMC-boundary spans
    /// into (`smc.call`, `tee.invoke_batch`, `tee.rpc`). Pass a clone of
    /// the device pipeline's tracer so TEE crossings land in the same
    /// trace as the pipeline stages and TA inference spans.
    pub fn set_tracer(&self, tracer: Tracer) {
        *self.tracer.lock() = tracer;
    }

    /// A clone of the installed tracer (disabled unless
    /// [`TeeCore::set_tracer`] was called). TAs use this to trace their
    /// own inference stages without threading a tracer through the TA
    /// registration API.
    pub fn tracer(&self) -> Tracer {
        self.tracer.lock().clone()
    }

    /// The secure-storage service.
    pub fn storage(&self) -> &SecureStorage {
        &self.storage
    }

    /// Registers a trusted application, reserving its declared footprint
    /// from secure RAM.
    ///
    /// # Errors
    ///
    /// * [`TeeError::BadParameters`] if a TA with the same UUID exists.
    /// * [`TeeError::OutOfMemory`] if the footprint does not fit in the
    ///   secure carve-out.
    pub fn register_ta(&self, ta: Box<dyn TrustedApp>) -> TeeResult<TaUuid> {
        self.register_ta_inner(ta, None)
    }

    /// Registers a trusted application whose declared footprint includes
    /// `model_bytes` of read-only model weights identified by the content
    /// key `model_key`. The non-model part of the footprint is reserved
    /// privately, as in [`TeeCore::register_ta`]; the model part goes
    /// through [`perisec_tz::secure_mem::SecureRam::reserve_shared`], so
    /// co-resident TAs on the same carve-out (including TAs on sibling
    /// secure cores sharing the carve-out) that host the **same** weights
    /// charge them **once** — the multi-core scheduler's secure-RAM model
    /// dedup.
    ///
    /// # Errors
    ///
    /// Same as [`TeeCore::register_ta`], plus [`TeeError::BadParameters`]
    /// if `model_bytes` exceeds the TA's declared footprint (the
    /// descriptor must account for the weights it claims to share).
    pub fn register_ta_shared(
        &self,
        ta: Box<dyn TrustedApp>,
        model_key: u64,
        model_bytes: usize,
    ) -> TeeResult<TaUuid> {
        if model_bytes > ta.descriptor().footprint_bytes() {
            return Err(TeeError::BadParameters {
                reason: format!(
                    "shared model ({model_bytes} B) exceeds the ta's declared footprint ({} B)",
                    ta.descriptor().footprint_bytes()
                ),
            });
        }
        self.register_ta_inner(ta, Some((model_key, model_bytes)))
    }

    fn register_ta_inner(
        &self,
        ta: Box<dyn TrustedApp>,
        shared_model: Option<(u64, usize)>,
    ) -> TeeResult<TaUuid> {
        let descriptor = ta.descriptor();
        let uuid = descriptor.uuid;
        if self.tas.read().contains_key(&uuid) {
            return Err(TeeError::BadParameters {
                reason: format!("ta {uuid} already registered"),
            });
        }
        let ram = self.platform.secure_ram();
        let (reserved, shared) = match shared_model {
            None => (
                Some(
                    ram.alloc(descriptor.footprint_bytes())
                        .map_err(TeeError::from)?,
                ),
                None,
            ),
            Some((key, model_bytes)) => {
                let private = descriptor.footprint_bytes() - model_bytes;
                let reserved = if private > 0 {
                    Some(ram.alloc(private).map_err(TeeError::from)?)
                } else {
                    None
                };
                let shared = ram
                    .reserve_shared(key, model_bytes)
                    .map_err(TeeError::from)?;
                (reserved, Some(shared))
            }
        };
        self.tas.write().insert(
            uuid,
            Arc::new(TaEntry {
                descriptor,
                instance: Mutex::new(ta),
                _reserved: reserved,
                _shared_model: shared,
            }),
        );
        Ok(uuid)
    }

    /// Registers a pseudo TA, reserving its declared footprint from secure
    /// RAM.
    ///
    /// # Errors
    ///
    /// Same as [`TeeCore::register_ta`].
    pub fn register_pta(&self, pta: Box<dyn PseudoTa>) -> TeeResult<TaUuid> {
        let descriptor = pta.descriptor();
        let uuid = descriptor.uuid;
        if self.ptas.read().contains_key(&uuid) {
            return Err(TeeError::BadParameters {
                reason: format!("pta {uuid} already registered"),
            });
        }
        let reserved = self
            .platform
            .secure_ram()
            .alloc(descriptor.footprint_bytes())
            .map_err(TeeError::from)?;
        self.ptas.write().insert(
            uuid,
            Arc::new(PtaEntry {
                descriptor,
                instance: Mutex::new(pta),
                _reserved: reserved,
            }),
        );
        Ok(uuid)
    }

    /// Unregisters a TA, releasing its reserved memory.
    ///
    /// # Errors
    ///
    /// * [`TeeError::ItemNotFound`] if the TA is unknown.
    /// * [`TeeError::AccessDenied`] if it still has open sessions.
    pub fn unregister_ta(&self, uuid: TaUuid) -> TeeResult<()> {
        if self.sessions.lock().values().any(|u| *u == uuid) {
            return Err(TeeError::AccessDenied {
                reason: format!("ta {uuid} still has open sessions"),
            });
        }
        self.tas
            .write()
            .remove(&uuid)
            .map(|_| ())
            .ok_or(TeeError::ItemNotFound {
                what: format!("ta {uuid}"),
            })
    }

    /// Number of registered TAs.
    pub fn ta_count(&self) -> usize {
        self.tas.read().len()
    }

    /// Number of registered PTAs.
    pub fn pta_count(&self) -> usize {
        self.ptas.read().len()
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Descriptors of every registered TA and PTA (used by footprint
    /// reports).
    pub fn descriptors(&self) -> Vec<TaDescriptor> {
        let mut out: Vec<TaDescriptor> = self
            .tas
            .read()
            .values()
            .map(|e| e.descriptor.clone())
            .collect();
        out.extend(self.ptas.read().values().map(|e| e.descriptor.clone()));
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    // ----- secure-world entry points -------------------------------------

    /// Opens a session to a TA or PTA (secure-world path; the normal world
    /// goes through [`crate::client::TeeClient`]).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown UUIDs or the
    /// application's own rejection.
    pub fn open_session(&self, uuid: TaUuid, params: &mut TeeParams) -> TeeResult<SessionId> {
        let cost = self.platform.cost().clone();
        self.platform.charge_cpu(World::Secure, cost.session_open);
        let session = SessionId(self.next_session.fetch_add(1, Ordering::SeqCst));
        if let Some(entry) = self.tas.read().get(&uuid).cloned() {
            self.platform.charge_cpu(World::Secure, cost.ta_dispatch);
            let mut env = TaEnv::new(self, uuid, session);
            entry.instance.lock().open_session(&mut env, params)?;
            self.sessions.lock().insert(session, uuid);
            return Ok(session);
        }
        if self.ptas.read().contains_key(&uuid) {
            self.platform.charge_cpu(World::Secure, cost.pta_dispatch);
            self.sessions.lock().insert(session, uuid);
            return Ok(session);
        }
        Err(TeeError::ItemNotFound {
            what: format!("trusted application {uuid}"),
        })
    }

    /// Invokes a command on an open session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown sessions, or the
    /// application's own error.
    pub fn invoke_command(
        &self,
        session: SessionId,
        cmd: u32,
        params: &mut TeeParams,
    ) -> TeeResult<()> {
        let uuid = *self
            .sessions
            .lock()
            .get(&session)
            .ok_or(TeeError::ItemNotFound {
                what: session.to_string(),
            })?;
        let cost = self.platform.cost().clone();
        if let Some(entry) = self.tas.read().get(&uuid).cloned() {
            self.platform.charge_cpu(World::Secure, cost.ta_dispatch);
            let mut env = TaEnv::new(self, uuid, session);
            return entry.instance.lock().invoke(&mut env, cmd, params);
        }
        if self.ptas.read().get(&uuid).is_some() {
            return self.invoke_pta(uuid, cmd, params);
        }
        Err(TeeError::TargetDead)
    }

    /// Invokes a batch of commands on an open session from the secure side,
    /// dispatching them in order. Each call still pays its dispatch cost,
    /// but — when entered through [`crate::client::TeeClient`] — the whole
    /// batch shares a single SMC and world-switch round trip, which is the
    /// point: world switches per command drop by the batch factor.
    ///
    /// This is the *generic* transition-amortization surface: any client
    /// can batch arbitrary commands to any TA. TAs may additionally expose
    /// their own batch commands (the filter TA's `PROCESS_BATCH`) when
    /// they can amortize work *behind* the boundary too — e.g. coalescing
    /// supplicant round trips — which a generic command batch cannot.
    ///
    /// The batch is not transactional: dispatch stops at the first failing
    /// call and its error is returned.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown sessions, or the
    /// first failing call's error.
    pub fn invoke_command_batched(
        &self,
        session: SessionId,
        calls: Vec<(u32, TeeParams)>,
    ) -> TeeResult<Vec<TeeParams>> {
        // Borrow the installed tracer under its lock just long enough to
        // open the span; the guard must not be held across the command
        // loop (TAs re-enter the tracer through `TaEnv::tracer`).
        let _span = {
            let tracer = self.tracer.lock();
            tracer.count("tee.batched_commands", calls.len() as u64);
            tracer.span("tee.invoke_batch")
        };
        let mut results = Vec::with_capacity(calls.len());
        for (cmd, mut params) in calls {
            self.invoke_command(session, cmd, &mut params)?;
            results.push(params);
        }
        Ok(results)
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown sessions.
    pub fn close_session(&self, session: SessionId) -> TeeResult<()> {
        let uuid = self
            .sessions
            .lock()
            .remove(&session)
            .ok_or(TeeError::ItemNotFound {
                what: session.to_string(),
            })?;
        if let Some(entry) = self.tas.read().get(&uuid).cloned() {
            let mut env = TaEnv::new(self, uuid, session);
            entry.instance.lock().close_session(&mut env);
        }
        Ok(())
    }

    /// Invokes a command on a pseudo TA directly (used by TAs through
    /// [`TaEnv::invoke_pta`] and by the secure world itself).
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::ItemNotFound`] for unknown PTAs or the PTA's own
    /// error.
    pub fn invoke_pta(&self, uuid: TaUuid, cmd: u32, params: &mut TeeParams) -> TeeResult<()> {
        let entry = self
            .ptas
            .read()
            .get(&uuid)
            .cloned()
            .ok_or(TeeError::ItemNotFound {
                what: format!("pseudo ta {uuid}"),
            })?;
        self.platform
            .charge_cpu(World::Secure, self.platform.cost().pta_dispatch);
        let mut env = PtaEnv::new(&self.platform);
        let result = entry.instance.lock().invoke(&mut env, cmd, params);
        result
    }

    /// Issues a supplicant RPC on behalf of the secure world, charging the
    /// world switches, the RPC cost and the cross-world copies.
    ///
    /// # Errors
    ///
    /// Propagates the supplicant's error.
    pub fn supplicant_rpc(&self, request: RpcRequest) -> TeeResult<RpcReply> {
        let _span = self.tracer.lock().span("tee.rpc");
        let monitor = self.platform.monitor().clone();
        let out_bytes = request.payload_bytes();
        monitor.charge_cross_world_copy(out_bytes, World::Normal);
        let from = monitor.world_switch(World::Normal);
        self.platform
            .charge_cpu(World::Normal, self.platform.cost().supplicant_rpc);
        self.platform.stats().record_supplicant_rpc();
        let reply = self.supplicant.handle(request);
        // Return to whatever world we were in before the RPC (normally the
        // secure world, since RPCs originate from TAs).
        monitor.world_switch(from);
        let reply = reply?;
        monitor.charge_cross_world_copy(reply.payload_bytes(), World::Secure);
        Ok(reply)
    }

    // ----- normal-world message path --------------------------------------

    /// Submits a client message and runs it through the SMC path, returning
    /// the reply. Called by [`crate::client::TeeClient`].
    pub(crate) fn client_call(&self, message: ClientMessage) -> TeeResult<ClientReply> {
        // The span covers the whole SMC round trip: world entry, secure
        // dispatch (including any nested TA / RPC spans) and world exit.
        let _span = self.tracer.lock().span("smc.call");
        let _guard = self.call_lock.lock();
        *self.mailbox.lock() = Some(message);
        let monitor = self.platform.monitor().clone();
        monitor
            .smc(SmcCall::new(smc_func::STD_CALL_WITH_ARG))
            .map_err(|e| TeeError::Communication {
                reason: format!("smc failed: {e}"),
            })?;
        self.replybox.lock().take().ok_or(TeeError::Communication {
            reason: "tee core produced no reply".to_owned(),
        })
    }

    fn process_mailbox(&self) {
        let message = self.mailbox.lock().take();
        let reply = match message {
            None => ClientReply::Failed(TeeError::Communication {
                reason: "empty mailbox".to_owned(),
            }),
            Some(ClientMessage::OpenSession { uuid, mut params }) => {
                match self.open_session(uuid, &mut params) {
                    Ok(session) => ClientReply::SessionOpened { session, params },
                    Err(e) => ClientReply::Failed(e),
                }
            }
            Some(ClientMessage::Invoke {
                session,
                cmd,
                mut params,
            }) => match self.invoke_command(session, cmd, &mut params) {
                Ok(()) => ClientReply::Invoked { params },
                Err(e) => ClientReply::Failed(e),
            },
            Some(ClientMessage::InvokeBatch { session, calls }) => {
                match self.invoke_command_batched(session, calls) {
                    Ok(results) => ClientReply::InvokedBatch { results },
                    Err(e) => ClientReply::Failed(e),
                }
            }
            Some(ClientMessage::CloseSession { session }) => match self.close_session(session) {
                Ok(()) => ClientReply::Closed,
                Err(e) => ClientReply::Failed(e),
            },
        };
        *self.replybox.lock() = Some(reply);
    }
}

struct TeeSmcHandler {
    core: Arc<TeeCore>,
}

impl SmcHandler for TeeSmcHandler {
    fn handle(&self, _call: &SmcCall) -> SmcResult {
        self.core.process_mailbox();
        SmcResult::value(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TeeParam;

    struct EchoTa {
        descriptor: TaDescriptor,
        invocations: u32,
    }

    impl EchoTa {
        fn new() -> Self {
            EchoTa {
                descriptor: TaDescriptor::new("perisec.echo-ta", 16, 64),
                invocations: 0,
            }
        }
    }

    impl TrustedApp for EchoTa {
        fn descriptor(&self) -> TaDescriptor {
            self.descriptor.clone()
        }
        fn invoke(
            &mut self,
            env: &mut TaEnv<'_>,
            cmd: u32,
            params: &mut TeeParams,
        ) -> TeeResult<()> {
            self.invocations += 1;
            env.charge_compute(1_000);
            match cmd {
                1 => {
                    // Reverse the input buffer into the output slot.
                    let input = params.get(0).as_memref().unwrap_or(&[]).to_vec();
                    let reversed: Vec<u8> = input.iter().rev().copied().collect();
                    params.set(1, TeeParam::MemRefOutput(reversed));
                    Ok(())
                }
                2 => Err(TeeError::BadParameters {
                    reason: "command 2 always fails".to_owned(),
                }),
                _ => Err(TeeError::ItemNotFound {
                    what: format!("command {cmd}"),
                }),
            }
        }
    }

    struct CounterPta {
        descriptor: TaDescriptor,
        count: u64,
    }

    impl CounterPta {
        fn new() -> Self {
            CounterPta {
                descriptor: TaDescriptor::new("perisec.counter-pta", 8, 8),
                count: 0,
            }
        }
    }

    impl PseudoTa for CounterPta {
        fn descriptor(&self) -> TaDescriptor {
            self.descriptor.clone()
        }
        fn invoke(
            &mut self,
            _env: &mut PtaEnv<'_>,
            _cmd: u32,
            params: &mut TeeParams,
        ) -> TeeResult<()> {
            self.count += 1;
            params.set(
                0,
                TeeParam::ValueOutput {
                    a: self.count,
                    b: 0,
                },
            );
            Ok(())
        }
    }

    fn booted_core() -> Arc<TeeCore> {
        TeeCore::boot(Platform::jetson_agx_xavier(), Arc::new(Supplicant::new()))
    }

    #[test]
    fn register_and_invoke_a_ta_through_sessions() {
        let core = booted_core();
        let uuid = core.register_ta(Box::new(EchoTa::new())).unwrap();
        assert_eq!(core.ta_count(), 1);

        let mut params = TeeParams::new();
        let session = core.open_session(uuid, &mut params).unwrap();
        assert_eq!(core.session_count(), 1);

        let mut params = TeeParams::new().with(0, TeeParam::MemRefInput(vec![1, 2, 3]));
        core.invoke_command(session, 1, &mut params).unwrap();
        assert_eq!(params.get(1).as_memref().unwrap(), &[3, 2, 1]);

        assert!(core
            .invoke_command(session, 2, &mut TeeParams::new())
            .is_err());
        core.close_session(session).unwrap();
        assert_eq!(core.session_count(), 0);
        assert!(core
            .invoke_command(session, 1, &mut TeeParams::new())
            .is_err());
    }

    #[test]
    fn duplicate_registration_and_unknown_uuid_are_rejected() {
        let core = booted_core();
        core.register_ta(Box::new(EchoTa::new())).unwrap();
        assert!(core.register_ta(Box::new(EchoTa::new())).is_err());
        let unknown = TaUuid::from_name("perisec.unknown");
        assert!(matches!(
            core.open_session(unknown, &mut TeeParams::new()),
            Err(TeeError::ItemNotFound { .. })
        ));
    }

    #[test]
    fn ta_registration_reserves_secure_memory() {
        let core = booted_core();
        let before = core.platform().secure_ram().bytes_in_use();
        core.register_ta(Box::new(EchoTa::new())).unwrap();
        let after = core.platform().secure_ram().bytes_in_use();
        assert_eq!(after - before, (16 + 64) * 1024);
        // A TA that does not fit is rejected with OutOfMemory.
        struct HugeTa;
        impl TrustedApp for HugeTa {
            fn descriptor(&self) -> TaDescriptor {
                TaDescriptor::new("perisec.huge-ta", 1024, 64 * 1024)
            }
            fn invoke(&mut self, _: &mut TaEnv<'_>, _: u32, _: &mut TeeParams) -> TeeResult<()> {
                Ok(())
            }
        }
        assert!(matches!(
            core.register_ta(Box::new(HugeTa)),
            Err(TeeError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn shared_model_registration_charges_weights_once() {
        struct ModelTa(&'static str);
        impl TrustedApp for ModelTa {
            fn descriptor(&self) -> TaDescriptor {
                // 16 KiB stack + 64 KiB private data + 256 KiB of model.
                TaDescriptor::new(self.0, 16, 64 + 256)
            }
            fn invoke(&mut self, _: &mut TaEnv<'_>, _: u32, _: &mut TeeParams) -> TeeResult<()> {
                Ok(())
            }
        }
        const MODEL_BYTES: usize = 256 * 1024;
        const MODEL_KEY: u64 = 0x5EED;
        let core = booted_core();
        let ram = core.platform().secure_ram().clone();
        let before = ram.bytes_in_use();
        let a = core
            .register_ta_shared(Box::new(ModelTa("perisec.model-a")), MODEL_KEY, MODEL_BYTES)
            .unwrap();
        let after_first = ram.bytes_in_use();
        assert!(after_first - before >= (16 + 64 + 256) * 1024);
        // A second TA with the same weights: only its private part is new.
        let b = core
            .register_ta_shared(Box::new(ModelTa("perisec.model-b")), MODEL_KEY, MODEL_BYTES)
            .unwrap();
        let after_second = ram.bytes_in_use();
        assert_eq!(after_second - after_first, (16 + 64) * 1024);
        assert!(ram.dedup_saved_bytes() >= MODEL_BYTES as u64);
        assert_eq!(ram.dedup_hits(), 1);
        // Unregistering one TA keeps the shared weights; the last frees.
        core.unregister_ta(a).unwrap();
        assert!(ram.bytes_in_use() >= (16 + 64 + 256) * 1024);
        core.unregister_ta(b).unwrap();
        assert_eq!(ram.bytes_in_use(), before);
        // A model larger than the declared footprint is rejected loudly.
        assert!(matches!(
            core.register_ta_shared(
                Box::new(ModelTa("perisec.model-c")),
                MODEL_KEY,
                (16 + 64 + 256) * 1024 + 1
            ),
            Err(TeeError::BadParameters { .. })
        ));
    }

    #[test]
    fn unregister_fails_while_sessions_open_then_succeeds() {
        let core = booted_core();
        let uuid = core.register_ta(Box::new(EchoTa::new())).unwrap();
        let session = core.open_session(uuid, &mut TeeParams::new()).unwrap();
        assert!(core.unregister_ta(uuid).is_err());
        core.close_session(session).unwrap();
        core.unregister_ta(uuid).unwrap();
        assert_eq!(core.ta_count(), 0);
        assert!(core.unregister_ta(uuid).is_err());
    }

    #[test]
    fn pta_invocation_from_secure_world_has_no_world_switch() {
        let core = booted_core();
        let uuid = core.register_pta(Box::new(CounterPta::new())).unwrap();
        let switches_before = core.platform().stats().world_switches();
        let mut params = TeeParams::new();
        core.invoke_pta(uuid, 0, &mut params).unwrap();
        core.invoke_pta(uuid, 0, &mut params).unwrap();
        assert_eq!(params.get(0).as_values().unwrap().0, 2);
        assert_eq!(core.platform().stats().world_switches(), switches_before);
    }

    #[test]
    fn sessions_can_target_ptas() {
        let core = booted_core();
        let uuid = core.register_pta(Box::new(CounterPta::new())).unwrap();
        let session = core.open_session(uuid, &mut TeeParams::new()).unwrap();
        let mut params = TeeParams::new();
        core.invoke_command(session, 0, &mut params).unwrap();
        assert_eq!(params.get(0).as_values().unwrap().0, 1);
        core.close_session(session).unwrap();
    }

    #[test]
    fn supplicant_rpc_charges_switches_and_counts() {
        let core = booted_core();
        let stats_before = core.platform().stats().snapshot();
        core.supplicant_rpc(RpcRequest::FsWrite {
            path: "obj".into(),
            data: vec![0u8; 256],
        })
        .unwrap();
        let stats_after = core.platform().stats().snapshot();
        let delta = stats_after.delta_since(&stats_before);
        assert_eq!(delta.supplicant_rpcs, 1);
        assert!(delta.bytes_to_normal >= 256);
        // The RPC switched out of and back into the current world.
        assert_eq!(core.platform().monitor().current_world(), World::Normal);
    }

    #[test]
    fn descriptors_lists_tas_and_ptas() {
        let core = booted_core();
        core.register_ta(Box::new(EchoTa::new())).unwrap();
        core.register_pta(Box::new(CounterPta::new())).unwrap();
        let names: Vec<String> = core.descriptors().iter().map(|d| d.name.clone()).collect();
        assert_eq!(names, vec!["perisec.counter-pta", "perisec.echo-ta"]);
    }
}
