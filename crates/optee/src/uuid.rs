//! Trusted-application UUIDs.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 128-bit identifier for a TA or PTA, in the GlobalPlatform style
/// (`xxxxxxxx-xxxx-xxxx-xxxx-xxxxxxxxxxxx`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaUuid(pub [u8; 16]);

impl TaUuid {
    /// Creates a UUID from raw bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        TaUuid(bytes)
    }

    /// Derives a stable UUID from a human-readable name. Handy for tests
    /// and for the repository's built-in TAs.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, spread across the 16 bytes.
        let mut bytes = [0u8; 16];
        let mut hash: u64 = 0xcbf29ce484222325;
        for (i, b) in name.bytes().enumerate() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
            bytes[i % 16] ^= (hash >> ((i % 8) * 8)) as u8;
        }
        bytes[..8].copy_from_slice(&hash.to_be_bytes());
        TaUuid(bytes)
    }

    /// The raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Display for TaUuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = &self.0;
        write!(
            f,
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

/// Error parsing a textual UUID.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseUuidError;

impl fmt::Display for ParseUuidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid uuid syntax")
    }
}

impl std::error::Error for ParseUuidError {}

impl FromStr for TaUuid {
    type Err = ParseUuidError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let hex: String = s.chars().filter(|c| *c != '-').collect();
        if hex.len() != 32 {
            return Err(ParseUuidError);
        }
        let mut bytes = [0u8; 16];
        for i in 0..16 {
            bytes[i] =
                u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).map_err(|_| ParseUuidError)?;
        }
        Ok(TaUuid(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_round_trip() {
        let uuid = TaUuid::from_bytes([
            0x8a, 0xaa, 0xf2, 0x00, 0x24, 0x50, 0x11, 0xe4, 0xab, 0xe2, 0x00, 0x02, 0xa5, 0xd5,
            0xc5, 0x1b,
        ]);
        let text = uuid.to_string();
        assert_eq!(text, "8aaaf200-2450-11e4-abe2-0002a5d5c51b");
        assert_eq!(text.parse::<TaUuid>().unwrap(), uuid);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not-a-uuid".parse::<TaUuid>().is_err());
        assert!("8aaaf200245011e4abe20002a5d5c5".parse::<TaUuid>().is_err());
        assert!("8aaaf200-2450-11e4-abe2-0002a5d5c5zz"
            .parse::<TaUuid>()
            .is_err());
    }

    #[test]
    fn from_name_is_stable_and_distinct() {
        let a = TaUuid::from_name("perisec.filter-ta");
        let b = TaUuid::from_name("perisec.filter-ta");
        let c = TaUuid::from_name("perisec.i2s-pta");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
