//! Attested-ingest wire format and the session-ingest service seam.
//!
//! The sharded ingest plane (crate `perisec-ingest`) terminates the same
//! explicit-sequence secure channel as [`crate::MockCloudService`], but
//! gates record acceptance behind a per-session attestation handshake:
//! the device proves its TA measurement together with a monotonic
//! attestation counter, and the shard answers with a *session epoch*.
//! Every data record then carries the epoch it was sealed under. When a
//! shard crashes and restarts, its volatile channel state is gone; the
//! session must re-attest (bumping the epoch), and records sealed under
//! the old epoch are rejected loudly instead of being silently replayed
//! into a rolled-back dedup window — the state-rollback fence the
//! confidential-computing literature asks of enclave restarts.
//!
//! Everything here is deliberately transport-only: the attestation
//! request and every reply ride inside ordinary explicit records
//! ([`crate::tls`] is unchanged), with attestation traffic carved out of
//! the sequence space above [`ATTEST_SEQ_BASE`] so its nonces can never
//! collide with data records.

use crate::cloud::CloudReport;

/// Explicit-record sequences at or above this value are attestation
/// handshake traffic, not data. The data path never gets close: devices
/// send a few thousand records per scenario, not 2^63.
pub const ATTEST_SEQ_BASE: u64 = 1 << 63;

/// Length of a TA measurement (a SHA-256-sized digest in a real remote
/// attestation flow; a deterministic hash here).
pub const MEASUREMENT_LEN: usize = 32;

/// First plaintext byte of an attestation request record.
pub const ATTEST_REQUEST_TAG: u8 = 0xA7;

/// Reply codes: the first plaintext byte of every reply an ingest shard
/// seals back to the device.
pub mod reply {
    /// Record accepted (or re-acked); the rest of the reply is the AVS
    /// directive, byte-for-byte what the direct cloud path would send.
    pub const ACK: u8 = 0x41;
    /// Attestation accepted; the rest is the granted epoch (u64 LE).
    pub const ATTEST_GRANT: u8 = 0x47;
    /// Attestation refused (unknown measurement, or a replayed /
    /// rolled-back monotonic counter).
    pub const ATTEST_REJECT: u8 = 0x52;
    /// Data record refused: the session has not attested to this shard
    /// incarnation yet.
    pub const NEED_ATTEST: u8 = 0x4e;
    /// Data record refused: sealed under a superseded epoch; the rest is
    /// the currently granted epoch (u64 LE).
    pub const STALE_EPOCH: u8 = 0x53;
    /// Data record refused: the session's ingest queue is full; the rest
    /// is the queue depth at rejection (u64 LE).
    pub const BACKPRESSURE: u8 = 0x42;
}

/// Derives the measurement of a trusted application from its name — the
/// simulation's stand-in for hashing the TA binary. Deterministic, so
/// device and plane agree without any shared state.
pub fn measurement_of(ta_name: &str) -> [u8; MEASUREMENT_LEN] {
    let mut out = [0u8; MEASUREMENT_LEN];
    let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
    for &b in ta_name.as_bytes() {
        acc = splitmix(acc ^ u64::from(b));
    }
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        acc = splitmix(acc ^ i as u64);
        chunk.copy_from_slice(&acc.to_le_bytes());
    }
    out
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Encodes an attestation request plaintext: tag, measurement, counter.
pub fn encode_attest_request(measurement: &[u8; MEASUREMENT_LEN], counter: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + MEASUREMENT_LEN + 8);
    out.push(ATTEST_REQUEST_TAG);
    out.extend_from_slice(measurement);
    out.extend_from_slice(&counter.to_le_bytes());
    out
}

/// Decodes an attestation request plaintext.
pub fn decode_attest_request(plain: &[u8]) -> Option<([u8; MEASUREMENT_LEN], u64)> {
    if plain.len() != 1 + MEASUREMENT_LEN + 8 || plain[0] != ATTEST_REQUEST_TAG {
        return None;
    }
    let mut measurement = [0u8; MEASUREMENT_LEN];
    measurement.copy_from_slice(&plain[1..1 + MEASUREMENT_LEN]);
    let mut counter = [0u8; 8];
    counter.copy_from_slice(&plain[1 + MEASUREMENT_LEN..]);
    Some((measurement, u64::from_le_bytes(counter)))
}

/// Prefixes an event plaintext with the epoch it is sealed under.
pub fn encode_ingest_record(epoch: u64, event: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + event.len());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(event);
    out
}

/// Splits an ingest record plaintext into (epoch, event bytes).
pub fn decode_ingest_record(plain: &[u8]) -> Option<(u64, &[u8])> {
    if plain.len() < 8 {
        return None;
    }
    let mut epoch = [0u8; 8];
    epoch.copy_from_slice(&plain[..8]);
    Some((u64::from_le_bytes(epoch), &plain[8..]))
}

/// A decoded ingest-plane reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestReply {
    /// Record accepted; carries the AVS directive bytes verbatim.
    Ack(Vec<u8>),
    /// Attestation accepted at this epoch.
    AttestGrant {
        /// The session epoch granted to the attesting device.
        epoch: u64,
    },
    /// Attestation refused.
    AttestReject,
    /// Data refused until the session attests to this incarnation.
    NeedAttest,
    /// Data refused: sealed under a superseded epoch.
    StaleEpoch {
        /// The epoch the shard currently honours.
        granted: u64,
    },
    /// Data refused: the session's bounded ingest queue is full.
    Backpressure {
        /// Stash depth at the moment of rejection.
        depth: u64,
    },
}

impl IngestReply {
    /// Encodes the reply plaintext (code byte plus payload).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            IngestReply::Ack(directive) => {
                let mut out = Vec::with_capacity(1 + directive.len());
                out.push(reply::ACK);
                out.extend_from_slice(directive);
                out
            }
            IngestReply::AttestGrant { epoch } => {
                let mut out = vec![reply::ATTEST_GRANT];
                out.extend_from_slice(&epoch.to_le_bytes());
                out
            }
            IngestReply::AttestReject => vec![reply::ATTEST_REJECT],
            IngestReply::NeedAttest => vec![reply::NEED_ATTEST],
            IngestReply::StaleEpoch { granted } => {
                let mut out = vec![reply::STALE_EPOCH];
                out.extend_from_slice(&granted.to_le_bytes());
                out
            }
            IngestReply::Backpressure { depth } => {
                let mut out = vec![reply::BACKPRESSURE];
                out.extend_from_slice(&depth.to_le_bytes());
                out
            }
        }
    }

    /// Decodes a reply plaintext.
    pub fn decode(plain: &[u8]) -> Option<IngestReply> {
        let (&code, rest) = plain.split_first()?;
        let word = |rest: &[u8]| -> Option<u64> {
            let mut b = [0u8; 8];
            b.copy_from_slice(rest.get(..8)?);
            Some(u64::from_le_bytes(b))
        };
        match code {
            reply::ACK => Some(IngestReply::Ack(rest.to_vec())),
            reply::ATTEST_GRANT => Some(IngestReply::AttestGrant { epoch: word(rest)? }),
            reply::ATTEST_REJECT => Some(IngestReply::AttestReject),
            reply::NEED_ATTEST => Some(IngestReply::NeedAttest),
            reply::STALE_EPOCH => Some(IngestReply::StaleEpoch {
                granted: word(rest)?,
            }),
            reply::BACKPRESSURE => Some(IngestReply::Backpressure { depth: word(rest)? }),
            _ => None,
        }
    }
}

/// The service seam the sharded ingest plane implements and the device
/// pipeline consumes. Time is passed as nanoseconds since boot of the
/// caller's virtual clock, so the plane can evaluate its crash schedule
/// without this crate depending on the clock types.
pub trait SessionIngest: std::fmt::Debug + Send + Sync {
    /// Handles one wire request from `session`, observed at `now_ns` on
    /// the session's virtual clock. Returns the wire reply (empty for
    /// "no answer" — a down shard, or an unauthenticated record).
    fn handle(&self, session: u64, now_ns: u64, request: &[u8]) -> Vec<u8>;

    /// Everything committed for one session, in commit order — the
    /// sharded equivalent of [`crate::MockCloudService::report`].
    fn session_report(&self, session: u64) -> CloudReport;

    /// Clears the recorded events of one session (between experiment
    /// runs), mirroring [`crate::MockCloudService::reset`]: only the
    /// report resets; channel, journal and dedup state survive.
    fn reset_session(&self, session: u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attest_request_roundtrips() {
        let m = measurement_of("perisec.filter-ta");
        let wire = encode_attest_request(&m, 7);
        assert_eq!(decode_attest_request(&wire), Some((m, 7)));
        assert!(decode_attest_request(&wire[1..]).is_none());
        let mut bad = wire.clone();
        bad[0] = 0x00;
        assert!(decode_attest_request(&bad).is_none());
    }

    #[test]
    fn measurements_are_deterministic_and_distinct() {
        assert_eq!(measurement_of("a"), measurement_of("a"));
        assert_ne!(measurement_of("a"), measurement_of("b"));
    }

    #[test]
    fn ingest_record_roundtrips() {
        let wire = encode_ingest_record(3, b"event");
        assert_eq!(decode_ingest_record(&wire), Some((3, &b"event"[..])));
        assert!(decode_ingest_record(&wire[..7]).is_none());
    }

    #[test]
    fn replies_roundtrip() {
        let all = [
            IngestReply::Ack(b"directive".to_vec()),
            IngestReply::AttestGrant { epoch: 2 },
            IngestReply::AttestReject,
            IngestReply::NeedAttest,
            IngestReply::StaleEpoch { granted: 5 },
            IngestReply::Backpressure { depth: 9 },
        ];
        for reply in all {
            assert_eq!(IngestReply::decode(&reply.encode()), Some(reply));
        }
        assert!(IngestReply::decode(&[0xff]).is_none());
        assert!(IngestReply::decode(&[]).is_none());
    }
}
