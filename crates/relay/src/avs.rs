//! A compact Alexa-Voice-Service-style message encoding.
//!
//! The real AVS speaks HTTP/2 with JSON envelopes; the relay only needs the
//! information content, so the simulator uses a small tag-length-value
//! binary encoding. What matters for the experiments is *what* reaches the
//! cloud (dialog ids, transcripts, audio payloads), which this encoding
//! carries faithfully.

use serde::{Deserialize, Serialize};

use crate::{RelayError, Result};

const TAG_RECOGNIZE: u8 = 0x10;
const TAG_TEXT: u8 = 0x11;
const TAG_PING: u8 = 0x12;
const TAG_DIRECTIVE_ACK: u8 = 0x20;
const TAG_DIRECTIVE_SPEAK: u8 = 0x21;

/// An event sent from the device to the cloud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvsEvent {
    /// A voice request: the captured (already filtered) audio for a dialog.
    Recognize {
        /// Dialog identifier (the scenario event id in experiments).
        dialog_id: u64,
        /// Encoded audio payload.
        audio: Vec<u8>,
    },
    /// A transcribed request (text modality).
    TextMessage {
        /// Dialog identifier.
        dialog_id: u64,
        /// The transcript text.
        text: String,
    },
    /// Keep-alive.
    Ping,
}

impl AvsEvent {
    /// Serializes the event.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AvsEvent::Recognize { dialog_id, audio } => {
                let mut out = vec![TAG_RECOGNIZE];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(audio.len() as u32).to_be_bytes());
                out.extend_from_slice(audio);
                out
            }
            AvsEvent::TextMessage { dialog_id, text } => {
                let mut out = vec![TAG_TEXT];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(text.len() as u32).to_be_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
            AvsEvent::Ping => vec![TAG_PING],
        }
    }

    /// Deserializes an event.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Codec`] for truncated or unknown messages.
    pub fn decode(data: &[u8]) -> Result<AvsEvent> {
        let tag = *data.first().ok_or(RelayError::Codec {
            reason: "empty event".to_owned(),
        })?;
        match tag {
            TAG_PING => Ok(AvsEvent::Ping),
            TAG_RECOGNIZE | TAG_TEXT => {
                if data.len() < 13 {
                    return Err(RelayError::Codec {
                        reason: "event header truncated".to_owned(),
                    });
                }
                let dialog_id = u64::from_be_bytes(data[1..9].try_into().expect("8 bytes"));
                let len = u32::from_be_bytes(data[9..13].try_into().expect("4 bytes")) as usize;
                if data.len() < 13 + len {
                    return Err(RelayError::Codec {
                        reason: "event payload truncated".to_owned(),
                    });
                }
                let payload = &data[13..13 + len];
                if tag == TAG_RECOGNIZE {
                    Ok(AvsEvent::Recognize {
                        dialog_id,
                        audio: payload.to_vec(),
                    })
                } else {
                    Ok(AvsEvent::TextMessage {
                        dialog_id,
                        text: String::from_utf8_lossy(payload).into_owned(),
                    })
                }
            }
            other => Err(RelayError::Codec {
                reason: format!("unknown event tag {other:#x}"),
            }),
        }
    }

    /// Size of the encoded event in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// A directive returned from the cloud to the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvsDirective {
    /// Acknowledgement of an event.
    Ack {
        /// Dialog the acknowledgement refers to.
        dialog_id: u64,
    },
    /// A spoken response to play back.
    Speak {
        /// Dialog the response refers to.
        dialog_id: u64,
        /// Response text.
        text: String,
    },
}

impl AvsDirective {
    /// Serializes the directive.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AvsDirective::Ack { dialog_id } => {
                let mut out = vec![TAG_DIRECTIVE_ACK];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out
            }
            AvsDirective::Speak { dialog_id, text } => {
                let mut out = vec![TAG_DIRECTIVE_SPEAK];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(text.len() as u32).to_be_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
        }
    }

    /// Deserializes a directive.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Codec`] for truncated or unknown messages.
    pub fn decode(data: &[u8]) -> Result<AvsDirective> {
        let tag = *data.first().ok_or(RelayError::Codec {
            reason: "empty directive".to_owned(),
        })?;
        match tag {
            TAG_DIRECTIVE_ACK => {
                if data.len() < 9 {
                    return Err(RelayError::Codec {
                        reason: "ack truncated".to_owned(),
                    });
                }
                Ok(AvsDirective::Ack {
                    dialog_id: u64::from_be_bytes(data[1..9].try_into().expect("8 bytes")),
                })
            }
            TAG_DIRECTIVE_SPEAK => {
                if data.len() < 13 {
                    return Err(RelayError::Codec {
                        reason: "speak truncated".to_owned(),
                    });
                }
                let dialog_id = u64::from_be_bytes(data[1..9].try_into().expect("8 bytes"));
                let len = u32::from_be_bytes(data[9..13].try_into().expect("4 bytes")) as usize;
                if data.len() < 13 + len {
                    return Err(RelayError::Codec {
                        reason: "speak payload truncated".to_owned(),
                    });
                }
                Ok(AvsDirective::Speak {
                    dialog_id,
                    text: String::from_utf8_lossy(&data[13..13 + len]).into_owned(),
                })
            }
            other => Err(RelayError::Codec {
                reason: format!("unknown directive tag {other:#x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let events = vec![
            AvsEvent::Ping,
            AvsEvent::Recognize { dialog_id: 7, audio: vec![1, 2, 3, 4, 5] },
            AvsEvent::TextMessage { dialog_id: 9, text: "play music kitchen".to_owned() },
        ];
        for e in events {
            let encoded = e.encode();
            assert_eq!(AvsEvent::decode(&encoded).unwrap(), e);
            assert_eq!(e.encoded_len(), encoded.len());
        }
    }

    #[test]
    fn directives_round_trip() {
        for d in [
            AvsDirective::Ack { dialog_id: 3 },
            AvsDirective::Speak { dialog_id: 3, text: "okay".to_owned() },
        ] {
            assert_eq!(AvsDirective::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(AvsEvent::decode(&[]).is_err());
        assert!(AvsEvent::decode(&[0xEE]).is_err());
        assert!(AvsEvent::decode(&[TAG_RECOGNIZE, 1, 2]).is_err());
        let mut truncated = AvsEvent::Recognize { dialog_id: 1, audio: vec![0; 100] }.encode();
        truncated.truncate(20);
        assert!(AvsEvent::decode(&truncated).is_err());
        assert!(AvsDirective::decode(&[]).is_err());
        assert!(AvsDirective::decode(&[0x77]).is_err());
        assert!(AvsDirective::decode(&[TAG_DIRECTIVE_SPEAK, 0, 0]).is_err());
    }
}
