//! A compact Alexa-Voice-Service-style message encoding.
//!
//! The real AVS speaks HTTP/2 with JSON envelopes; the relay only needs the
//! information content, so the simulator uses a small tag-length-value
//! binary encoding. What matters for the experiments is *what* reaches the
//! cloud (dialog ids, transcripts, audio payloads), which this encoding
//! carries faithfully.

use serde::{Deserialize, Serialize};

use crate::{RelayError, Result};

const TAG_RECOGNIZE: u8 = 0x10;
const TAG_TEXT: u8 = 0x11;
const TAG_PING: u8 = 0x12;
const TAG_BATCH: u8 = 0x13;
const TAG_FRAME_VERDICT: u8 = 0x14;
const TAG_DIRECTIVE_ACK: u8 = 0x20;
const TAG_DIRECTIVE_SPEAK: u8 = 0x21;
const TAG_DIRECTIVE_BATCH_ACK: u8 = 0x22;

/// An event sent from the device to the cloud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvsEvent {
    /// A voice request: the captured (already filtered) audio for a dialog.
    Recognize {
        /// Dialog identifier (the scenario event id in experiments).
        dialog_id: u64,
        /// Encoded audio payload.
        audio: Vec<u8>,
    },
    /// A transcribed request (text modality).
    TextMessage {
        /// Dialog identifier.
        dialog_id: u64,
        /// The transcript text.
        text: String,
    },
    /// Keep-alive.
    Ping,
    /// The camera modality's privacy-preserving event: the vision TA
    /// relays only this record for permitted camera traffic — a frame
    /// count and the classifier's coarse probability. Pixels never cross
    /// the TEE boundary outward.
    FrameVerdict {
        /// Dialog identifier (the camera scenario event id).
        dialog_id: u64,
        /// Number of frames the verdict covers.
        frames: u32,
        /// Sensitive probability of the window in thousandths.
        probability_milli: u16,
    },
    /// Several events delivered in one record — the transition-amortized
    /// relay path: a filter TA that processed a batch of capture windows
    /// ships every permitted utterance in a single sealed record, so the
    /// whole batch costs one supplicant send/recv round trip instead of
    /// one per utterance.
    Batch(Vec<AvsEvent>),
}

impl AvsEvent {
    /// Serializes the event.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AvsEvent::Recognize { dialog_id, audio } => {
                let mut out = vec![TAG_RECOGNIZE];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(audio.len() as u32).to_be_bytes());
                out.extend_from_slice(audio);
                out
            }
            AvsEvent::TextMessage { dialog_id, text } => {
                let mut out = vec![TAG_TEXT];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(text.len() as u32).to_be_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
            AvsEvent::Ping => vec![TAG_PING],
            AvsEvent::FrameVerdict {
                dialog_id,
                frames,
                probability_milli,
            } => {
                let mut out = vec![TAG_FRAME_VERDICT];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&frames.to_be_bytes());
                out.extend_from_slice(&probability_milli.to_be_bytes());
                out
            }
            AvsEvent::Batch(events) => {
                let mut out = vec![TAG_BATCH];
                out.extend_from_slice(&(events.len() as u32).to_be_bytes());
                for event in events {
                    let encoded = event.encode();
                    out.extend_from_slice(&(encoded.len() as u32).to_be_bytes());
                    out.extend_from_slice(&encoded);
                }
                out
            }
        }
    }

    /// Deserializes an event.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Codec`] for truncated or unknown messages,
    /// and for batches nested deeper than [`AvsEvent::MAX_BATCH_DEPTH`]
    /// (the decoder recurses per nesting level, so untrusted input must
    /// not choose the recursion depth).
    pub fn decode(data: &[u8]) -> Result<AvsEvent> {
        Self::decode_at_depth(data, 0)
    }

    /// Deepest permitted `Batch`-in-`Batch` nesting. The relay only ever
    /// produces depth 1; a small allowance is kept for future framing.
    pub const MAX_BATCH_DEPTH: usize = 4;

    fn decode_at_depth(data: &[u8], depth: usize) -> Result<AvsEvent> {
        let tag = *data.first().ok_or(RelayError::Codec {
            reason: "empty event".to_owned(),
        })?;
        match tag {
            TAG_PING => Ok(AvsEvent::Ping),
            TAG_FRAME_VERDICT => {
                if data.len() < 15 {
                    return Err(RelayError::Codec {
                        reason: "frame verdict truncated".to_owned(),
                    });
                }
                Ok(AvsEvent::FrameVerdict {
                    dialog_id: u64::from_be_bytes(data[1..9].try_into().expect("8 bytes")),
                    frames: u32::from_be_bytes(data[9..13].try_into().expect("4 bytes")),
                    probability_milli: u16::from_be_bytes(
                        data[13..15].try_into().expect("2 bytes"),
                    ),
                })
            }
            TAG_BATCH => {
                if depth >= Self::MAX_BATCH_DEPTH {
                    return Err(RelayError::Codec {
                        reason: format!("batch nesting exceeds {} levels", Self::MAX_BATCH_DEPTH),
                    });
                }
                if data.len() < 5 {
                    return Err(RelayError::Codec {
                        reason: "batch header truncated".to_owned(),
                    });
                }
                let count = u32::from_be_bytes(data[1..5].try_into().expect("4 bytes")) as usize;
                let mut events = Vec::with_capacity(count.min(1024));
                let mut offset = 5usize;
                for _ in 0..count {
                    if data.len() < offset + 4 {
                        return Err(RelayError::Codec {
                            reason: "batch entry header truncated".to_owned(),
                        });
                    }
                    let len =
                        u32::from_be_bytes(data[offset..offset + 4].try_into().expect("4 bytes"))
                            as usize;
                    offset += 4;
                    if data.len() < offset + len {
                        return Err(RelayError::Codec {
                            reason: "batch entry truncated".to_owned(),
                        });
                    }
                    events.push(AvsEvent::decode_at_depth(
                        &data[offset..offset + len],
                        depth + 1,
                    )?);
                    offset += len;
                }
                Ok(AvsEvent::Batch(events))
            }
            TAG_RECOGNIZE | TAG_TEXT => {
                if data.len() < 13 {
                    return Err(RelayError::Codec {
                        reason: "event header truncated".to_owned(),
                    });
                }
                let dialog_id = u64::from_be_bytes(data[1..9].try_into().expect("8 bytes"));
                let len = u32::from_be_bytes(data[9..13].try_into().expect("4 bytes")) as usize;
                if data.len() < 13 + len {
                    return Err(RelayError::Codec {
                        reason: "event payload truncated".to_owned(),
                    });
                }
                let payload = &data[13..13 + len];
                if tag == TAG_RECOGNIZE {
                    Ok(AvsEvent::Recognize {
                        dialog_id,
                        audio: payload.to_vec(),
                    })
                } else {
                    Ok(AvsEvent::TextMessage {
                        dialog_id,
                        text: String::from_utf8_lossy(payload).into_owned(),
                    })
                }
            }
            other => Err(RelayError::Codec {
                reason: format!("unknown event tag {other:#x}"),
            }),
        }
    }

    /// Size of the encoded event in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

/// A directive returned from the cloud to the device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AvsDirective {
    /// Acknowledgement of an event.
    Ack {
        /// Dialog the acknowledgement refers to.
        dialog_id: u64,
    },
    /// A spoken response to play back.
    Speak {
        /// Dialog the response refers to.
        dialog_id: u64,
        /// Response text.
        text: String,
    },
    /// Acknowledgement of a batched event: the dialog ids the cloud
    /// accepted, in arrival order.
    BatchAck {
        /// Acknowledged dialog ids.
        dialog_ids: Vec<u64>,
    },
}

impl AvsDirective {
    /// Serializes the directive.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AvsDirective::Ack { dialog_id } => {
                let mut out = vec![TAG_DIRECTIVE_ACK];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out
            }
            AvsDirective::Speak { dialog_id, text } => {
                let mut out = vec![TAG_DIRECTIVE_SPEAK];
                out.extend_from_slice(&dialog_id.to_be_bytes());
                out.extend_from_slice(&(text.len() as u32).to_be_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
            AvsDirective::BatchAck { dialog_ids } => {
                let mut out = vec![TAG_DIRECTIVE_BATCH_ACK];
                out.extend_from_slice(&(dialog_ids.len() as u32).to_be_bytes());
                for id in dialog_ids {
                    out.extend_from_slice(&id.to_be_bytes());
                }
                out
            }
        }
    }

    /// Deserializes a directive.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Codec`] for truncated or unknown messages.
    pub fn decode(data: &[u8]) -> Result<AvsDirective> {
        let tag = *data.first().ok_or(RelayError::Codec {
            reason: "empty directive".to_owned(),
        })?;
        match tag {
            TAG_DIRECTIVE_ACK => {
                if data.len() < 9 {
                    return Err(RelayError::Codec {
                        reason: "ack truncated".to_owned(),
                    });
                }
                Ok(AvsDirective::Ack {
                    dialog_id: u64::from_be_bytes(data[1..9].try_into().expect("8 bytes")),
                })
            }
            TAG_DIRECTIVE_SPEAK => {
                if data.len() < 13 {
                    return Err(RelayError::Codec {
                        reason: "speak truncated".to_owned(),
                    });
                }
                let dialog_id = u64::from_be_bytes(data[1..9].try_into().expect("8 bytes"));
                let len = u32::from_be_bytes(data[9..13].try_into().expect("4 bytes")) as usize;
                if data.len() < 13 + len {
                    return Err(RelayError::Codec {
                        reason: "speak payload truncated".to_owned(),
                    });
                }
                Ok(AvsDirective::Speak {
                    dialog_id,
                    text: String::from_utf8_lossy(&data[13..13 + len]).into_owned(),
                })
            }
            TAG_DIRECTIVE_BATCH_ACK => {
                if data.len() < 5 {
                    return Err(RelayError::Codec {
                        reason: "batch ack truncated".to_owned(),
                    });
                }
                let count = u32::from_be_bytes(data[1..5].try_into().expect("4 bytes")) as usize;
                if data.len() < 5 + count * 8 {
                    return Err(RelayError::Codec {
                        reason: "batch ack ids truncated".to_owned(),
                    });
                }
                let dialog_ids = (0..count)
                    .map(|i| {
                        u64::from_be_bytes(data[5 + i * 8..13 + i * 8].try_into().expect("8 bytes"))
                    })
                    .collect();
                Ok(AvsDirective::BatchAck { dialog_ids })
            }
            other => Err(RelayError::Codec {
                reason: format!("unknown directive tag {other:#x}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip() {
        let events = vec![
            AvsEvent::Ping,
            AvsEvent::Recognize {
                dialog_id: 7,
                audio: vec![1, 2, 3, 4, 5],
            },
            AvsEvent::TextMessage {
                dialog_id: 9,
                text: "play music kitchen".to_owned(),
            },
            AvsEvent::FrameVerdict {
                dialog_id: 11,
                frames: 3,
                probability_milli: 120,
            },
        ];
        for e in events {
            let encoded = e.encode();
            assert_eq!(AvsEvent::decode(&encoded).unwrap(), e);
            assert_eq!(e.encoded_len(), encoded.len());
        }
    }

    #[test]
    fn directives_round_trip() {
        for d in [
            AvsDirective::Ack { dialog_id: 3 },
            AvsDirective::Speak {
                dialog_id: 3,
                text: "okay".to_owned(),
            },
            AvsDirective::BatchAck {
                dialog_ids: vec![1, 5, 9],
            },
            AvsDirective::BatchAck {
                dialog_ids: Vec::new(),
            },
        ] {
            assert_eq!(AvsDirective::decode(&d.encode()).unwrap(), d);
        }
    }

    #[test]
    fn batched_events_round_trip() {
        let batch = AvsEvent::Batch(vec![
            AvsEvent::TextMessage {
                dialog_id: 1,
                text: "lights on".to_owned(),
            },
            AvsEvent::Recognize {
                dialog_id: 2,
                audio: vec![9u8; 37],
            },
            AvsEvent::Ping,
        ]);
        let encoded = batch.encode();
        assert_eq!(AvsEvent::decode(&encoded).unwrap(), batch);
        // Empty batches are legal (an all-dropped window batch).
        let empty = AvsEvent::Batch(Vec::new());
        assert_eq!(AvsEvent::decode(&empty.encode()).unwrap(), empty);
        // Truncations are rejected.
        let mut truncated = encoded;
        truncated.truncate(10);
        assert!(AvsEvent::decode(&truncated).is_err());
    }

    #[test]
    fn deeply_nested_batches_are_rejected_not_recursed() {
        // Nesting up to the cap round-trips.
        let mut event = AvsEvent::Ping;
        for _ in 0..AvsEvent::MAX_BATCH_DEPTH {
            event = AvsEvent::Batch(vec![event]);
        }
        assert_eq!(AvsEvent::decode(&event.encode()).unwrap(), event);
        // One level beyond the cap is a codec error, however large the
        // crafted nesting is (no stack overflow).
        let mut nested = AvsEvent::Ping.encode();
        for _ in 0..100_000 {
            let mut wrapper = vec![super::TAG_BATCH];
            wrapper.extend_from_slice(&1u32.to_be_bytes());
            wrapper.extend_from_slice(&(nested.len() as u32).to_be_bytes());
            wrapper.extend_from_slice(&nested);
            nested = wrapper;
        }
        assert!(AvsEvent::decode(&nested).is_err());
    }

    #[test]
    fn malformed_messages_are_rejected() {
        assert!(AvsEvent::decode(&[]).is_err());
        assert!(AvsEvent::decode(&[0xEE]).is_err());
        assert!(AvsEvent::decode(&[TAG_RECOGNIZE, 1, 2]).is_err());
        assert!(AvsEvent::decode(&[TAG_FRAME_VERDICT, 0, 0, 0]).is_err());
        let mut truncated = AvsEvent::Recognize {
            dialog_id: 1,
            audio: vec![0; 100],
        }
        .encode();
        truncated.truncate(20);
        assert!(AvsEvent::decode(&truncated).is_err());
        assert!(AvsDirective::decode(&[]).is_err());
        assert!(AvsDirective::decode(&[0x77]).is_err());
        assert!(AvsDirective::decode(&[TAG_DIRECTIVE_SPEAK, 0, 0]).is_err());
    }
}
