//! The mock cloud service.
//!
//! Plays the role of the untrusted cloud provider (Amazon/Google in the
//! paper): terminates the relay's secure channel, decodes AVS events, and
//! — crucially for the privacy experiments — records exactly what it
//! received. Whatever appears in [`CloudReport`] is, by definition, what
//! has been exposed to the untrusted party.

use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::avs::{AvsDirective, AvsEvent};
use crate::netsim::NetworkService;
use crate::tls::{SecureChannelServer, PSK_LEN};

/// One event as received (and understood) by the cloud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedEvent {
    /// Dialog the event belongs to.
    pub dialog_id: u64,
    /// Transcript text, if the event carried text.
    pub text: Option<String>,
    /// Audio payload size, if the event carried audio.
    pub audio_bytes: usize,
    /// Whether the event arrived over the encrypted channel.
    pub encrypted: bool,
}

/// Everything the cloud has observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudReport {
    /// Events the cloud decoded, in arrival order.
    pub events: Vec<ReceivedEvent>,
    /// Number of records that failed channel authentication.
    pub rejected_records: u64,
    /// Total application bytes received (after decryption).
    pub application_bytes: u64,
}

impl CloudReport {
    /// Dialog ids for which the cloud received any content.
    pub fn received_dialog_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.dialog_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of Recognize (audio) events received.
    pub fn recognize_count(&self) -> usize {
        self.events.iter().filter(|e| e.audio_bytes > 0).count()
    }

    /// Concatenated text received for one dialog.
    pub fn text_of(&self, dialog_id: u64) -> String {
        self.events
            .iter()
            .filter(|e| e.dialog_id == dialog_id)
            .filter_map(|e| e.text.clone())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

struct ConnectionState {
    channel: SecureChannelServer,
}

/// The mock cloud service. Register it on a [`crate::NetworkFabric`] under
/// the cloud hostname.
pub struct MockCloudService {
    psk: [u8; PSK_LEN],
    connections: Mutex<std::collections::HashMap<u64, ConnectionState>>,
    report: Mutex<CloudReport>,
    response_text: String,
}

impl std::fmt::Debug for MockCloudService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MockCloudService")
            .field("events", &self.report.lock().events.len())
            .finish()
    }
}

impl MockCloudService {
    /// Default hostname the cloud registers under.
    pub const HOST: &'static str = "avs.cloud.example";

    /// Creates the service with the device-provisioned PSK.
    pub fn new(psk: [u8; PSK_LEN]) -> Arc<Self> {
        Arc::new(MockCloudService {
            psk,
            connections: Mutex::new(std::collections::HashMap::new()),
            report: Mutex::new(CloudReport::default()),
            response_text: "okay".to_owned(),
        })
    }

    /// A snapshot of everything received so far.
    pub fn report(&self) -> CloudReport {
        self.report.lock().clone()
    }

    /// Clears the recorded events (between experiment runs).
    pub fn reset(&self) {
        *self.report.lock() = CloudReport::default();
    }

    fn record_event(&self, event: &AvsEvent, encrypted: bool) {
        let mut report = self.report.lock();
        match event {
            AvsEvent::Recognize { dialog_id, audio } => {
                report.application_bytes += audio.len() as u64;
                report.events.push(ReceivedEvent {
                    dialog_id: *dialog_id,
                    text: None,
                    audio_bytes: audio.len(),
                    encrypted,
                });
            }
            AvsEvent::TextMessage { dialog_id, text } => {
                report.application_bytes += text.len() as u64;
                report.events.push(ReceivedEvent {
                    dialog_id: *dialog_id,
                    text: Some(text.clone()),
                    audio_bytes: 0,
                    encrypted,
                });
            }
            AvsEvent::FrameVerdict {
                dialog_id,
                frames,
                probability_milli,
            } => {
                // The camera modality's whole point: the cloud learns a
                // frame count and a coarse score, never pixels.
                report.events.push(ReceivedEvent {
                    dialog_id: *dialog_id,
                    text: Some(format!(
                        "frame-verdict frames={frames} p={probability_milli}"
                    )),
                    audio_bytes: 0,
                    encrypted,
                });
            }
            AvsEvent::Ping => {}
            AvsEvent::Batch(events) => {
                // Drop the report lock before recursing into the entries.
                drop(report);
                for inner in events {
                    self.record_event(inner, encrypted);
                }
            }
        }
    }

    /// Dialog ids named by an event, in order (batch entries flattened).
    fn dialog_ids_of(event: &AvsEvent) -> Vec<u64> {
        match event {
            AvsEvent::Recognize { dialog_id, .. }
            | AvsEvent::TextMessage { dialog_id, .. }
            | AvsEvent::FrameVerdict { dialog_id, .. } => {
                vec![*dialog_id]
            }
            AvsEvent::Ping => Vec::new(),
            AvsEvent::Batch(events) => events.iter().flat_map(Self::dialog_ids_of).collect(),
        }
    }

    fn ack_for(event: &AvsEvent) -> AvsDirective {
        match event {
            AvsEvent::Recognize { dialog_id, .. }
            | AvsEvent::TextMessage { dialog_id, .. }
            | AvsEvent::FrameVerdict { dialog_id, .. } => AvsDirective::Ack {
                dialog_id: *dialog_id,
            },
            AvsEvent::Ping => AvsDirective::Ack {
                dialog_id: u64::MAX,
            },
            AvsEvent::Batch(_) => AvsDirective::BatchAck {
                dialog_ids: Self::dialog_ids_of(event),
            },
        }
    }

    fn speak_for(&self, event: &AvsEvent) -> AvsDirective {
        match event {
            AvsEvent::Recognize { dialog_id, .. } | AvsEvent::TextMessage { dialog_id, .. } => {
                AvsDirective::Speak {
                    dialog_id: *dialog_id,
                    text: self.response_text.clone(),
                }
            }
            AvsEvent::FrameVerdict { dialog_id, .. } => AvsDirective::Ack {
                dialog_id: *dialog_id,
            },
            AvsEvent::Ping => AvsDirective::Ack {
                dialog_id: u64::MAX,
            },
            AvsEvent::Batch(_) => AvsDirective::BatchAck {
                dialog_ids: Self::dialog_ids_of(event),
            },
        }
    }
}

impl NetworkService for MockCloudService {
    fn handle(&self, conn: u64, request: &[u8]) -> Vec<u8> {
        let mut connections = self.connections.lock();
        let state = connections.entry(conn).or_insert_with(|| ConnectionState {
            channel: SecureChannelServer::new(self.psk, conn),
        });
        if !state.channel.is_established() {
            // Either a handshake, or a plaintext (baseline / ablation) event.
            if let Ok(server_hello) = state.channel.process_client_hello(request) {
                return server_hello;
            }
            return match AvsEvent::decode(request) {
                Ok(event) => {
                    self.record_event(&event, false);
                    let _ = self.speak_for(&event);
                    Self::ack_for(&event).encode()
                }
                Err(_) => {
                    self.report.lock().rejected_records += 1;
                    Vec::new()
                }
            };
        }
        // Established channel: open the record, decode the event, reply
        // with a protected acknowledgement.
        match state.channel.open(request) {
            Ok(plaintext) => match AvsEvent::decode(&plaintext) {
                Ok(event) => {
                    self.record_event(&event, true);
                    let ack = Self::ack_for(&event).encode();
                    state.channel.seal(&ack).unwrap_or_default()
                }
                Err(_) => {
                    self.report.lock().rejected_records += 1;
                    Vec::new()
                }
            },
            Err(_) => {
                self.report.lock().rejected_records += 1;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::NetworkFabric;
    use crate::tls::SecureChannelClient;

    const PSK: [u8; PSK_LEN] = [7u8; PSK_LEN];

    fn fabric_with_cloud() -> (NetworkFabric, Arc<MockCloudService>) {
        let fabric = NetworkFabric::new();
        let cloud = MockCloudService::new(PSK);
        fabric.register_service(MockCloudService::HOST, cloud.clone());
        (fabric, cloud)
    }

    #[test]
    fn encrypted_events_reach_the_cloud_and_are_acked() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let mut client = SecureChannelClient::new(PSK, 99);
        transport.send(&client.client_hello()).unwrap();
        let server_hello = transport.recv(1024).unwrap();
        client.process_server_hello(&server_hello).unwrap();

        let event = AvsEvent::TextMessage {
            dialog_id: 5,
            text: "play music".to_owned(),
        };
        transport
            .send(&client.seal(&event.encode()).unwrap())
            .unwrap();
        let reply = transport.recv(4096).unwrap();
        let directive = AvsDirective::decode(&client.open(&reply).unwrap()).unwrap();
        assert_eq!(directive, AvsDirective::Ack { dialog_id: 5 });

        let report = cloud.report();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].text.as_deref(), Some("play music"));
        assert!(report.events[0].encrypted);
        assert_eq!(report.received_dialog_ids(), vec![5]);
        assert_eq!(report.text_of(5), "play music");
    }

    #[test]
    fn plaintext_events_are_accepted_and_marked_unencrypted() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let event = AvsEvent::Recognize {
            dialog_id: 2,
            audio: vec![0u8; 320],
        };
        transport.send(&event.encode()).unwrap();
        let ack = AvsDirective::decode(&transport.recv(64).unwrap()).unwrap();
        assert_eq!(ack, AvsDirective::Ack { dialog_id: 2 });
        let report = cloud.report();
        assert_eq!(report.recognize_count(), 1);
        assert!(!report.events[0].encrypted);
        assert_eq!(report.application_bytes, 320);
    }

    #[test]
    fn garbage_is_rejected_and_counted() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport.send(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        assert!(transport.recv(64).unwrap().is_empty());
        assert_eq!(cloud.report().rejected_records, 1);
        assert!(cloud.report().events.is_empty());
    }

    #[test]
    fn reset_clears_the_report() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport
            .send(
                &AvsEvent::TextMessage {
                    dialog_id: 1,
                    text: "x".into(),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(cloud.report().events.len(), 1);
        cloud.reset();
        assert!(cloud.report().events.is_empty());
    }

    #[test]
    fn batched_events_are_unpacked_and_batch_acked() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let mut client = SecureChannelClient::new(PSK, 41);
        transport.send(&client.client_hello()).unwrap();
        let server_hello = transport.recv(1024).unwrap();
        client.process_server_hello(&server_hello).unwrap();

        let batch = AvsEvent::Batch(vec![
            AvsEvent::TextMessage {
                dialog_id: 4,
                text: "play music".to_owned(),
            },
            AvsEvent::TextMessage {
                dialog_id: 6,
                text: "lights off".to_owned(),
            },
        ]);
        transport
            .send(&client.seal(&batch.encode()).unwrap())
            .unwrap();
        let reply = transport.recv(4096).unwrap();
        let directive = AvsDirective::decode(&client.open(&reply).unwrap()).unwrap();
        assert_eq!(
            directive,
            AvsDirective::BatchAck {
                dialog_ids: vec![4, 6]
            }
        );

        let report = cloud.report();
        assert_eq!(report.received_dialog_ids(), vec![4, 6]);
        assert!(report.events.iter().all(|e| e.encrypted));
        assert_eq!(report.text_of(6), "lights off");
    }

    #[test]
    fn frame_verdicts_carry_no_payload_bytes() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let event = AvsEvent::FrameVerdict {
            dialog_id: 8,
            frames: 4,
            probability_milli: 90,
        };
        transport.send(&event.encode()).unwrap();
        let ack = AvsDirective::decode(&transport.recv(64).unwrap()).unwrap();
        assert_eq!(ack, AvsDirective::Ack { dialog_id: 8 });
        let report = cloud.report();
        assert_eq!(report.received_dialog_ids(), vec![8]);
        assert_eq!(report.events[0].audio_bytes, 0);
        assert!(report.text_of(8).contains("frame-verdict"));
    }

    #[test]
    fn pings_are_acked_but_not_recorded() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport.send(&AvsEvent::Ping.encode()).unwrap();
        assert!(!transport.recv(64).unwrap().is_empty());
        assert!(cloud.report().events.is_empty());
    }
}
