//! The mock cloud service.
//!
//! Plays the role of the untrusted cloud provider (Amazon/Google in the
//! paper): terminates the relay's secure channel, decodes AVS events, and
//! — crucially for the privacy experiments — records exactly what it
//! received. Whatever appears in [`CloudReport`] is, by definition, what
//! has been exposed to the untrusted party.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::avs::{AvsDirective, AvsEvent};
use crate::netsim::NetworkService;
use crate::tls::{peek_record_type, SecureChannelServer, CLIENT_HELLO, EXPLICIT_RECORD, PSK_LEN};

/// Most explicit-sequence records a session may stash ahead of the
/// commit point before the cloud answers with silence (backpressure) —
/// the device's bounded unacked window is far smaller than this.
const STASH_CAP: usize = 256;

/// One event as received (and understood) by the cloud.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceivedEvent {
    /// Dialog the event belongs to.
    pub dialog_id: u64,
    /// Transcript text, if the event carried text.
    pub text: Option<String>,
    /// Audio payload size, if the event carried audio.
    pub audio_bytes: usize,
    /// Whether the event arrived over the encrypted channel.
    pub encrypted: bool,
}

/// Everything the cloud has observed.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CloudReport {
    /// Events the cloud decoded, in arrival order.
    pub events: Vec<ReceivedEvent>,
    /// Number of records that failed channel authentication.
    pub rejected_records: u64,
    /// Total application bytes received (after decryption).
    pub application_bytes: u64,
    /// Explicit-sequence records that arrived again after already being
    /// accepted — at-least-once delivery observed, deduplicated away.
    pub redelivered_records: u64,
    /// Explicit-sequence records that arrived ahead of the commit point
    /// and had to be stashed until the gap filled.
    pub out_of_order_records: u64,
    /// Explicit-sequence records committed exactly once, in sequence
    /// order.
    pub committed_records: u64,
}

impl CloudReport {
    /// Dialog ids for which the cloud received any content.
    pub fn received_dialog_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.events.iter().map(|e| e.dialog_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Number of Recognize (audio) events received.
    pub fn recognize_count(&self) -> usize {
        self.events.iter().filter(|e| e.audio_bytes > 0).count()
    }

    /// Concatenated text received for one dialog.
    pub fn text_of(&self, dialog_id: u64) -> String {
        self.events
            .iter()
            .filter(|e| e.dialog_id == dialog_id)
            .filter_map(|e| e.text.clone())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

struct ConnectionState {
    channel: SecureChannelServer,
    /// The next explicit sequence this session will commit. Everything
    /// below it has been recorded exactly once.
    next_commit: u64,
    /// Records that arrived ahead of `next_commit`, held until the gap
    /// fills so commits (and therefore cloud decisions) happen in send
    /// order regardless of network reordering.
    stash: BTreeMap<u64, Vec<u8>>,
}

/// The mock cloud service. Register it on a [`crate::NetworkFabric`] under
/// the cloud hostname.
pub struct MockCloudService {
    psk: [u8; PSK_LEN],
    connections: Mutex<std::collections::HashMap<u64, ConnectionState>>,
    report: Mutex<CloudReport>,
    response_text: String,
}

impl std::fmt::Debug for MockCloudService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MockCloudService")
            .field("events", &self.report.lock().events.len())
            .finish()
    }
}

impl MockCloudService {
    /// Default hostname the cloud registers under.
    pub const HOST: &'static str = "avs.cloud.example";

    /// Creates the service with the device-provisioned PSK.
    pub fn new(psk: [u8; PSK_LEN]) -> Arc<Self> {
        Arc::new(MockCloudService {
            psk,
            connections: Mutex::new(std::collections::HashMap::new()),
            report: Mutex::new(CloudReport::default()),
            response_text: "okay".to_owned(),
        })
    }

    /// A snapshot of everything received so far.
    pub fn report(&self) -> CloudReport {
        self.report.lock().clone()
    }

    /// Clears the recorded events (between experiment runs).
    pub fn reset(&self) {
        *self.report.lock() = CloudReport::default();
    }

    fn record_event(&self, event: &AvsEvent, encrypted: bool) {
        record_event_into(&mut self.report.lock(), event, encrypted);
    }

    fn ack_for(event: &AvsEvent) -> AvsDirective {
        ack_for_event(event)
    }

    fn speak_for(&self, event: &AvsEvent) -> AvsDirective {
        match event {
            AvsEvent::Recognize { dialog_id, .. } | AvsEvent::TextMessage { dialog_id, .. } => {
                AvsDirective::Speak {
                    dialog_id: *dialog_id,
                    text: self.response_text.clone(),
                }
            }
            AvsEvent::FrameVerdict { dialog_id, .. } => AvsDirective::Ack {
                dialog_id: *dialog_id,
            },
            AvsEvent::Ping => AvsDirective::Ack {
                dialog_id: u64::MAX,
            },
            AvsEvent::Batch(_) => AvsDirective::BatchAck {
                dialog_ids: dialog_ids_of(event),
            },
        }
    }
}

/// Records one decoded event into a report — the single definition of
/// "what the cloud learns" from a committed record, shared by the direct
/// mock cloud and the sharded ingest plane so their decision logs cannot
/// drift apart.
pub fn record_event_into(report: &mut CloudReport, event: &AvsEvent, encrypted: bool) {
    match event {
        AvsEvent::Recognize { dialog_id, audio } => {
            report.application_bytes += audio.len() as u64;
            report.events.push(ReceivedEvent {
                dialog_id: *dialog_id,
                text: None,
                audio_bytes: audio.len(),
                encrypted,
            });
        }
        AvsEvent::TextMessage { dialog_id, text } => {
            report.application_bytes += text.len() as u64;
            report.events.push(ReceivedEvent {
                dialog_id: *dialog_id,
                text: Some(text.clone()),
                audio_bytes: 0,
                encrypted,
            });
        }
        AvsEvent::FrameVerdict {
            dialog_id,
            frames,
            probability_milli,
        } => {
            // The camera modality's whole point: the cloud learns a
            // frame count and a coarse score, never pixels.
            report.events.push(ReceivedEvent {
                dialog_id: *dialog_id,
                text: Some(format!(
                    "frame-verdict frames={frames} p={probability_milli}"
                )),
                audio_bytes: 0,
                encrypted,
            });
        }
        AvsEvent::Ping => {}
        AvsEvent::Batch(events) => {
            for inner in events {
                record_event_into(report, inner, encrypted);
            }
        }
    }
}

/// Dialog ids named by an event, in order (batch entries flattened).
pub fn dialog_ids_of(event: &AvsEvent) -> Vec<u64> {
    match event {
        AvsEvent::Recognize { dialog_id, .. }
        | AvsEvent::TextMessage { dialog_id, .. }
        | AvsEvent::FrameVerdict { dialog_id, .. } => {
            vec![*dialog_id]
        }
        AvsEvent::Ping => Vec::new(),
        AvsEvent::Batch(events) => events.iter().flat_map(dialog_ids_of).collect(),
    }
}

/// The acknowledgement directive for one event — shared by the direct
/// cloud and the ingest plane so acks are byte-identical on both paths.
pub fn ack_for_event(event: &AvsEvent) -> AvsDirective {
    match event {
        AvsEvent::Recognize { dialog_id, .. }
        | AvsEvent::TextMessage { dialog_id, .. }
        | AvsEvent::FrameVerdict { dialog_id, .. } => AvsDirective::Ack {
            dialog_id: *dialog_id,
        },
        AvsEvent::Ping => AvsDirective::Ack {
            dialog_id: u64::MAX,
        },
        AvsEvent::Batch(_) => AvsDirective::BatchAck {
            dialog_ids: dialog_ids_of(event),
        },
    }
}

impl MockCloudService {
    /// Exactly-once, in-order ingest of one explicit-sequence record.
    ///
    /// Already-accepted sequences are re-acked without recording (the
    /// first ack evidently got lost — at-least-once delivery becomes
    /// exactly-once decisions). Records ahead of the commit point are
    /// stashed until the gap fills, so the decision log is in send order
    /// no matter how the network reordered arrivals.
    fn ingest_explicit(&self, state: &mut ConnectionState, request: &[u8]) -> Vec<u8> {
        let (seq, plaintext) = match state.channel.open_explicit(request) {
            Ok(opened) => opened,
            Err(_) => {
                self.report.lock().rejected_records += 1;
                return Vec::new();
            }
        };
        let Ok(event) = AvsEvent::decode(&plaintext) else {
            self.report.lock().rejected_records += 1;
            return Vec::new();
        };
        let ack = Self::ack_for(&event).encode();
        if seq < state.next_commit || state.stash.contains_key(&seq) {
            // Redelivery: the record is already durable here; only the
            // ack needs retransmitting. seal_at reproduces it exactly.
            self.report.lock().redelivered_records += 1;
            return state.channel.seal_at(seq, &ack).unwrap_or_default();
        }
        if seq != state.next_commit {
            if state.stash.len() >= STASH_CAP {
                // Refuse to stash further ahead; silence makes the
                // device retry once the gap has been filled.
                return Vec::new();
            }
            self.report.lock().out_of_order_records += 1;
        }
        state.stash.insert(seq, plaintext);
        while let Some(ready) = state.stash.remove(&state.next_commit) {
            if let Ok(ready_event) = AvsEvent::decode(&ready) {
                self.record_event(&ready_event, true);
                self.report.lock().committed_records += 1;
            }
            state.next_commit += 1;
        }
        state.channel.seal_at(seq, &ack).unwrap_or_default()
    }
}

impl NetworkService for MockCloudService {
    fn handle(&self, conn: u64, request: &[u8]) -> Vec<u8> {
        let mut connections = self.connections.lock();
        let state = connections.entry(conn).or_insert_with(|| ConnectionState {
            channel: SecureChannelServer::new(self.psk, conn),
            next_commit: 0,
            stash: BTreeMap::new(),
        });
        if state.channel.is_established() && peek_record_type(request) == Some(CLIENT_HELLO) {
            // A retransmitted hello (the device lost our ServerHello, or
            // suspects a corrupted handshake). Both randoms are
            // deterministic, so reprocessing derives the same keys —
            // replaying the handshake is idempotent, and the dedup state
            // survives it.
            return match state.channel.process_client_hello(request) {
                Ok(server_hello) => server_hello,
                Err(_) => {
                    self.report.lock().rejected_records += 1;
                    Vec::new()
                }
            };
        }
        if !state.channel.is_established() {
            // Either a handshake, or a plaintext (baseline / ablation) event.
            if let Ok(server_hello) = state.channel.process_client_hello(request) {
                return server_hello;
            }
            return match AvsEvent::decode(request) {
                Ok(event) => {
                    self.record_event(&event, false);
                    let _ = self.speak_for(&event);
                    Self::ack_for(&event).encode()
                }
                Err(_) => {
                    self.report.lock().rejected_records += 1;
                    Vec::new()
                }
            };
        }
        if peek_record_type(request) == Some(EXPLICIT_RECORD) {
            return self.ingest_explicit(state, request);
        }
        // Established channel, legacy implicit record: open it, decode
        // the event, reply with a protected acknowledgement.
        match state.channel.open(request) {
            Ok(plaintext) => match AvsEvent::decode(&plaintext) {
                Ok(event) => {
                    self.record_event(&event, true);
                    let ack = Self::ack_for(&event).encode();
                    state.channel.seal(&ack).unwrap_or_default()
                }
                Err(_) => {
                    self.report.lock().rejected_records += 1;
                    Vec::new()
                }
            },
            Err(_) => {
                self.report.lock().rejected_records += 1;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netsim::NetworkFabric;
    use crate::tls::SecureChannelClient;

    const PSK: [u8; PSK_LEN] = [7u8; PSK_LEN];

    fn fabric_with_cloud() -> (NetworkFabric, Arc<MockCloudService>) {
        let fabric = NetworkFabric::new();
        let cloud = MockCloudService::new(PSK);
        fabric.register_service(MockCloudService::HOST, cloud.clone());
        (fabric, cloud)
    }

    #[test]
    fn encrypted_events_reach_the_cloud_and_are_acked() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let mut client = SecureChannelClient::new(PSK, 99);
        transport.send(&client.client_hello()).unwrap();
        let server_hello = transport.recv(1024).unwrap();
        client.process_server_hello(&server_hello).unwrap();

        let event = AvsEvent::TextMessage {
            dialog_id: 5,
            text: "play music".to_owned(),
        };
        transport
            .send(&client.seal(&event.encode()).unwrap())
            .unwrap();
        let reply = transport.recv(4096).unwrap();
        let directive = AvsDirective::decode(&client.open(&reply).unwrap()).unwrap();
        assert_eq!(directive, AvsDirective::Ack { dialog_id: 5 });

        let report = cloud.report();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].text.as_deref(), Some("play music"));
        assert!(report.events[0].encrypted);
        assert_eq!(report.received_dialog_ids(), vec![5]);
        assert_eq!(report.text_of(5), "play music");
    }

    #[test]
    fn plaintext_events_are_accepted_and_marked_unencrypted() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let event = AvsEvent::Recognize {
            dialog_id: 2,
            audio: vec![0u8; 320],
        };
        transport.send(&event.encode()).unwrap();
        let ack = AvsDirective::decode(&transport.recv(64).unwrap()).unwrap();
        assert_eq!(ack, AvsDirective::Ack { dialog_id: 2 });
        let report = cloud.report();
        assert_eq!(report.recognize_count(), 1);
        assert!(!report.events[0].encrypted);
        assert_eq!(report.application_bytes, 320);
    }

    #[test]
    fn garbage_is_rejected_and_counted() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport.send(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        assert!(transport.recv(64).unwrap().is_empty());
        assert_eq!(cloud.report().rejected_records, 1);
        assert!(cloud.report().events.is_empty());
    }

    #[test]
    fn reset_clears_the_report() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport
            .send(
                &AvsEvent::TextMessage {
                    dialog_id: 1,
                    text: "x".into(),
                }
                .encode(),
            )
            .unwrap();
        assert_eq!(cloud.report().events.len(), 1);
        cloud.reset();
        assert!(cloud.report().events.is_empty());
    }

    #[test]
    fn batched_events_are_unpacked_and_batch_acked() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let mut client = SecureChannelClient::new(PSK, 41);
        transport.send(&client.client_hello()).unwrap();
        let server_hello = transport.recv(1024).unwrap();
        client.process_server_hello(&server_hello).unwrap();

        let batch = AvsEvent::Batch(vec![
            AvsEvent::TextMessage {
                dialog_id: 4,
                text: "play music".to_owned(),
            },
            AvsEvent::TextMessage {
                dialog_id: 6,
                text: "lights off".to_owned(),
            },
        ]);
        transport
            .send(&client.seal(&batch.encode()).unwrap())
            .unwrap();
        let reply = transport.recv(4096).unwrap();
        let directive = AvsDirective::decode(&client.open(&reply).unwrap()).unwrap();
        assert_eq!(
            directive,
            AvsDirective::BatchAck {
                dialog_ids: vec![4, 6]
            }
        );

        let report = cloud.report();
        assert_eq!(report.received_dialog_ids(), vec![4, 6]);
        assert!(report.events.iter().all(|e| e.encrypted));
        assert_eq!(report.text_of(6), "lights off");
    }

    #[test]
    fn frame_verdicts_carry_no_payload_bytes() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let event = AvsEvent::FrameVerdict {
            dialog_id: 8,
            frames: 4,
            probability_milli: 90,
        };
        transport.send(&event.encode()).unwrap();
        let ack = AvsDirective::decode(&transport.recv(64).unwrap()).unwrap();
        assert_eq!(ack, AvsDirective::Ack { dialog_id: 8 });
        let report = cloud.report();
        assert_eq!(report.received_dialog_ids(), vec![8]);
        assert_eq!(report.events[0].audio_bytes, 0);
        assert!(report.text_of(8).contains("frame-verdict"));
    }

    fn established_client(
        fabric: &NetworkFabric,
        nonce: u64,
    ) -> (crate::netsim::Transport, SecureChannelClient) {
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        let mut client = SecureChannelClient::new(PSK, nonce);
        transport.send(&client.client_hello()).unwrap();
        let server_hello = transport.recv(1024).unwrap();
        client.process_server_hello(&server_hello).unwrap();
        (transport, client)
    }

    #[test]
    fn explicit_records_commit_exactly_once_in_send_order() {
        let (fabric, cloud) = fabric_with_cloud();
        let (transport, client) = established_client(&fabric, 99);
        let event = |id: u64| AvsEvent::TextMessage {
            dialog_id: id,
            text: format!("m{id}"),
        };
        let records: Vec<Vec<u8>> = (0..3)
            .map(|i| client.seal_at(i, &event(i).encode()).unwrap())
            .collect();

        // Out-of-order arrival: seq 1 first. It is acked (the cloud has
        // it durably) but not committed until seq 0 fills the gap.
        transport.send(&records[1]).unwrap();
        let ack = transport.recv(4096).unwrap();
        assert_eq!(client.open_explicit(&ack).unwrap().0, 1);
        assert!(cloud.report().events.is_empty());
        assert_eq!(cloud.report().out_of_order_records, 1);

        transport.send(&records[0]).unwrap();
        transport.recv(4096).unwrap();
        assert_eq!(cloud.report().received_dialog_ids(), vec![0, 1]);
        assert_eq!(
            cloud
                .report()
                .events
                .iter()
                .map(|e| e.dialog_id)
                .collect::<Vec<_>>(),
            vec![0, 1],
            "commits happen in sequence order"
        );

        // Redelivery is re-acked without recording.
        transport.send(&records[0]).unwrap();
        let ack = transport.recv(4096).unwrap();
        assert_eq!(client.open_explicit(&ack).unwrap().0, 0);
        assert_eq!(cloud.report().redelivered_records, 1);
        assert_eq!(cloud.report().events.len(), 2);

        transport.send(&records[2]).unwrap();
        transport.recv(4096).unwrap();
        assert_eq!(cloud.report().committed_records, 3);
        assert_eq!(cloud.report().events.len(), 3);
    }

    #[test]
    fn hello_replay_is_idempotent_and_preserves_dedup_state() {
        let (fabric, cloud) = fabric_with_cloud();
        let (transport, client) = established_client(&fabric, 7);
        let record = client
            .seal_at(
                0,
                &AvsEvent::TextMessage {
                    dialog_id: 1,
                    text: "once".into(),
                }
                .encode(),
            )
            .unwrap();
        transport.send(&record).unwrap();
        transport.recv(4096).unwrap();
        assert_eq!(cloud.report().events.len(), 1);

        // Replay the hello mid-stream, as a device recovering from a
        // suspected bad handshake would.
        transport.send(&client.client_hello()).unwrap();
        let hello = transport.recv(1024).unwrap();
        assert!(!hello.is_empty());

        // The rebuilt keys still open our records, and the session still
        // remembers what it committed.
        transport.send(&record).unwrap();
        let ack = transport.recv(4096).unwrap();
        assert_eq!(client.open_explicit(&ack).unwrap().0, 0);
        assert_eq!(cloud.report().redelivered_records, 1);
        assert_eq!(cloud.report().events.len(), 1);
    }

    #[test]
    fn corrupted_explicit_records_are_rejected_loudly() {
        let (fabric, cloud) = fabric_with_cloud();
        let (transport, client) = established_client(&fabric, 13);
        let mut record = client
            .seal_at(
                0,
                &AvsEvent::TextMessage {
                    dialog_id: 2,
                    text: "tamper".into(),
                }
                .encode(),
            )
            .unwrap();
        let len = record.len();
        record[len - 3] ^= 0x10;
        transport.send(&record).unwrap();
        assert!(transport.recv(4096).unwrap().is_empty());
        assert_eq!(cloud.report().rejected_records, 1);
        assert!(cloud.report().events.is_empty());
    }

    #[test]
    fn pings_are_acked_but_not_recorded() {
        let (fabric, cloud) = fabric_with_cloud();
        let transport = fabric.open_transport(MockCloudService::HOST, 443).unwrap();
        transport.send(&AvsEvent::Ping.encode()).unwrap();
        assert!(!transport.recv(64).unwrap().is_empty());
        assert!(cloud.report().events.is_empty());
    }
}
