//! # perisec-relay — the relay module, the network fabric and the cloud
//!
//! Plan item 5 of the paper: "this module constitutes a TLS endpoint which
//! implements an API, e.g., Amazon Alexa voice service (AVS), used to
//! communicate with the cloud service provider." The relay runs inside the
//! filter TA and reaches the network through the TEE supplicant.
//!
//! * [`netsim`] — an in-process network fabric standing in for the
//!   Internet: services register under hostnames, and the fabric implements
//!   the supplicant's [`perisec_optee::NetBackend`] so the secure world's
//!   socket RPCs reach them;
//! * [`tls`] — a TLS-1.3-flavoured pre-shared-key secure channel
//!   (HKDF key schedule, ChaCha20-Poly1305 records, explicit handshake)
//!   built on the crypto primitives of `perisec-optee`;
//! * [`avs`] — a compact binary encoding of Alexa-Voice-Service-style
//!   events (Recognize, text events) and directives;
//! * [`cloud`] — the mock cloud service: terminates the secure channel,
//!   decodes AVS events, and records exactly what reached it (the ground
//!   truth for the privacy-leakage experiments);
//! * [`attest`] — the attested-ingest wire format (measurement +
//!   monotonic counter + session epoch) and the [`SessionIngest`] seam
//!   the sharded ingest plane implements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attest;
pub mod avs;
pub mod cloud;
pub mod netsim;
pub mod tls;

pub use attest::{measurement_of, IngestReply, SessionIngest, ATTEST_SEQ_BASE, MEASUREMENT_LEN};
pub use avs::{AvsDirective, AvsEvent};
pub use cloud::{CloudReport, MockCloudService, ReceivedEvent};
pub use netsim::{FabricStats, FaultClass, FaultSpec, NetworkFabric, Transport};
pub use tls::{SecureChannelClient, SecureChannelServer, PSK_LEN};

use std::error::Error;
use std::fmt;

/// Errors raised by the relay stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RelayError {
    /// The peer or host was not reachable.
    Unreachable {
        /// Host that was targeted.
        host: String,
    },
    /// Handshake or record protection failed.
    ChannelError {
        /// Explanation.
        reason: String,
    },
    /// An AVS message could not be decoded.
    Codec {
        /// Explanation.
        reason: String,
    },
    /// The underlying transport failed.
    Transport {
        /// Explanation.
        reason: String,
    },
    /// The per-socket response queue is full; the sender must back off.
    Backpressure {
        /// Socket whose queue overflowed.
        socket: u64,
        /// The configured queue depth.
        depth: usize,
    },
    /// A queued message exceeds the caller's receive buffer; nothing was
    /// consumed (the fabric never silently truncates).
    OversizedRead {
        /// Bytes the queued message needs.
        needed: usize,
        /// Bytes the caller offered.
        max: usize,
    },
}

impl fmt::Display for RelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayError::Unreachable { host } => write!(f, "host unreachable: {host}"),
            RelayError::ChannelError { reason } => write!(f, "secure channel error: {reason}"),
            RelayError::Codec { reason } => write!(f, "avs codec error: {reason}"),
            RelayError::Transport { reason } => write!(f, "transport error: {reason}"),
            RelayError::Backpressure { socket, depth } => write!(
                f,
                "backpressure: response queue full on socket {socket} (depth {depth})"
            ),
            RelayError::OversizedRead { needed, max } => write!(
                f,
                "oversized read: queued message needs {needed} bytes, caller offered {max}"
            ),
        }
    }
}

impl Error for RelayError {}

impl From<perisec_optee::TeeError> for RelayError {
    fn from(e: perisec_optee::TeeError) -> Self {
        RelayError::Transport {
            reason: e.to_string(),
        }
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, RelayError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_error_is_well_behaved() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<RelayError>();
        let e = RelayError::Unreachable {
            host: "avs.example".into(),
        };
        assert!(e.to_string().contains("avs.example"));
        let e: RelayError = perisec_optee::TeeError::TargetDead.into();
        assert!(matches!(e, RelayError::Transport { .. }));
    }
}
