//! The in-process network fabric.
//!
//! Stands in for the Internet between the IoT device and the cloud.
//! Services register under a hostname; connections are pairs of message
//! queues. The fabric implements [`NetBackend`], so the TEE supplicant's
//! socket RPCs (issued on behalf of the relay running in the TA) terminate
//! here, and it also hands out [`Transport`] handles for normal-world
//! clients (the unprotected baseline pipeline).
//!
//! # Deterministic chaos
//!
//! Real IoT uplinks drop, duplicate, reorder and corrupt packets. The
//! fabric reproduces that with a [`FaultSpec`]: each send is classified by
//! a pure hash of `(seed, device, send sequence)`, so every run — and
//! every worker count — sees the *identical* fault schedule. Faults apply
//! to the request direction (the device→cloud uplink the relay retries
//! over); [`FabricStats`] counts each class so experiments can assert the
//! chaos actually happened.
//!
//! Responses are queued as whole messages in a bounded per-socket queue:
//! a `recv` either returns one complete message, an empty vector (nothing
//! pending — the caller's timeout signal), or a loud error. Nothing is
//! ever silently truncated.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use perisec_optee::{NetBackend, TeeError, TeeResult};

use crate::{RelayError, Result};

/// Default bound on a socket's pending-response queue, in messages —
/// generous for the request/response relay protocol, which drains after
/// every send.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// A network service: receives request bytes, returns response bytes.
///
/// The fabric delivers each `send` on a connection to the service and
/// queues whatever the service returns for the next `recv` on that
/// connection — a synchronous request/response fabric, which is all the
/// relay protocol needs.
pub trait NetworkService: Send + Sync {
    /// Handles one request on connection `conn` and returns the response
    /// bytes (possibly empty).
    fn handle(&self, conn: u64, request: &[u8]) -> Vec<u8>;
}

/// What the fault schedule decides for one send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Delivered intact.
    Deliver,
    /// Never delivered; the sender sees silence and must retry.
    Drop,
    /// Delivered twice — the cloud must deduplicate.
    Duplicate,
    /// Held back and delivered after the *next* send — the cloud sees it
    /// out of order.
    Reorder,
    /// Delivered with one bit flipped — channel authentication must
    /// reject it.
    Corrupt,
    /// Inside the outage window: dropped, like every other send in the
    /// window.
    Outage,
}

/// Deterministic fault plan for a fabric.
///
/// Classification is a pure function of `(seed, device, send sequence)`;
/// nothing about the host schedule, worker count or wall clock leaks in.
/// Per-mille rates partition a 0..1000 roll: drop, then duplicate, then
/// reorder, then corrupt, remainder delivered. An `outage` window (in
/// send-sequence space) overrides everything inside it with
/// [`FaultClass::Outage`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the fault schedule (share one across a fleet; salt per
    /// device with [`FaultSpec::for_device`]).
    pub seed: u64,
    /// Device salt, so each device sees its own schedule.
    pub device: u64,
    /// Per-mille of sends never delivered.
    pub drop_permille: u16,
    /// Per-mille of sends delivered twice.
    pub duplicate_permille: u16,
    /// Per-mille of sends delivered late (after the next send).
    pub reorder_permille: u16,
    /// Per-mille of sends delivered with one bit flipped.
    pub corrupt_permille: u16,
    /// Half-open `[start, end)` window of send sequences that are all
    /// dropped — a network outage.
    pub outage: Option<(u64, u64)>,
}

/// splitmix64-style finalizer over the three schedule coordinates.
fn fault_hash(seed: u64, device: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(device.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(seq.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultSpec {
    /// A fault-free spec (useful as a base for struct update syntax).
    pub fn none(seed: u64) -> Self {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    /// The same schedule salted for one device of a fleet.
    pub fn for_device(mut self, device: u64) -> Self {
        self.device = device;
        self
    }

    /// Classifies one send. Pure: same `(seed, device, send_seq)` → same
    /// class, forever.
    pub fn classify(&self, send_seq: u64) -> FaultClass {
        if let Some((start, end)) = self.outage {
            if send_seq >= start && send_seq < end {
                return FaultClass::Outage;
            }
        }
        let drop = u64::from(self.drop_permille);
        let dup = drop + u64::from(self.duplicate_permille);
        let reorder = dup + u64::from(self.reorder_permille);
        let corrupt = reorder + u64::from(self.corrupt_permille);
        if corrupt == 0 {
            return FaultClass::Deliver;
        }
        let roll = fault_hash(self.seed, self.device, send_seq) % 1000;
        if roll < drop {
            FaultClass::Drop
        } else if roll < dup {
            FaultClass::Duplicate
        } else if roll < reorder {
            FaultClass::Reorder
        } else if roll < corrupt {
            FaultClass::Corrupt
        } else {
            FaultClass::Deliver
        }
    }

    /// The bit to flip when a send classifies as [`FaultClass::Corrupt`] —
    /// itself a pure function of the schedule coordinates.
    pub fn corrupt_bit(&self, send_seq: u64, len: usize) -> usize {
        (fault_hash(self.seed ^ 0xC0_44_0F_7E_D0_17_5E_ED, self.device, send_seq)
            % (len.max(1) as u64 * 8)) as usize
    }
}

struct Connection {
    service: Arc<dyn NetworkService>,
    pending: VecDeque<Vec<u8>>,
    delayed: Option<Vec<u8>>,
    bytes_sent: u64,
    bytes_received: u64,
}

/// Counters of fabric activity, including one counter per fault class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Connections opened since creation.
    pub connections: u64,
    /// Application bytes sent towards services.
    pub bytes_sent: u64,
    /// Application bytes returned to clients.
    pub bytes_received: u64,
    /// Sends the fault schedule dropped.
    pub dropped: u64,
    /// Sends the fault schedule delivered twice.
    pub duplicated: u64,
    /// Sends the fault schedule held back and delivered late.
    pub reordered: u64,
    /// Sends the fault schedule delivered with a flipped bit.
    pub corrupted: u64,
    /// Sends swallowed by an outage window.
    pub outage_dropped: u64,
    /// Responses refused because the socket's queue was full.
    pub queue_full: u64,
}

impl FabricStats {
    /// Total sends the schedule prevented from arriving intact.
    pub fn faulted(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.corrupted + self.outage_dropped
    }
}

/// A fabric-level delivery failure, before it is widened to the caller's
/// error type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NetFault {
    UnknownSocket(u64),
    Backpressure { socket: u64, depth: usize },
    OversizedRead { needed: usize, max: usize },
}

impl NetFault {
    fn to_tee(self) -> TeeError {
        match self {
            NetFault::UnknownSocket(socket) => TeeError::Communication {
                reason: format!("unknown socket {socket}"),
            },
            NetFault::Backpressure { socket, depth } => TeeError::Busy { socket, depth },
            NetFault::OversizedRead { needed, max } => TeeError::Communication {
                reason: format!(
                    "oversized read: queued message needs {needed} bytes, caller offered {max}"
                ),
            },
        }
    }

    fn to_relay(self) -> RelayError {
        match self {
            NetFault::UnknownSocket(socket) => RelayError::Transport {
                reason: format!("unknown socket {socket}"),
            },
            NetFault::Backpressure { socket, depth } => RelayError::Backpressure { socket, depth },
            NetFault::OversizedRead { needed, max } => RelayError::OversizedRead { needed, max },
        }
    }
}

/// The network fabric.
#[derive(Clone, Default)]
pub struct NetworkFabric {
    inner: Arc<FabricInner>,
}

struct FabricInner {
    services: Mutex<HashMap<String, Arc<dyn NetworkService>>>,
    connections: Mutex<HashMap<u64, Connection>>,
    next_conn: AtomicU64,
    next_send: AtomicU64,
    queue_depth: AtomicUsize,
    faults: Mutex<Option<FaultSpec>>,
    stats: Mutex<FabricStats>,
}

impl Default for FabricInner {
    fn default() -> Self {
        FabricInner {
            services: Mutex::new(HashMap::new()),
            connections: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            next_send: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(DEFAULT_QUEUE_DEPTH),
            faults: Mutex::new(None),
            stats: Mutex::new(FabricStats::default()),
        }
    }
}

impl std::fmt::Debug for NetworkFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkFabric")
            .field("services", &self.inner.services.lock().len())
            .field("connections", &self.inner.connections.lock().len())
            .field("faults", &*self.inner.faults.lock())
            .finish()
    }
}

impl NetworkFabric {
    /// Creates an empty, fault-free fabric.
    pub fn new() -> Self {
        NetworkFabric::default()
    }

    /// Installs a deterministic fault schedule (builder style).
    pub fn with_faults(self, spec: Option<FaultSpec>) -> Self {
        *self.inner.faults.lock() = spec;
        self
    }

    /// Bounds every socket's pending-response queue to `depth` messages
    /// (builder style). The default is [`DEFAULT_QUEUE_DEPTH`].
    pub fn with_queue_depth(self, depth: usize) -> Self {
        self.inner.queue_depth.store(depth.max(1), Ordering::SeqCst);
        self
    }

    /// The installed fault schedule, if any.
    pub fn faults(&self) -> Option<FaultSpec> {
        *self.inner.faults.lock()
    }

    /// Registers `service` under `host` (replacing any previous service).
    pub fn register_service(&self, host: &str, service: Arc<dyn NetworkService>) {
        self.inner.services.lock().insert(host.to_owned(), service);
    }

    /// Current statistics.
    pub fn stats(&self) -> FabricStats {
        *self.inner.stats.lock()
    }

    /// Opens a connection and returns a [`Transport`] for direct
    /// (normal-world) use.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Unreachable`] for unknown hosts.
    pub fn open_transport(&self, host: &str, port: u16) -> Result<Transport> {
        let conn = self
            .connect(host, port)
            .map_err(|_| RelayError::Unreachable {
                host: host.to_owned(),
            })?;
        Ok(Transport {
            fabric: self.clone(),
            conn,
        })
    }

    fn service_of(&self, host: &str) -> Option<Arc<dyn NetworkService>> {
        self.inner.services.lock().get(host).cloned()
    }

    /// Hands `bytes` to the connection's service; queues the response (if
    /// any, and if the caller is still interested in it) behind the
    /// bounded per-socket queue.
    fn hand_to_service(
        connection: &mut Connection,
        stats: &mut FabricStats,
        socket: u64,
        bytes: &[u8],
        keep_response: bool,
        depth: usize,
    ) -> std::result::Result<usize, NetFault> {
        let response = connection.service.handle(socket, bytes);
        connection.bytes_sent += bytes.len() as u64;
        stats.bytes_sent += bytes.len() as u64;
        if keep_response && !response.is_empty() {
            if connection.pending.len() >= depth {
                stats.queue_full += 1;
                return Err(NetFault::Backpressure { socket, depth });
            }
            connection.bytes_received += response.len() as u64;
            stats.bytes_received += response.len() as u64;
            connection.pending.push_back(response);
        }
        Ok(bytes.len())
    }

    /// One send through the fault schedule. The late (reorder-stashed)
    /// request from a *previous* send, if any, is delivered after this
    /// one — that is what makes the service see it out of order — with
    /// its response discarded (its sender stopped waiting long ago).
    fn transmit(&self, socket: u64, data: &[u8]) -> std::result::Result<usize, NetFault> {
        let mut connections = self.inner.connections.lock();
        let connection = connections
            .get_mut(&socket)
            .ok_or(NetFault::UnknownSocket(socket))?;
        let depth = self.inner.queue_depth.load(Ordering::SeqCst);
        let seq = self.inner.next_send.fetch_add(1, Ordering::SeqCst);
        let faults = *self.inner.faults.lock();
        let class = faults
            .map(|f| f.classify(seq))
            .unwrap_or(FaultClass::Deliver);
        let late = connection.delayed.take();
        let mut stats = self.inner.stats.lock();
        let result = match class {
            FaultClass::Deliver => {
                Self::hand_to_service(connection, &mut stats, socket, data, true, depth)
            }
            FaultClass::Drop => {
                stats.dropped += 1;
                Ok(data.len())
            }
            FaultClass::Outage => {
                stats.outage_dropped += 1;
                Ok(data.len())
            }
            FaultClass::Duplicate => {
                stats.duplicated += 1;
                let first =
                    Self::hand_to_service(connection, &mut stats, socket, data, true, depth);
                // The duplicate's response is discarded: the sender reads
                // exactly one reply per request.
                let _ = Self::hand_to_service(connection, &mut stats, socket, data, false, depth);
                first
            }
            FaultClass::Corrupt => {
                stats.corrupted += 1;
                let mut corrupted = data.to_vec();
                if !corrupted.is_empty() {
                    let bit = faults
                        .expect("classified")
                        .corrupt_bit(seq, corrupted.len());
                    corrupted[bit / 8] ^= 1 << (bit % 8);
                }
                Self::hand_to_service(connection, &mut stats, socket, &corrupted, true, depth)
            }
            FaultClass::Reorder => {
                stats.reordered += 1;
                connection.delayed = Some(data.to_vec());
                Ok(data.len())
            }
        };
        if let Some(old) = late {
            let _ = Self::hand_to_service(connection, &mut stats, socket, &old, false, depth);
        }
        result
    }

    /// Pops one whole pending message for `socket`: the message if it fits
    /// in `max`, an empty vector if nothing is pending (the caller's
    /// timeout signal), or a loud error — never a truncated prefix.
    fn take_message(&self, socket: u64, max: usize) -> std::result::Result<Vec<u8>, NetFault> {
        let mut connections = self.inner.connections.lock();
        let connection = connections
            .get_mut(&socket)
            .ok_or(NetFault::UnknownSocket(socket))?;
        match connection.pending.front() {
            None => Ok(Vec::new()),
            Some(msg) if msg.len() > max => Err(NetFault::OversizedRead {
                needed: msg.len(),
                max,
            }),
            Some(_) => Ok(connection.pending.pop_front().expect("front exists")),
        }
    }

    /// Tears down `socket`. A reorder-stashed straggler is still handed to
    /// the service (its response discarded) so [`FabricStats`] stay
    /// consistent — unless the close lands inside the outage window, in
    /// which case the straggler is swallowed and counted like any other
    /// outage loss.
    fn teardown(&self, socket: u64) {
        let mut connections = self.inner.connections.lock();
        let Some(mut connection) = connections.remove(&socket) else {
            return;
        };
        if let Some(old) = connection.delayed.take() {
            let seq = self.inner.next_send.fetch_add(1, Ordering::SeqCst);
            let class = self
                .inner
                .faults
                .lock()
                .map(|f| f.classify(seq))
                .unwrap_or(FaultClass::Deliver);
            let mut stats = self.inner.stats.lock();
            match class {
                FaultClass::Outage => stats.outage_dropped += 1,
                FaultClass::Drop => stats.dropped += 1,
                _ => {
                    let depth = self.inner.queue_depth.load(Ordering::SeqCst);
                    let _ = Self::hand_to_service(
                        &mut connection,
                        &mut stats,
                        socket,
                        &old,
                        false,
                        depth,
                    );
                }
            }
        }
    }
}

impl NetBackend for NetworkFabric {
    fn connect(&self, host: &str, _port: u16) -> TeeResult<u64> {
        let service = self.service_of(host).ok_or(TeeError::Communication {
            reason: format!("no route to host '{host}'"),
        })?;
        let conn = self.inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.connections.lock().insert(
            conn,
            Connection {
                service,
                pending: VecDeque::new(),
                delayed: None,
                bytes_sent: 0,
                bytes_received: 0,
            },
        );
        self.inner.stats.lock().connections += 1;
        Ok(conn)
    }

    fn send(&self, socket: u64, data: &[u8]) -> TeeResult<usize> {
        self.transmit(socket, data).map_err(NetFault::to_tee)
    }

    fn recv(&self, socket: u64, max: usize) -> TeeResult<Vec<u8>> {
        self.take_message(socket, max).map_err(NetFault::to_tee)
    }

    fn close(&self, socket: u64) {
        self.teardown(socket);
    }
}

/// A direct (normal-world) connection handle over the fabric.
#[derive(Debug, Clone)]
pub struct Transport {
    fabric: NetworkFabric,
    conn: u64,
}

impl Transport {
    /// Sends request bytes to the service.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Transport`] if the connection is gone, or
    /// [`RelayError::Backpressure`] if the response queue is full.
    pub fn send(&self, data: &[u8]) -> Result<usize> {
        self.fabric
            .transmit(self.conn, data)
            .map_err(NetFault::to_relay)
    }

    /// Receives one whole pending message of up to `max` bytes (empty if
    /// nothing is pending).
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Transport`] if the connection is gone, or
    /// [`RelayError::OversizedRead`] if the next message does not fit in
    /// `max` — it is left queued, never truncated.
    pub fn recv(&self, max: usize) -> Result<Vec<u8>> {
        self.fabric
            .take_message(self.conn, max)
            .map_err(NetFault::to_relay)
    }

    /// Closes the connection.
    pub fn close(&self) {
        NetBackend::close(&self.fabric, self.conn);
    }

    /// The underlying socket id.
    pub fn socket(&self) -> u64 {
        self.conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpperCaseService;
    impl NetworkService for UpperCaseService {
        fn handle(&self, _conn: u64, request: &[u8]) -> Vec<u8> {
            request.to_ascii_uppercase()
        }
    }

    /// Records every request it sees, in order.
    struct RecordingService {
        seen: Mutex<Vec<Vec<u8>>>,
    }
    impl RecordingService {
        fn new() -> Arc<Self> {
            Arc::new(RecordingService {
                seen: Mutex::new(Vec::new()),
            })
        }
    }
    impl NetworkService for RecordingService {
        fn handle(&self, _conn: u64, request: &[u8]) -> Vec<u8> {
            self.seen.lock().push(request.to_vec());
            request.to_vec()
        }
    }

    #[test]
    fn request_response_round_trip() {
        let fabric = NetworkFabric::new();
        fabric.register_service("cloud.example", Arc::new(UpperCaseService));
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        assert_eq!(t.send(b"hello").unwrap(), 5);
        assert_eq!(t.recv(100).unwrap(), b"HELLO");
        // Reads are whole messages: a buffer too small is a loud error,
        // not a silent truncation, and the message stays queued.
        t.send(b"abc").unwrap();
        assert!(matches!(
            t.recv(2),
            Err(RelayError::OversizedRead { needed: 3, max: 2 })
        ));
        assert_eq!(t.recv(3).unwrap(), b"ABC");
        assert!(t.recv(2).unwrap().is_empty());
        t.close();
        assert!(t.send(b"x").is_err());
    }

    #[test]
    fn unknown_hosts_and_sockets_error() {
        let fabric = NetworkFabric::new();
        assert!(fabric.open_transport("ghost.example", 1).is_err());
        assert!(NetBackend::connect(&fabric, "ghost.example", 1).is_err());
        assert!(NetBackend::send(&fabric, 42, b"x").is_err());
        assert!(NetBackend::recv(&fabric, 42, 1).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let fabric = NetworkFabric::new();
        fabric.register_service("cloud.example", Arc::new(UpperCaseService));
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        t.send(b"12345678").unwrap();
        let stats = fabric.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.bytes_sent, 8);
        assert_eq!(stats.bytes_received, 8);
        assert_eq!(stats.faulted(), 0);
    }

    #[test]
    fn bounded_queue_surfaces_backpressure() {
        let fabric = NetworkFabric::new().with_queue_depth(2);
        fabric.register_service("cloud.example", Arc::new(UpperCaseService));
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        t.send(b"a").unwrap();
        t.send(b"b").unwrap();
        assert!(matches!(
            t.send(b"c"),
            Err(RelayError::Backpressure { depth: 2, .. })
        ));
        assert_eq!(fabric.stats().queue_full, 1);
        // Draining one message frees a slot.
        assert_eq!(t.recv(16).unwrap(), b"A");
        t.send(b"d").unwrap();
        assert_eq!(t.recv(16).unwrap(), b"B");
        assert_eq!(t.recv(16).unwrap(), b"D");
    }

    #[test]
    fn fault_schedule_is_a_pure_function_of_coordinates() {
        let spec = FaultSpec {
            drop_permille: 100,
            duplicate_permille: 50,
            reorder_permille: 30,
            corrupt_permille: 20,
            outage: Some((500, 600)),
            ..FaultSpec::none(0xE20)
        };
        for seq in 0..2000u64 {
            assert_eq!(spec.classify(seq), spec.classify(seq));
        }
        // Outage overrides the roll inside its window.
        assert_eq!(spec.classify(500), FaultClass::Outage);
        assert_eq!(spec.classify(599), FaultClass::Outage);
        assert_ne!(spec.classify(600), FaultClass::Outage);
        // Rates land in the right ballpark over a long horizon.
        let mut dropped = 0u32;
        for seq in 0..10_000u64 {
            if spec.classify(seq) == FaultClass::Drop {
                dropped += 1;
            }
        }
        assert!((700..=1300).contains(&dropped), "dropped {dropped}");
        // Different devices see different schedules.
        let other = spec.for_device(7);
        assert!((0..2000u64).any(|s| spec.classify(s) != other.classify(s)));
    }

    #[test]
    fn faults_drop_duplicate_and_corrupt_deterministically() {
        let spec = FaultSpec {
            drop_permille: 1000,
            ..FaultSpec::none(1)
        };
        let run = |spec: FaultSpec, sends: usize| {
            let service = RecordingService::new();
            let fabric = NetworkFabric::new().with_faults(Some(spec));
            fabric.register_service("cloud.example", service.clone());
            let t = fabric.open_transport("cloud.example", 443).unwrap();
            for i in 0..sends {
                t.send(&[i as u8]).unwrap();
            }
            let seen = service.seen.lock().clone();
            (fabric.stats(), seen)
        };
        let (stats, seen) = run(spec, 5);
        assert_eq!(stats.dropped, 5);
        assert!(seen.is_empty());

        let (stats, seen) = run(
            FaultSpec {
                duplicate_permille: 1000,
                ..FaultSpec::none(2)
            },
            3,
        );
        assert_eq!(stats.duplicated, 3);
        assert_eq!(seen.len(), 6);

        let (stats, seen) = run(
            FaultSpec {
                corrupt_permille: 1000,
                ..FaultSpec::none(3)
            },
            1,
        );
        assert_eq!(stats.corrupted, 1);
        assert_eq!(seen.len(), 1);
        assert_ne!(seen[0], vec![0u8]);

        // Identical specs produce identical traces.
        let chaotic = FaultSpec {
            drop_permille: 300,
            duplicate_permille: 300,
            corrupt_permille: 300,
            ..FaultSpec::none(4)
        };
        assert_eq!(run(chaotic, 64), run(chaotic, 64));
    }

    #[test]
    fn reordered_sends_arrive_late_and_close_flushes_the_straggler() {
        // Reorder every send: each request is held until the next one.
        let spec = FaultSpec {
            reorder_permille: 1000,
            ..FaultSpec::none(5)
        };
        let service = RecordingService::new();
        let fabric = NetworkFabric::new().with_faults(Some(spec));
        fabric.register_service("cloud.example", service.clone());
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        t.send(b"first").unwrap();
        assert!(t.recv(64).unwrap().is_empty());
        t.send(b"second").unwrap();
        // "first" arrived *after* "second" was stashed — nothing yet.
        assert_eq!(service.seen.lock().as_slice(), [b"first".to_vec()]);
        // Close flushes the stashed "second" so stats stay consistent.
        t.close();
        assert_eq!(
            service.seen.lock().as_slice(),
            [b"first".to_vec(), b"second".to_vec()]
        );
        let stats = fabric.stats();
        assert_eq!(stats.reordered, 2);
        assert_eq!(stats.bytes_sent, 11);
    }

    #[test]
    fn fabric_serves_as_supplicant_net_backend() {
        use perisec_optee::{RpcRequest, Supplicant};
        let fabric = NetworkFabric::new();
        fabric.register_service("avs.example", Arc::new(UpperCaseService));
        let supplicant = Supplicant::new();
        supplicant.set_net_backend(Arc::new(fabric));
        let socket = match supplicant
            .handle(RpcRequest::NetConnect {
                host: "avs.example".into(),
                port: 443,
            })
            .unwrap()
        {
            perisec_optee::RpcReply::Socket(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        supplicant
            .handle(RpcRequest::NetSend {
                socket,
                data: b"ping".to_vec(),
            })
            .unwrap();
        match supplicant
            .handle(RpcRequest::NetRecv { socket, max: 16 })
            .unwrap()
        {
            perisec_optee::RpcReply::Data(d) => assert_eq!(d, b"PING"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
