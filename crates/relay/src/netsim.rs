//! The in-process network fabric.
//!
//! Stands in for the Internet between the IoT device and the cloud.
//! Services register under a hostname; connections are pairs of byte
//! queues. The fabric implements [`NetBackend`], so the TEE supplicant's
//! socket RPCs (issued on behalf of the relay running in the TA) terminate
//! here, and it also hands out [`Transport`] handles for normal-world
//! clients (the unprotected baseline pipeline).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use perisec_optee::{NetBackend, TeeError, TeeResult};

use crate::{RelayError, Result};

/// A network service: receives request bytes, returns response bytes.
///
/// The fabric delivers each `send` on a connection to the service and
/// queues whatever the service returns for the next `recv` on that
/// connection — a synchronous request/response fabric, which is all the
/// relay protocol needs.
pub trait NetworkService: Send + Sync {
    /// Handles one request on connection `conn` and returns the response
    /// bytes (possibly empty).
    fn handle(&self, conn: u64, request: &[u8]) -> Vec<u8>;
}

struct Connection {
    service: Arc<dyn NetworkService>,
    pending: VecDeque<u8>,
    bytes_sent: u64,
    bytes_received: u64,
}

/// Counters of fabric activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Connections opened since creation.
    pub connections: u64,
    /// Application bytes sent towards services.
    pub bytes_sent: u64,
    /// Application bytes returned to clients.
    pub bytes_received: u64,
}

/// The network fabric.
#[derive(Clone, Default)]
pub struct NetworkFabric {
    inner: Arc<FabricInner>,
}

#[derive(Default)]
struct FabricInner {
    services: Mutex<HashMap<String, Arc<dyn NetworkService>>>,
    connections: Mutex<HashMap<u64, Connection>>,
    next_conn: AtomicU64,
    stats: Mutex<FabricStats>,
}

impl std::fmt::Debug for NetworkFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkFabric")
            .field("services", &self.inner.services.lock().len())
            .field("connections", &self.inner.connections.lock().len())
            .finish()
    }
}

impl NetworkFabric {
    /// Creates an empty fabric.
    pub fn new() -> Self {
        NetworkFabric::default()
    }

    /// Registers `service` under `host` (replacing any previous service).
    pub fn register_service(&self, host: &str, service: Arc<dyn NetworkService>) {
        self.inner.services.lock().insert(host.to_owned(), service);
    }

    /// Current statistics.
    pub fn stats(&self) -> FabricStats {
        *self.inner.stats.lock()
    }

    /// Opens a connection and returns a [`Transport`] for direct
    /// (normal-world) use.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Unreachable`] for unknown hosts.
    pub fn open_transport(&self, host: &str, port: u16) -> Result<Transport> {
        let conn = self
            .connect(host, port)
            .map_err(|_| RelayError::Unreachable {
                host: host.to_owned(),
            })?;
        Ok(Transport {
            fabric: self.clone(),
            conn,
        })
    }

    fn service_of(&self, host: &str) -> Option<Arc<dyn NetworkService>> {
        self.inner.services.lock().get(host).cloned()
    }
}

impl NetBackend for NetworkFabric {
    fn connect(&self, host: &str, _port: u16) -> TeeResult<u64> {
        let service = self.service_of(host).ok_or(TeeError::Communication {
            reason: format!("no route to host '{host}'"),
        })?;
        let conn = self.inner.next_conn.fetch_add(1, Ordering::SeqCst) + 1;
        self.inner.connections.lock().insert(
            conn,
            Connection {
                service,
                pending: VecDeque::new(),
                bytes_sent: 0,
                bytes_received: 0,
            },
        );
        self.inner.stats.lock().connections += 1;
        Ok(conn)
    }

    fn send(&self, socket: u64, data: &[u8]) -> TeeResult<usize> {
        let mut connections = self.inner.connections.lock();
        let connection = connections
            .get_mut(&socket)
            .ok_or(TeeError::Communication {
                reason: format!("unknown socket {socket}"),
            })?;
        let response = connection.service.handle(socket, data);
        connection.bytes_sent += data.len() as u64;
        connection.bytes_received += response.len() as u64;
        let mut stats = self.inner.stats.lock();
        stats.bytes_sent += data.len() as u64;
        stats.bytes_received += response.len() as u64;
        connection.pending.extend(response);
        Ok(data.len())
    }

    fn recv(&self, socket: u64, max: usize) -> TeeResult<Vec<u8>> {
        let mut connections = self.inner.connections.lock();
        let connection = connections
            .get_mut(&socket)
            .ok_or(TeeError::Communication {
                reason: format!("unknown socket {socket}"),
            })?;
        let n = max.min(connection.pending.len());
        Ok(connection.pending.drain(..n).collect())
    }

    fn close(&self, socket: u64) {
        self.inner.connections.lock().remove(&socket);
    }
}

/// A direct (normal-world) connection handle over the fabric.
#[derive(Debug, Clone)]
pub struct Transport {
    fabric: NetworkFabric,
    conn: u64,
}

impl Transport {
    /// Sends request bytes to the service.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Transport`] if the connection is gone.
    pub fn send(&self, data: &[u8]) -> Result<usize> {
        NetBackend::send(&self.fabric, self.conn, data).map_err(RelayError::from)
    }

    /// Receives up to `max` response bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::Transport`] if the connection is gone.
    pub fn recv(&self, max: usize) -> Result<Vec<u8>> {
        NetBackend::recv(&self.fabric, self.conn, max).map_err(RelayError::from)
    }

    /// Closes the connection.
    pub fn close(&self) {
        NetBackend::close(&self.fabric, self.conn);
    }

    /// The underlying socket id.
    pub fn socket(&self) -> u64 {
        self.conn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpperCaseService;
    impl NetworkService for UpperCaseService {
        fn handle(&self, _conn: u64, request: &[u8]) -> Vec<u8> {
            request.to_ascii_uppercase()
        }
    }

    #[test]
    fn request_response_round_trip() {
        let fabric = NetworkFabric::new();
        fabric.register_service("cloud.example", Arc::new(UpperCaseService));
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        assert_eq!(t.send(b"hello").unwrap(), 5);
        assert_eq!(t.recv(100).unwrap(), b"HELLO");
        // Partial reads drain the buffer.
        t.send(b"abc").unwrap();
        assert_eq!(t.recv(2).unwrap(), b"AB");
        assert_eq!(t.recv(2).unwrap(), b"C");
        assert!(t.recv(2).unwrap().is_empty());
        t.close();
        assert!(t.send(b"x").is_err());
    }

    #[test]
    fn unknown_hosts_and_sockets_error() {
        let fabric = NetworkFabric::new();
        assert!(fabric.open_transport("ghost.example", 1).is_err());
        assert!(NetBackend::connect(&fabric, "ghost.example", 1).is_err());
        assert!(NetBackend::send(&fabric, 42, b"x").is_err());
        assert!(NetBackend::recv(&fabric, 42, 1).is_err());
    }

    #[test]
    fn stats_track_traffic() {
        let fabric = NetworkFabric::new();
        fabric.register_service("cloud.example", Arc::new(UpperCaseService));
        let t = fabric.open_transport("cloud.example", 443).unwrap();
        t.send(b"12345678").unwrap();
        let stats = fabric.stats();
        assert_eq!(stats.connections, 1);
        assert_eq!(stats.bytes_sent, 8);
        assert_eq!(stats.bytes_received, 8);
    }

    #[test]
    fn fabric_serves_as_supplicant_net_backend() {
        use perisec_optee::{RpcRequest, Supplicant};
        let fabric = NetworkFabric::new();
        fabric.register_service("avs.example", Arc::new(UpperCaseService));
        let supplicant = Supplicant::new();
        supplicant.set_net_backend(Arc::new(fabric));
        let socket = match supplicant
            .handle(RpcRequest::NetConnect {
                host: "avs.example".into(),
                port: 443,
            })
            .unwrap()
        {
            perisec_optee::RpcReply::Socket(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        supplicant
            .handle(RpcRequest::NetSend {
                socket,
                data: b"ping".to_vec(),
            })
            .unwrap();
        match supplicant
            .handle(RpcRequest::NetRecv { socket, max: 16 })
            .unwrap()
        {
            perisec_optee::RpcReply::Data(d) => assert_eq!(d, b"PING"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
