//! The TLS-like secure channel.
//!
//! A TLS-1.3-flavoured pre-shared-key channel: an explicit two-message
//! handshake derives directional traffic keys with HKDF, then application
//! data flows in ChaCha20-Poly1305-protected records with explicit
//! sequence numbers. This reproduces the structure (and the compute cost
//! profile) of the relay's TLS endpoint without an X.509/ECDH stack; the
//! device is provisioned with the cloud PSK the way real AVS devices are
//! provisioned with client credentials.
//!
//! Record format: `u32 length || ciphertext+tag`. Handshake messages are
//! unencrypted `CLIENT_HELLO || 32-byte random` and `SERVER_HELLO ||
//! 32-byte random`.
//!
//! On lossy paths the implicit per-direction sequence counters desync the
//! moment a record is dropped or duplicated, so both halves also speak
//! DTLS-style *explicit-sequence* records: `u32 length || EXPLICIT_RECORD
//! || u64 sequence || ciphertext+tag`, sealed with [`SecureChannelClient::
//! seal_at`] / opened with [`SecureChannelServer::open_explicit`]. Sealing
//! at a sequence is non-mutating, so a retransmission reproduces the exact
//! record bytes, and the nonce is bound to the carried sequence rather
//! than to arrival order.

use perisec_optee::crypto::{aead_open, aead_seal, hkdf, nonce_from_sequence, AEAD_KEY_LEN};

use crate::{RelayError, Result};

/// Length of the pre-shared key.
pub const PSK_LEN: usize = 32;

/// First payload byte of a ClientHello (exposed so the cloud can spot a
/// retransmitted hello on an already-established connection).
pub const CLIENT_HELLO: u8 = 0x01;
const SERVER_HELLO: u8 = 0x02;
/// First payload byte of an explicit-sequence application record.
pub const EXPLICIT_RECORD: u8 = 0x17;
const RANDOM_LEN: usize = 32;

/// The first payload byte of a framed message, without consuming it —
/// how a receiver dispatches between handshake, explicit-sequence and
/// legacy implicit records.
pub fn peek_record_type(data: &[u8]) -> Option<u8> {
    if data.len() < 5 {
        return None;
    }
    Some(data[4])
}

fn derive_keys(
    psk: &[u8; PSK_LEN],
    client_random: &[u8],
    server_random: &[u8],
) -> ([u8; 32], [u8; 32]) {
    let mut salt = Vec::with_capacity(RANDOM_LEN * 2);
    salt.extend_from_slice(client_random);
    salt.extend_from_slice(server_random);
    let material = hkdf(&salt, psk, b"perisec-relay-channel", AEAD_KEY_LEN * 2);
    let mut c2s = [0u8; 32];
    let mut s2c = [0u8; 32];
    c2s.copy_from_slice(&material[..32]);
    s2c.copy_from_slice(&material[32..]);
    (c2s, s2c)
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

fn seal_explicit(key: &[u8; 32], seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let nonce = nonce_from_sequence(seq);
    let ciphertext = aead_seal(key, &nonce, b"perisec-record", plaintext);
    let mut payload = Vec::with_capacity(9 + ciphertext.len());
    payload.push(EXPLICIT_RECORD);
    payload.extend_from_slice(&seq.to_be_bytes());
    payload.extend_from_slice(&ciphertext);
    frame(&payload)
}

fn open_explicit_with(key: &[u8; 32], record: &[u8]) -> Result<(u64, Vec<u8>)> {
    let (payload, _) = unframe(record)?;
    if payload.len() < 9 + 16 || payload[0] != EXPLICIT_RECORD {
        return Err(RelayError::ChannelError {
            reason: "not an explicit-sequence record".to_owned(),
        });
    }
    let seq = u64::from_be_bytes(payload[1..9].try_into().expect("8 bytes"));
    let nonce = nonce_from_sequence(seq);
    let plaintext = aead_open(key, &nonce, b"perisec-record", &payload[9..]).map_err(|_| {
        RelayError::ChannelError {
            reason: "explicit record authentication failed".to_owned(),
        }
    })?;
    Ok((seq, plaintext))
}

fn unframe(data: &[u8]) -> Result<(Vec<u8>, usize)> {
    if data.len() < 4 {
        return Err(RelayError::ChannelError {
            reason: "record too short for its header".to_owned(),
        });
    }
    let len = u32::from_be_bytes(data[..4].try_into().expect("4 bytes")) as usize;
    if data.len() < 4 + len {
        return Err(RelayError::ChannelError {
            reason: format!(
                "record truncated: header says {len}, got {}",
                data.len() - 4
            ),
        });
    }
    Ok((data[4..4 + len].to_vec(), 4 + len))
}

/// Client side of the secure channel (runs in the TA, or in the baseline's
/// normal-world app).
#[derive(Debug, Clone)]
pub struct SecureChannelClient {
    psk: [u8; PSK_LEN],
    client_random: [u8; RANDOM_LEN],
    send_key: Option<[u8; 32]>,
    recv_key: Option<[u8; 32]>,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannelClient {
    /// Creates a client provisioned with `psk`. The client random is
    /// derived deterministically from `session_nonce` so simulated runs are
    /// reproducible.
    pub fn new(psk: [u8; PSK_LEN], session_nonce: u64) -> Self {
        let mut client_random = [0u8; RANDOM_LEN];
        let seed = hkdf(
            &session_nonce.to_be_bytes(),
            &psk,
            b"client-random",
            RANDOM_LEN,
        );
        client_random.copy_from_slice(&seed);
        SecureChannelClient {
            psk,
            client_random,
            send_key: None,
            recv_key: None,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.send_key.is_some()
    }

    /// Produces the ClientHello message to send to the server.
    pub fn client_hello(&self) -> Vec<u8> {
        let mut hello = vec![CLIENT_HELLO];
        hello.extend_from_slice(&self.client_random);
        frame(&hello)
    }

    /// Processes the ServerHello and derives the traffic keys.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on malformed messages.
    pub fn process_server_hello(&mut self, data: &[u8]) -> Result<()> {
        let (payload, _) = unframe(data)?;
        if payload.len() != 1 + RANDOM_LEN || payload[0] != SERVER_HELLO {
            return Err(RelayError::ChannelError {
                reason: "malformed server hello".to_owned(),
            });
        }
        let (c2s, s2c) = derive_keys(&self.psk, &self.client_random, &payload[1..]);
        self.send_key = Some(c2s);
        self.recv_key = Some(s2c);
        Ok(())
    }

    /// Protects one application record.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] before the handshake completes.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>> {
        let key = self.send_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        let nonce = nonce_from_sequence(self.send_seq);
        self.send_seq += 1;
        Ok(frame(&aead_seal(
            &key,
            &nonce,
            b"perisec-record",
            plaintext,
        )))
    }

    /// Opens one protected record from the server.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on authentication failure or a
    /// not-yet-established channel.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>> {
        let key = self.recv_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        let (payload, _) = unframe(record)?;
        let nonce = nonce_from_sequence(self.recv_seq);
        self.recv_seq += 1;
        aead_open(&key, &nonce, b"perisec-record", &payload).map_err(|_| RelayError::ChannelError {
            reason: "record authentication failed".to_owned(),
        })
    }

    /// Protects one application record at an *explicit* sequence number,
    /// without touching the implicit counters. Retransmitting the same
    /// `(seq, plaintext)` reproduces byte-identical record bytes.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] before the handshake completes.
    pub fn seal_at(&self, seq: u64, plaintext: &[u8]) -> Result<Vec<u8>> {
        let key = self.send_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        Ok(seal_explicit(&key, seq, plaintext))
    }

    /// Opens one explicit-sequence record from the server, returning the
    /// sequence it carries alongside the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on authentication failure or a
    /// not-yet-established channel.
    pub fn open_explicit(&self, record: &[u8]) -> Result<(u64, Vec<u8>)> {
        let key = self.recv_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        open_explicit_with(&key, record)
    }
}

/// Server side of the secure channel (runs in the mock cloud).
#[derive(Debug, Clone)]
pub struct SecureChannelServer {
    psk: [u8; PSK_LEN],
    server_random: [u8; RANDOM_LEN],
    send_key: Option<[u8; 32]>,
    recv_key: Option<[u8; 32]>,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannelServer {
    /// Creates a server provisioned with the same PSK.
    pub fn new(psk: [u8; PSK_LEN], server_nonce: u64) -> Self {
        let mut server_random = [0u8; RANDOM_LEN];
        let seed = hkdf(
            &server_nonce.to_be_bytes(),
            &psk,
            b"server-random",
            RANDOM_LEN,
        );
        server_random.copy_from_slice(&seed);
        SecureChannelServer {
            psk,
            server_random,
            send_key: None,
            recv_key: None,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.recv_key.is_some()
    }

    /// Processes a ClientHello and returns the ServerHello to send back.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on malformed messages.
    pub fn process_client_hello(&mut self, data: &[u8]) -> Result<Vec<u8>> {
        let (payload, _) = unframe(data)?;
        if payload.len() != 1 + RANDOM_LEN || payload[0] != CLIENT_HELLO {
            return Err(RelayError::ChannelError {
                reason: "malformed client hello".to_owned(),
            });
        }
        let (c2s, s2c) = derive_keys(&self.psk, &payload[1..], &self.server_random);
        self.recv_key = Some(c2s);
        self.send_key = Some(s2c);
        let mut hello = vec![SERVER_HELLO];
        hello.extend_from_slice(&self.server_random);
        Ok(frame(&hello))
    }

    /// Opens one protected record from the client.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on authentication failure.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>> {
        let key = self.recv_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        let (payload, _) = unframe(record)?;
        let nonce = nonce_from_sequence(self.recv_seq);
        self.recv_seq += 1;
        aead_open(&key, &nonce, b"perisec-record", &payload).map_err(|_| RelayError::ChannelError {
            reason: "record authentication failed".to_owned(),
        })
    }

    /// Protects one record towards the client.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] before the handshake completes.
    pub fn seal(&mut self, plaintext: &[u8]) -> Result<Vec<u8>> {
        let key = self.send_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        let nonce = nonce_from_sequence(self.send_seq);
        self.send_seq += 1;
        Ok(frame(&aead_seal(
            &key,
            &nonce,
            b"perisec-record",
            plaintext,
        )))
    }

    /// Opens one explicit-sequence record from the client, returning the
    /// carried sequence alongside the plaintext.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] on authentication failure or a
    /// not-yet-established channel.
    pub fn open_explicit(&self, record: &[u8]) -> Result<(u64, Vec<u8>)> {
        let key = self.recv_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        open_explicit_with(&key, record)
    }

    /// Protects one record towards the client at an explicit sequence —
    /// the ack to an explicit-sequence record echoes that record's
    /// sequence, so a retransmitted ack is byte-identical.
    ///
    /// # Errors
    ///
    /// Returns [`RelayError::ChannelError`] before the handshake completes.
    pub fn seal_at(&self, seq: u64, plaintext: &[u8]) -> Result<Vec<u8>> {
        let key = self.send_key.ok_or(RelayError::ChannelError {
            reason: "channel not established".to_owned(),
        })?;
        Ok(seal_explicit(&key, seq, plaintext))
    }
}

/// Approximate multiply-accumulate cost of protecting `bytes` of
/// application data (ChaCha20 + Poly1305 are roughly 10 operations per
/// byte); used when charging the TA's relay work to the platform.
pub fn seal_flops(bytes: usize) -> u64 {
    (bytes as u64) * 10 + 2_000
}

#[cfg(test)]
mod tests {
    use super::*;

    fn establish() -> (SecureChannelClient, SecureChannelServer) {
        let psk = [0x42u8; PSK_LEN];
        let mut client = SecureChannelClient::new(psk, 1);
        let mut server = SecureChannelServer::new(psk, 2);
        let server_hello = server.process_client_hello(&client.client_hello()).unwrap();
        client.process_server_hello(&server_hello).unwrap();
        (client, server)
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let (client, server) = establish();
        assert!(client.is_established());
        assert!(server.is_established());
    }

    #[test]
    fn records_round_trip_in_both_directions() {
        let (mut client, mut server) = establish();
        for i in 0..5u8 {
            let record = client.seal(&[i; 100]).unwrap();
            assert_eq!(server.open(&record).unwrap(), vec![i; 100]);
            let reply = server.seal(&[i ^ 0xff; 32]).unwrap();
            assert_eq!(client.open(&reply).unwrap(), vec![i ^ 0xff; 32]);
        }
    }

    #[test]
    fn ciphertext_hides_plaintext_and_tampering_is_detected() {
        let (mut client, mut server) = establish();
        let secret = b"my pin code is four two four two";
        let record = client.seal(secret).unwrap();
        assert!(!record.windows(secret.len()).any(|w| w == secret.as_slice()));
        let mut tampered = record.clone();
        let len = tampered.len();
        tampered[len - 1] ^= 1;
        assert!(server.open(&tampered).is_err());
        // The sequence number advanced on the failed attempt; a fresh pair
        // still interoperates.
        let (mut c2, mut s2) = establish();
        let r = c2.seal(b"ok").unwrap();
        assert_eq!(s2.open(&r).unwrap(), b"ok");
    }

    #[test]
    fn wrong_psk_fails_record_authentication() {
        let mut client = SecureChannelClient::new([1u8; PSK_LEN], 1);
        let mut server = SecureChannelServer::new([2u8; PSK_LEN], 2);
        let server_hello = server.process_client_hello(&client.client_hello()).unwrap();
        client.process_server_hello(&server_hello).unwrap();
        let record = client.seal(b"hello").unwrap();
        assert!(server.open(&record).is_err());
    }

    #[test]
    fn usage_before_handshake_is_rejected() {
        let psk = [3u8; PSK_LEN];
        let mut client = SecureChannelClient::new(psk, 1);
        assert!(client.seal(b"x").is_err());
        assert!(client.open(b"x").is_err());
        let mut server = SecureChannelServer::new(psk, 1);
        assert!(server.seal(b"x").is_err());
        // Malformed hellos.
        assert!(server.process_client_hello(&[0, 0, 0, 1, 9]).is_err());
        assert!(client.process_server_hello(&[1, 2]).is_err());
    }

    #[test]
    fn seal_flops_scale_with_payload() {
        assert!(seal_flops(10_000) > seal_flops(100));
    }

    #[test]
    fn explicit_records_survive_reordering_and_retransmission() {
        let (client, server) = establish();
        let a = client.seal_at(0, b"first").unwrap();
        let b = client.seal_at(1, b"second").unwrap();
        // Retransmission reproduces the record byte for byte.
        assert_eq!(a, client.seal_at(0, b"first").unwrap());
        // Out-of-order arrival still opens, and the carried sequence
        // identifies each record.
        assert_eq!(server.open_explicit(&b).unwrap(), (1, b"second".to_vec()));
        assert_eq!(server.open_explicit(&a).unwrap(), (0, b"first".to_vec()));
        // The ack path mirrors it.
        let ack = server.seal_at(1, b"ok").unwrap();
        assert_eq!(client.open_explicit(&ack).unwrap(), (1, b"ok".to_vec()));
    }

    #[test]
    fn explicit_records_reject_tampering_and_wrong_kinds() {
        let (client, server) = establish();
        let record = client.seal_at(7, b"payload").unwrap();
        let mut tampered = record.clone();
        let len = tampered.len();
        tampered[len - 1] ^= 1;
        assert!(server.open_explicit(&tampered).is_err());
        // Flipping the carried sequence breaks the nonce binding.
        let mut reseq = record.clone();
        reseq[12] ^= 1;
        assert!(server.open_explicit(&reseq).is_err());
        // Implicit records are not explicit records.
        let mut c2 = client.clone();
        let implicit = c2.seal(b"payload").unwrap();
        assert!(server.open_explicit(&implicit).is_err());
        assert_eq!(peek_record_type(&record), Some(EXPLICIT_RECORD));
        assert_eq!(
            peek_record_type(&SecureChannelClient::new([9; PSK_LEN], 1).client_hello()),
            Some(CLIENT_HELLO)
        );
        assert_eq!(peek_record_type(&[0, 0]), None);
    }
}
