//! Adaptive batch sizing against a latency SLO.
//!
//! The implementation moved to `perisec_core::batcher` so the plain audio
//! pipeline (which lives in the core crate and cannot depend on this one)
//! can share it; this module re-exports it under its historical path, so
//! `perisec_sched::batcher::AdaptiveBatcher` and
//! `perisec_sched::AdaptiveBatcher` keep working unchanged.

pub use perisec_core::batcher::AdaptiveBatcher;
