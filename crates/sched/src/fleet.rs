//! The sharded fleet harness.
//!
//! [`ShardedFleet`] is the scheduler-aware sibling of
//! [`perisec_core::fleet::PipelineFleet`]: it consumes the very same
//! [`FleetConfig`] — including the `tee_cores` knob PipelineFleet rejects
//! above 1 — and runs every camera device as a
//! [`ShardedVisionPipeline`] over its own secure-core pool, while audio
//! devices keep their classic single-session pipelines. All devices
//! share one trained model set, and device reports merge into the same
//! [`FleetReport`] (percentiles included), so sharded and unsharded
//! fleets are compared with identical instruments.
//!
//! Devices execute on the same bounded work-stealing
//! [`FleetExecutor`](perisec_core::executor::FleetExecutor) as the
//! unsharded fleet — audio devices reuse
//! [`perisec_core::fleet::audio_device_task`] verbatim, camera devices
//! wrap a [`ShardedVisionPipeline`] in the same resumable `DeviceTask`
//! shape — so `FleetConfig::workers` bounds the host threads and the
//! resident pipeline stacks of a sharded fleet exactly as it does for an
//! unsharded one.

use perisec_core::executor::{
    run_thread_per_device, DeviceTask, ExecutorConfig, ExecutorStats, FleetExecutor, QueuedDevice,
    StepOutcome,
};
use perisec_core::fleet::{audio_device_task, DeviceReport, FleetConfig, FleetReport, Modality};
use perisec_core::pipeline::SharedModels;
use perisec_core::{CoreError, Result};
use perisec_workload::scenario::{CameraScenario, Scenario};

use crate::pipeline::{ShardedCameraConfig, ShardedScenarioProgress, ShardedVisionPipeline};
use crate::pool::TeePoolConfig;

/// A fleet whose camera devices each run on a multi-core TEE pool.
#[derive(Debug, Clone)]
pub struct ShardedFleet {
    config: FleetConfig,
    models: SharedModels,
}

/// The resumable sharded-camera state machine: a built
/// [`ShardedVisionPipeline`] plus a scenario cursor; each step is one
/// fanned TEE crossing.
struct ShardedCameraTask {
    device: usize,
    scenario: std::sync::Arc<CameraScenario>,
    pipeline: ShardedVisionPipeline,
    progress: Option<ShardedScenarioProgress>,
}

impl DeviceTask for ShardedCameraTask {
    fn step(&mut self) -> Result<StepOutcome> {
        let mut progress = self.progress.take().expect("task stepped after completion");
        if self.pipeline.step_scenario(&self.scenario, &mut progress)? {
            self.progress = Some(progress);
            return Ok(StepOutcome::Yielded);
        }
        let run = self.pipeline.finish_scenario(&self.scenario, progress);
        Ok(StepOutcome::Complete(Box::new(DeviceReport {
            device: self.device,
            modality: Modality::Camera,
            scenario: self.scenario.name.clone(),
            report: run.report,
        })))
    }
}

/// Queues one sharded camera device for the fleet executor.
fn sharded_camera_task(
    device: usize,
    scenario: std::sync::Arc<CameraScenario>,
    config: ShardedCameraConfig,
    models: SharedModels,
) -> QueuedDevice {
    QueuedDevice::new(device, move || {
        let mut pipeline = ShardedVisionPipeline::with_models(config, &models)?;
        let progress = pipeline.begin_scenario();
        Ok(Box::new(ShardedCameraTask {
            device,
            scenario,
            pipeline,
            progress: Some(progress),
        }))
    })
}

impl ShardedFleet {
    /// Builds the fleet, training the shared model set once (lazily per
    /// modality, exactly as [`perisec_core::fleet::PipelineFleet`] does).
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an empty fleet, for `tee_cores == 0`,
    /// or for sharding requested on the single-core constrained platform;
    /// ML training failures propagate.
    pub fn new(config: FleetConfig) -> Result<Self> {
        ShardedFleet::validate(&config)?;
        let models = if config.devices > 0 {
            SharedModels::for_config(&config.pipeline)?
        } else {
            SharedModels::deferred_for_config(&config.pipeline)
        }
        .with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        Ok(ShardedFleet { config, models })
    }

    /// Builds the fleet around an existing model set.
    ///
    /// # Errors
    ///
    /// Same validation as [`ShardedFleet::new`], without training.
    pub fn with_models(config: FleetConfig, models: SharedModels) -> Result<Self> {
        ShardedFleet::validate(&config)?;
        let models = models.with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        Ok(ShardedFleet { config, models })
    }

    fn validate(config: &FleetConfig) -> Result<()> {
        if config.devices + config.camera_devices == 0 {
            return Err(CoreError::Config {
                reason: "fleet needs at least one device".to_owned(),
            });
        }
        if config.tee_cores == 0 {
            return Err(CoreError::Config {
                reason: "sharded fleet needs at least one tee core per camera device".to_owned(),
            });
        }
        if config.camera_pipeline.constrained_platform && config.tee_cores > 1 {
            return Err(CoreError::Config {
                reason: "the constrained platform has a single core; it cannot host a \
                         multi-core TEE pool"
                    .to_owned(),
            });
        }
        Ok(())
    }

    /// The per-camera-device pool configuration this fleet implies: the
    /// constrained MCU when the camera config asks for it (validated to
    /// imply `tee_cores == 1`), the Jetson-class pool otherwise.
    fn pool_config(&self) -> TeePoolConfig {
        let mut pool = if self.config.camera_pipeline.constrained_platform {
            TeePoolConfig::constrained_mcu()
        } else {
            TeePoolConfig::jetson(self.config.tee_cores)
        };
        pool.secure_ram_kib = self.config.camera_pipeline.secure_ram_kib;
        pool
    }

    /// The shared model set.
    pub fn models(&self) -> &SharedModels {
        &self.models
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs a mixed fleet: audio devices replay `audio` scenarios on
    /// single-session pipelines; camera devices replay `cameras` scene
    /// schedules, each sharded across `tee_cores` TA sessions; all
    /// multiplexed onto `FleetConfig::workers` executor threads. Audio
    /// devices come first in the merged report.
    ///
    /// # Errors
    ///
    /// Returns the first device failure, or [`CoreError::Config`] when a
    /// modality's devices and scenarios disagree (the same loud-mismatch
    /// contract as the unsharded fleet).
    pub fn run_mixed(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Result<FleetReport> {
        self.run_mixed_stats(audio, cameras)
            .map(|(report, _)| report)
    }

    /// [`ShardedFleet::run_mixed`], also returning the executor's
    /// host-side telemetry.
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedFleet::run_mixed`].
    pub fn run_mixed_stats(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<(FleetReport, ExecutorStats)> {
        self.validate_mixed(audio, cameras)?;
        let executor = FleetExecutor::new(ExecutorConfig::with_workers(self.config.workers));
        let (reports, stats) = executor.run(self.queued_devices(audio, cameras))?;
        Ok((FleetReport::new(reports), stats))
    }

    /// The historical one-thread-per-device harness, kept as the
    /// executor's baseline (shared helper with the unsharded fleet).
    ///
    /// # Errors
    ///
    /// Same contract as [`ShardedFleet::run_mixed`].
    pub fn run_mixed_threaded(
        &self,
        audio: &[Scenario],
        cameras: &[CameraScenario],
    ) -> Result<FleetReport> {
        self.validate_mixed(audio, cameras)?;
        run_thread_per_device(self.queued_devices(audio, cameras)).map(FleetReport::new)
    }

    fn validate_mixed(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Result<()> {
        if self.config.devices > 0 && audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio devices configured but no audio scenarios given".to_owned(),
            });
        }
        if self.config.devices == 0 && !audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio scenarios given but no audio devices configured".to_owned(),
            });
        }
        if self.config.camera_devices > 0 && cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera devices configured but no camera scenarios given".to_owned(),
            });
        }
        if self.config.camera_devices == 0 && !cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera scenarios given but no camera devices configured".to_owned(),
            });
        }
        Ok(())
    }

    fn queued_devices(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Vec<QueuedDevice> {
        use std::sync::Arc;
        let audio_devices = self.config.devices;
        let camera_devices = self.config.camera_devices;
        let pool_config = self.pool_config();
        // One shared copy per distinct scenario; devices hold `Arc`s.
        let audio: Vec<Arc<Scenario>> = audio.iter().cloned().map(Arc::new).collect();
        let cameras: Vec<Arc<CameraScenario>> = cameras.iter().cloned().map(Arc::new).collect();
        let mut tasks = Vec::with_capacity(audio_devices + camera_devices);
        for device in 0..audio_devices {
            tasks.push(audio_device_task(
                device,
                Arc::clone(&audio[device % audio.len()]),
                self.config.pipeline.clone(),
                self.models.clone(),
            ));
        }
        for camera in 0..camera_devices {
            let sharded_config = ShardedCameraConfig {
                camera: self.config.camera_pipeline.clone(),
                pool: pool_config.clone(),
                ..ShardedCameraConfig::default()
            };
            tasks.push(sharded_camera_task(
                audio_devices + camera,
                Arc::clone(&cameras[camera % cameras.len()]),
                sharded_config,
                self.models.clone(),
            ));
        }
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_core::pipeline::CameraPipelineConfig;
    use perisec_tz::time::SimDuration;

    #[test]
    fn sharded_fleet_rejects_degenerate_configs() {
        assert!(ShardedFleet::new(FleetConfig {
            devices: 0,
            camera_devices: 0,
            ..FleetConfig::of(0)
        })
        .is_err());
        assert!(ShardedFleet::new(FleetConfig {
            camera_devices: 1,
            tee_cores: 0,
            ..FleetConfig::of(0)
        })
        .is_err());
        assert!(ShardedFleet::new(FleetConfig {
            camera_devices: 1,
            tee_cores: 2,
            camera_pipeline: CameraPipelineConfig {
                constrained_platform: true,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .is_err());
    }

    #[test]
    fn constrained_camera_fleet_runs_on_the_constrained_pool() {
        use perisec_core::pipeline::SharedModels;
        use perisec_ml::classifier::Architecture;
        let models = SharedModels::deferred(Architecture::Cnn, 16, 0xC0).with_vision_spec(96, 0xC0);
        let config = |constrained: bool| FleetConfig {
            devices: 0,
            camera_devices: 1,
            tee_cores: 1,
            camera_pipeline: CameraPipelineConfig {
                constrained_platform: constrained,
                batch_windows: 2,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        };
        let cameras = CameraScenario::fleet_cameras(1, 6, 0.4, SimDuration::from_secs(1), 0xC0);
        let constrained = ShardedFleet::with_models(config(true), models.clone())
            .unwrap()
            .run_mixed(&[], &cameras)
            .unwrap();
        let jetson = ShardedFleet::with_models(config(false), models)
            .unwrap()
            .run_mixed(&[], &cameras)
            .unwrap();
        // The MCU's cost model is an order of magnitude slower — if the
        // constrained flag were silently dropped the latencies would match
        // the Jetson run instead.
        assert!(constrained.mean_end_to_end() > jetson.mean_end_to_end() * 3);
        assert_eq!(constrained.leaked_sensitive_utterances(), 0);
    }

    #[test]
    fn camera_fleet_shards_each_device_across_cores() {
        let fleet = ShardedFleet::new(FleetConfig {
            devices: 0,
            camera_devices: 2,
            tee_cores: 2,
            camera_pipeline: CameraPipelineConfig {
                batch_windows: 4,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        let cameras = CameraScenario::fleet_cameras(2, 8, 0.4, SimDuration::from_secs(1), 0x5F1EE7);
        let (report, stats) = fleet.run_mixed_stats(&[], &cameras).unwrap();
        assert_eq!(report.device_count_of(Modality::Camera), 2);
        assert_eq!(report.total_utterances(), 16);
        assert_eq!(report.leaked_sensitive_utterances(), 0);
        assert!(
            report.total_smc_calls() >= 4,
            "both shards of both devices entered"
        );
        assert!(report.latency_percentiles().p99 > SimDuration::ZERO);
        // The executor bounded residency for sharded devices too.
        assert!(stats.peak_resident <= stats.workers);
        // Scenario-vs-device mismatches stay loud.
        assert!(fleet.run_mixed(&[], &[]).is_err());
        let audio = Scenario::fleet(1, 2, 0.5, SimDuration::from_secs(1), 1);
        assert!(fleet.run_mixed(&audio, &cameras).is_err());
        assert!(fleet.run_mixed_threaded(&audio, &cameras).is_err());
    }

    #[test]
    fn executor_and_threaded_sharded_fleets_agree() {
        use perisec_core::pipeline::SharedModels;
        use perisec_ml::classifier::Architecture;
        let models =
            SharedModels::deferred(Architecture::Cnn, 16, 0x5EED).with_vision_spec(96, 0x5EED);
        let fleet = ShardedFleet::with_models(
            FleetConfig {
                devices: 0,
                camera_devices: 3,
                tee_cores: 2,
                workers: 2,
                camera_pipeline: CameraPipelineConfig {
                    batch_windows: 4,
                    ..CameraPipelineConfig::default()
                },
                ..FleetConfig::of(0)
            },
            models,
        )
        .unwrap();
        let cameras = CameraScenario::fleet_cameras(3, 6, 0.4, SimDuration::from_secs(1), 0x5EED);
        let pooled = fleet.run_mixed(&[], &cameras).unwrap();
        let threaded = fleet.run_mixed_threaded(&[], &cameras).unwrap();
        assert_eq!(pooled.to_json(), threaded.to_json());
    }
}
