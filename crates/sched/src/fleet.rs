//! The sharded fleet harness.
//!
//! [`ShardedFleet`] is the scheduler-aware sibling of
//! [`perisec_core::fleet::PipelineFleet`]: it consumes the very same
//! [`FleetConfig`] — including the `tee_cores` knob PipelineFleet rejects
//! above 1 — and runs every camera device as a
//! [`ShardedVisionPipeline`] over its own secure-core pool, while audio
//! devices keep their classic single-session pipelines. All devices
//! share one trained model set, and device reports merge into the same
//! [`FleetReport`] (percentiles included), so sharded and unsharded
//! fleets are compared with identical instruments.

use std::thread;

use perisec_core::fleet::{DeviceReport, FleetConfig, FleetReport, Modality};
use perisec_core::pipeline::{SecurePipeline, SharedModels};
use perisec_core::{CoreError, Result};
use perisec_workload::scenario::{CameraScenario, Scenario};

use crate::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
use crate::pool::TeePoolConfig;

/// A fleet whose camera devices each run on a multi-core TEE pool.
#[derive(Debug, Clone)]
pub struct ShardedFleet {
    config: FleetConfig,
    models: SharedModels,
}

impl ShardedFleet {
    /// Builds the fleet, training the shared model set once (lazily per
    /// modality, exactly as [`perisec_core::fleet::PipelineFleet`] does).
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for an empty fleet, for `tee_cores == 0`,
    /// or for sharding requested on the single-core constrained platform;
    /// ML training failures propagate.
    pub fn new(config: FleetConfig) -> Result<Self> {
        ShardedFleet::validate(&config)?;
        let models = if config.devices > 0 {
            SharedModels::for_config(&config.pipeline)?
        } else {
            SharedModels::deferred_for_config(&config.pipeline)
        }
        .with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        Ok(ShardedFleet { config, models })
    }

    /// Builds the fleet around an existing model set.
    ///
    /// # Errors
    ///
    /// Same validation as [`ShardedFleet::new`], without training.
    pub fn with_models(config: FleetConfig, models: SharedModels) -> Result<Self> {
        ShardedFleet::validate(&config)?;
        let models = models.with_vision_spec(
            config.camera_pipeline.train_frames,
            config.camera_pipeline.corpus_seed,
        );
        Ok(ShardedFleet { config, models })
    }

    fn validate(config: &FleetConfig) -> Result<()> {
        if config.devices + config.camera_devices == 0 {
            return Err(CoreError::Config {
                reason: "fleet needs at least one device".to_owned(),
            });
        }
        if config.tee_cores == 0 {
            return Err(CoreError::Config {
                reason: "sharded fleet needs at least one tee core per camera device".to_owned(),
            });
        }
        if config.camera_pipeline.constrained_platform && config.tee_cores > 1 {
            return Err(CoreError::Config {
                reason: "the constrained platform has a single core; it cannot host a \
                         multi-core TEE pool"
                    .to_owned(),
            });
        }
        Ok(())
    }

    /// The per-camera-device pool configuration this fleet implies: the
    /// constrained MCU when the camera config asks for it (validated to
    /// imply `tee_cores == 1`), the Jetson-class pool otherwise.
    fn pool_config(&self) -> TeePoolConfig {
        let mut pool = if self.config.camera_pipeline.constrained_platform {
            TeePoolConfig::constrained_mcu()
        } else {
            TeePoolConfig::jetson(self.config.tee_cores)
        };
        pool.secure_ram_kib = self.config.camera_pipeline.secure_ram_kib;
        pool
    }

    /// The shared model set.
    pub fn models(&self) -> &SharedModels {
        &self.models
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs a mixed fleet: audio devices replay `audio` scenarios on
    /// single-session pipelines; camera devices replay `cameras` scene
    /// schedules, each sharded across `tee_cores` TA sessions. Audio
    /// devices come first in the merged report.
    ///
    /// # Errors
    ///
    /// Returns the first device failure, or [`CoreError::Config`] when a
    /// modality's devices and scenarios disagree (the same loud-mismatch
    /// contract as the unsharded fleet).
    pub fn run_mixed(&self, audio: &[Scenario], cameras: &[CameraScenario]) -> Result<FleetReport> {
        if self.config.devices > 0 && audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio devices configured but no audio scenarios given".to_owned(),
            });
        }
        if self.config.devices == 0 && !audio.is_empty() {
            return Err(CoreError::Config {
                reason: "audio scenarios given but no audio devices configured".to_owned(),
            });
        }
        if self.config.camera_devices > 0 && cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera devices configured but no camera scenarios given".to_owned(),
            });
        }
        if self.config.camera_devices == 0 && !cameras.is_empty() {
            return Err(CoreError::Config {
                reason: "camera scenarios given but no camera devices configured".to_owned(),
            });
        }
        let audio_devices = self.config.devices;
        let camera_devices = self.config.camera_devices;
        let total = audio_devices + camera_devices;
        let pool_config = self.pool_config();
        let outcomes: Vec<Result<DeviceReport>> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(total);
            for device in 0..audio_devices {
                let scenario = &audio[device % audio.len()];
                let pipeline_config = self.config.pipeline.clone();
                let models = &self.models;
                handles.push(scope.spawn(move || -> Result<DeviceReport> {
                    let mut pipeline = SecurePipeline::with_models(pipeline_config, models)?;
                    let report = pipeline.run_scenario(scenario)?;
                    Ok(DeviceReport {
                        device,
                        modality: Modality::Audio,
                        scenario: scenario.name.clone(),
                        report,
                    })
                }));
            }
            for camera in 0..camera_devices {
                let device = audio_devices + camera;
                let scenario = &cameras[camera % cameras.len()];
                let sharded_config = ShardedCameraConfig {
                    camera: self.config.camera_pipeline.clone(),
                    pool: pool_config.clone(),
                    ..ShardedCameraConfig::default()
                };
                let models = &self.models;
                handles.push(scope.spawn(move || -> Result<DeviceReport> {
                    let mut pipeline = ShardedVisionPipeline::with_models(sharded_config, models)?;
                    let run = pipeline.run_scenario(scenario)?;
                    Ok(DeviceReport {
                        device,
                        modality: Modality::Camera,
                        scenario: scenario.name.clone(),
                        report: run.report,
                    })
                }));
            }
            handles
                .into_iter()
                .enumerate()
                .map(|(device, handle)| {
                    handle.join().unwrap_or_else(|payload| {
                        let message = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_owned())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "unknown panic payload".to_owned());
                        Err(CoreError::Config {
                            reason: format!("device {device} pipeline thread panicked: {message}"),
                        })
                    })
                })
                .collect()
        });
        let mut reports = Vec::with_capacity(total);
        for outcome in outcomes {
            reports.push(outcome?);
        }
        Ok(FleetReport { devices: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_core::pipeline::CameraPipelineConfig;
    use perisec_tz::time::SimDuration;

    #[test]
    fn sharded_fleet_rejects_degenerate_configs() {
        assert!(ShardedFleet::new(FleetConfig {
            devices: 0,
            camera_devices: 0,
            ..FleetConfig::of(0)
        })
        .is_err());
        assert!(ShardedFleet::new(FleetConfig {
            camera_devices: 1,
            tee_cores: 0,
            ..FleetConfig::of(0)
        })
        .is_err());
        assert!(ShardedFleet::new(FleetConfig {
            camera_devices: 1,
            tee_cores: 2,
            camera_pipeline: CameraPipelineConfig {
                constrained_platform: true,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .is_err());
    }

    #[test]
    fn constrained_camera_fleet_runs_on_the_constrained_pool() {
        use perisec_core::pipeline::SharedModels;
        use perisec_ml::classifier::Architecture;
        let models = SharedModels::deferred(Architecture::Cnn, 16, 0xC0).with_vision_spec(96, 0xC0);
        let config = |constrained: bool| FleetConfig {
            devices: 0,
            camera_devices: 1,
            tee_cores: 1,
            camera_pipeline: CameraPipelineConfig {
                constrained_platform: constrained,
                batch_windows: 2,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        };
        let cameras = CameraScenario::fleet_cameras(1, 6, 0.4, SimDuration::from_secs(1), 0xC0);
        let constrained = ShardedFleet::with_models(config(true), models.clone())
            .unwrap()
            .run_mixed(&[], &cameras)
            .unwrap();
        let jetson = ShardedFleet::with_models(config(false), models)
            .unwrap()
            .run_mixed(&[], &cameras)
            .unwrap();
        // The MCU's cost model is an order of magnitude slower — if the
        // constrained flag were silently dropped the latencies would match
        // the Jetson run instead.
        assert!(constrained.mean_end_to_end() > jetson.mean_end_to_end() * 3);
        assert_eq!(constrained.leaked_sensitive_utterances(), 0);
    }

    #[test]
    fn camera_fleet_shards_each_device_across_cores() {
        let fleet = ShardedFleet::new(FleetConfig {
            devices: 0,
            camera_devices: 2,
            tee_cores: 2,
            camera_pipeline: CameraPipelineConfig {
                batch_windows: 4,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::of(0)
        })
        .unwrap();
        let cameras = CameraScenario::fleet_cameras(2, 8, 0.4, SimDuration::from_secs(1), 0x5F1EE7);
        let report = fleet.run_mixed(&[], &cameras).unwrap();
        assert_eq!(report.device_count_of(Modality::Camera), 2);
        assert_eq!(report.total_utterances(), 16);
        assert_eq!(report.leaked_sensitive_utterances(), 0);
        assert!(
            report.total_smc_calls() >= 4,
            "both shards of both devices entered"
        );
        assert!(report.latency_percentiles().p99 > SimDuration::ZERO);
        // Scenario-vs-device mismatches stay loud.
        assert!(fleet.run_mixed(&[], &[]).is_err());
        let audio = Scenario::fleet(1, 2, 0.5, SimDuration::from_secs(1), 1);
        assert!(fleet.run_mixed(&audio, &cameras).is_err());
    }
}
