//! # perisec-sched — the multi-core TEE scheduler
//!
//! One device, several secure cores: this crate scales a single device's
//! sensor stream *out* across multiple TA sessions instead of merely
//! batching it through one. It is the scale-out half of the paper's §V
//! mitigations — where batching (PR 1) amortizes the cost of each TEE
//! crossing, sharding multiplies how many crossings per second the device
//! can absorb, and secure-RAM model dedup keeps N co-resident sessions
//! from paying N copies of the same weights.
//!
//! * [`pool`] — [`pool::TeePool`]: N secure cores, each its own
//!   [`perisec_tz::platform::Platform`] (clock, monitor, world counters)
//!   and [`perisec_optee::TeeCore`], all charging allocations against
//!   **one** shared TZDRAM carve-out;
//! * [`scheduler`] — [`scheduler::SessionScheduler`]: deterministic
//!   least-loaded placement of capture windows onto per-core TA sessions,
//!   with an opt-in work-stealing rebalance pass
//!   ([`scheduler::SessionScheduler::assign_with_stealing`]) that lets an
//!   idle session take queued windows from a backlogged sibling, every
//!   steal recorded as a [`scheduler::WindowSteal`];
//! * [`stage`] — [`stage::ShardedFrameCaptureStage`] and
//!   [`stage::ShardedFilterStage`], implementing the existing
//!   [`perisec_core::stage::PipelineStage`] trait, plus
//!   [`stage::merge_verdicts`]: order-invariant verdict merging (max
//!   probability, most restrictive decision, per dialog id);
//! * [`batcher`] — [`batcher::AdaptiveBatcher`] (re-exported from
//!   `perisec_core::batcher`, which also drives the audio pipeline):
//!   picks `batch_windows` per shard from queue depth against a latency
//!   SLO using the E11 cost curve;
//! * [`pipeline`] — [`pipeline::ShardedVisionPipeline`]: the secure
//!   camera pipeline fanned out across a pool, end to end;
//! * [`fleet`] — [`fleet::ShardedFleet`]: the multi-device harness whose
//!   camera devices each run on a pool
//!   ([`perisec_core::fleet::FleetConfig::tee_cores`]).
//!
//! The sharding contract, pinned by `tests/shard_parity.rs` and the
//! property tests: sharding changes *throughput*, never *outcome* — the
//! same windows reach the cloud (and none of the sensitive ones do) for
//! every shard count, and merged verdicts are invariant under any
//! permutation of shard replies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod fleet;
pub mod pipeline;
pub mod pool;
pub mod scheduler;
pub mod stage;

pub use batcher::AdaptiveBatcher;
pub use fleet::ShardedFleet;
pub use pipeline::{
    CoreUtilization, ShardedCameraConfig, ShardedRunReport, ShardedScenarioProgress,
    ShardedVisionPipeline,
};
pub use pool::{TeeCoreHandle, TeePool, TeePoolConfig};
pub use scheduler::{SessionLoad, SessionScheduler, WindowSteal};
pub use stage::{
    merge_verdicts, ShardInput, ShardedFilterStage, ShardedFrameCaptureStage, ShardedPreparedBatch,
};
