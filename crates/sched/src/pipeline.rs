//! The sharded secure vision pipeline: one camera, N secure cores.
//!
//! High-fps cameras outrun a single vision TA long before microphones do
//! (ROADMAP: "sharded vision TAs"). This pipeline fans one camera's frame
//! stream out across a [`TeePool`]: per secure core a camera PTA, a
//! vision TA session and a capture/filter shard, all relaying through
//! one network fabric to **one** cloud — so the privacy ledger of a
//! sharded device reads exactly like an unsharded one. The vision TAs
//! share one [`FrameCnn`]; with [`ShardedCameraConfig::dedup_models`] the
//! weights are charged to the shared carve-out **once**
//! ([`perisec_optee::TeeCore::register_ta_shared`]) instead of once per
//! session.
//!
//! Wall-clock semantics: each core advances its own virtual clock, so a
//! run's end-to-end virtual time is the *maximum* over cores — cores run
//! concurrently — and a device "keeps up" with a high-fps stream when
//! that maximum stays within the scenario's duration plus one event
//! period of grace.

use std::sync::Arc;

use perisec_core::filter_ta::{default_cloud_host, default_psk};
use perisec_core::pipeline::{CameraPipelineConfig, SharedModels};
use perisec_core::policy::PrivacyPolicy;
use perisec_core::report::{CloudOutcome, PipelineReport, WorkloadSummary};
use perisec_core::source::SharedSceneQueue;
use perisec_core::stage::{
    PipelineStage, SecureFilterStage, SecureFrameCaptureStage, SecureRelayStage,
};
use perisec_core::vision_ta::{self, VisionTa, VISION_TA_NAME};
use perisec_core::{CoreError, Result};
use perisec_devices::camera::CameraSensor;
use perisec_ml::classifier::Architecture;
use perisec_ml::int8::QuantFrameCnn;
use perisec_ml::quant::QuantMode;
use perisec_ml::vision::FrameCnn;
use perisec_optee::{Supplicant, TaUuid, TeeClient, TeeParam, TeeParams, TeeSessionHandle};
use perisec_relay::cloud::MockCloudService;
use perisec_relay::netsim::NetworkFabric;
use perisec_secure_driver::camera::SecureCameraDriver;
use perisec_secure_driver::camera_pta::{cmd as camera_cmd, CameraPta};
use perisec_tcb::memory::SecureRamFootprint;
use perisec_telemetry::PressureMonitor;
use perisec_tz::power::{Component, ComponentEnergy, EnergyReport};
use perisec_tz::stats::TzStatsSnapshot;
use perisec_tz::time::{SimDuration, SimInstant};
use perisec_workload::scenario::CameraScenario;

use serde::{Deserialize, Serialize};

use crate::batcher::AdaptiveBatcher;
use crate::pool::{TeePool, TeePoolConfig};
use crate::stage::{ShardedFilterStage, ShardedFrameCaptureStage};

/// The camera sensor seed every shard (and the unsharded reference
/// pipeline) uses, so sharded and unsharded runs face the same imaging
/// chain.
const SENSOR_SEED: u64 = 0x5EC2;

/// The per-window fixed cost — the window's amortized share of one TEE
/// crossing plus dispatch — expressed in frame-equivalents of
/// secure-world inference time. This is the weight correction the steal
/// pass applies so that very small window shares stop looking free: when
/// windows shrink towards a single frame (or the model towards a few
/// MACs), the crossing share dwarfs the inference and a frames-only
/// weight misjudges every steal. The crossing is paid once per batch of
/// `batch_windows` windows, so each window carries `crossing / batch`; a
/// pure function of the cost model, the classifier's MAC count and the
/// batch size, so the mirrored capture/filter schedulers derive the same
/// value.
pub fn window_overhead_frames(
    cost: &perisec_tz::cost::CostModel,
    frame_flops: u64,
    batch_windows: usize,
) -> u64 {
    let crossing = AdaptiveBatcher::crossing_overhead(cost).as_nanos() as f64;
    let per_window = crossing / batch_windows.max(1) as f64;
    let frame_ns =
        cost.compute_per_flop.as_nanos() as f64 * cost.secure_compute_penalty * frame_flops as f64;
    if frame_ns <= 0.0 {
        return 0;
    }
    (per_window / frame_ns).round() as u64
}

/// Configuration of the sharded vision pipeline.
#[derive(Debug, Clone)]
pub struct ShardedCameraConfig {
    /// Per-shard camera pipeline parameters (policy, training spec, and
    /// the *fixed* batch size when no SLO is given).
    pub camera: CameraPipelineConfig,
    /// The secure-core pool to shard across.
    pub pool: TeePoolConfig,
    /// Charge the shared frame-classifier weights to the carve-out once
    /// (`true`) or once per co-resident session (`false`, the ablation
    /// E14 measures against).
    pub dedup_models: bool,
    /// When set, an [`AdaptiveBatcher`] picks each crossing's batch size
    /// from queue depth against this per-window latency SLO instead of
    /// using the fixed `camera.batch_windows`.
    pub latency_slo: Option<SimDuration>,
    /// Close the observability loop on the sharded batcher too: when set
    /// (and `latency_slo` is — the spec is inert without a batcher), a
    /// [`perisec_telemetry::PressureMonitor`] watches each crossing's
    /// per-window share of the *whole* fanned filter step and feeds its
    /// Healthy/Degraded/Critical verdict into the batcher, which clips
    /// its curve under pressure. This catches cost the batcher's own
    /// EWMA over TA-internal times misses (relay stalls, steal-pass
    /// imbalance across cores).
    pub slo_pressure: Option<perisec_telemetry::SloSpec>,
    /// Let an idle session steal queued windows from a backlogged sibling
    /// (the scheduler's deterministic rebalance pass — see
    /// [`crate::scheduler::SessionScheduler::assign_with_stealing`]).
    /// Off by default: placement then matches the historical greedy
    /// scheduler exactly.
    pub work_stealing: bool,
}

impl Default for ShardedCameraConfig {
    fn default() -> Self {
        ShardedCameraConfig {
            camera: CameraPipelineConfig::default(),
            pool: TeePoolConfig::default(),
            dedup_models: true,
            latency_slo: None,
            slo_pressure: None,
            work_stealing: false,
        }
    }
}

/// Per-core accounting of one sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreUtilization {
    /// Core index within the pool.
    pub core: usize,
    /// Virtual time the core spent on the run (run-relative; setup is
    /// excluded).
    pub virtual_time: SimDuration,
    /// World switches the core performed during the run.
    pub world_switches: u64,
    /// SMCs the core served during the run.
    pub smc_calls: u64,
    /// Secure-world CPU busy time the run charged to the core.
    pub secure_busy: SimDuration,
    /// Secure busy time over the core's run time (0 when idle).
    pub utilization: f64,
}

/// The report of one sharded run: the familiar [`PipelineReport`] (with
/// pool-aggregated TEE counters; virtual time, energy and cloud bytes
/// are all **run-relative** — setup and earlier runs on the same
/// pipeline are excluded) plus the scheduler-specific extras E14 prints.
#[derive(Debug, Clone)]
pub struct ShardedRunReport {
    /// The merged pipeline report.
    pub report: PipelineReport,
    /// Per-core utilization, in core order.
    pub per_core: Vec<CoreUtilization>,
    /// The shared carve-out at the end of the run, dedup counters
    /// included.
    pub secure_ram: SecureRamFootprint,
    /// Windows moved by the scheduler's steal pass during the run (zero
    /// unless [`ShardedCameraConfig::work_stealing`] is on).
    pub stolen_windows: u64,
}

impl ShardedRunReport {
    /// Whether the device kept up with the stream: its slowest core
    /// finished within `deadline` of virtual time. Callers derive the
    /// deadline from the scenario (duration plus one event period of
    /// grace) — the frame budget of E14.
    pub fn kept_up(&self, deadline: SimDuration) -> bool {
        self.report.virtual_time <= deadline
    }
}

/// The secure camera pipeline sharded across a pool of secure cores.
pub struct ShardedVisionPipeline {
    config: ShardedCameraConfig,
    pool: TeePool,
    cloud: Arc<MockCloudService>,
    fabric: NetworkFabric,
    sessions: Vec<(TeeClient, TeeSessionHandle)>,
    capture: ShardedFrameCaptureStage,
    filter: ShardedFilterStage,
    relay: SecureRelayStage,
    batcher: Option<AdaptiveBatcher>,
    pressure: Option<PressureMonitor>,
}

impl std::fmt::Debug for ShardedVisionPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedVisionPipeline")
            .field("shards", &self.pool.len())
            .field("dedup_models", &self.config.dedup_models)
            .field("adaptive", &self.batcher.is_some())
            .finish()
    }
}

impl ShardedVisionPipeline {
    /// Builds the sharded stack, training a fresh frame classifier.
    ///
    /// # Errors
    ///
    /// Fails if the classifier cannot be trained, the pool configuration
    /// is degenerate, or a TEE component cannot be registered.
    pub fn new(config: ShardedCameraConfig) -> Result<Self> {
        let models = SharedModels::deferred(Architecture::Cnn, 16, config.camera.corpus_seed)
            .with_vision_spec(config.camera.train_frames, config.camera.corpus_seed);
        ShardedVisionPipeline::with_models(config, &models)
    }

    /// Builds the sharded stack around a shared model set — the fleet
    /// path: every shard session (and every other device) hands out
    /// `Arc`s of the same frame classifier.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedVisionPipeline::new`].
    pub fn with_models(config: ShardedCameraConfig, models: &SharedModels) -> Result<Self> {
        let vision = models.vision()?;
        // The fleet path reuses the model set's cached int8 form.
        let int8 = match config.camera.quant_mode {
            QuantMode::Int8 => Some(models.vision_int8()?),
            QuantMode::F32 => None,
        };
        ShardedVisionPipeline::build(config, vision, int8)
    }

    /// Builds the sharded stack around an existing trained classifier
    /// (quantizing it on the spot in int8 mode).
    ///
    /// # Errors
    ///
    /// Same as [`ShardedVisionPipeline::new`].
    pub fn with_vision_model(config: ShardedCameraConfig, vision: Arc<FrameCnn>) -> Result<Self> {
        let int8 = match config.camera.quant_mode {
            QuantMode::Int8 => QuantFrameCnn::from_trained(&vision).map(Arc::new),
            QuantMode::F32 => None,
        };
        ShardedVisionPipeline::build(config, vision, int8)
    }

    fn build(
        config: ShardedCameraConfig,
        vision: Arc<FrameCnn>,
        vision_int8: Option<Arc<QuantFrameCnn>>,
    ) -> Result<Self> {
        // Normal world, shared by every core: one fabric, one cloud.
        let fabric = NetworkFabric::new().with_faults(config.camera.faults);
        let cloud = MockCloudService::new(default_psk());
        fabric.register_service(MockCloudService::HOST, cloud.clone());

        let pool = TeePool::boot(&config.pool, |_| {
            let supplicant = Arc::new(Supplicant::new());
            supplicant.set_net_backend(Arc::new(fabric.clone()));
            supplicant
        })?;

        // The weights' content key: co-resident sessions holding the same
        // `Arc` share the same allocation. In int8 mode the *quantized*
        // bytes are what the sessions keep resident, so they are what the
        // shared reservation charges to the TZDRAM carve-out — the ~4x
        // residency drop shows up directly in [`SecureRamFootprint`].
        let (model_key, model_bytes) = match &vision_int8 {
            Some(int8) => (Arc::as_ptr(int8) as u64, int8.memory_bytes()),
            None => (Arc::as_ptr(&vision) as u64, vision.memory_bytes_f32()),
        };

        let mut sessions = Vec::with_capacity(pool.len());
        let mut capture_shards = Vec::with_capacity(pool.len());
        let mut filter_shards = Vec::with_capacity(pool.len());
        for handle in pool.cores() {
            let platform = handle.platform().clone();
            let core = handle.core();
            let scenes = SharedSceneQueue::new();
            let sensor = CameraSensor::smart_home("secure-camera", SENSOR_SEED)
                .map_err(perisec_kernel::KernelError::from)?;
            let driver = SecureCameraDriver::new(platform.clone(), sensor, scenes.source());
            let camera_pta: TaUuid = core
                .register_pta(Box::new(CameraPta::new(driver)))
                .map_err(CoreError::from)?;
            let ta = VisionTa::new(
                camera_pta,
                Arc::clone(&vision),
                vision_int8.clone(),
                config.camera.quant_mode,
                config.camera.policy,
                default_cloud_host(),
                default_psk(),
            )
            .with_retry(config.camera.retry);
            if config.dedup_models {
                core.register_ta_shared(Box::new(ta), model_key, model_bytes)
                    .map_err(CoreError::from)?;
            } else {
                core.register_ta(Box::new(ta)).map_err(CoreError::from)?;
            }
            core.invoke_pta(camera_pta, camera_cmd::CONFIGURE, &mut TeeParams::new())
                .map_err(CoreError::from)?;
            core.invoke_pta(camera_pta, camera_cmd::START, &mut TeeParams::new())
                .map_err(CoreError::from)?;

            let client = TeeClient::connect(Arc::clone(core));
            let (session, _) = client
                .open_session(TaUuid::from_name(VISION_TA_NAME), TeeParams::new())
                .map_err(CoreError::from)?;
            capture_shards.push(SecureFrameCaptureStage::new(platform.clone(), scenes));
            filter_shards.push(SecureFilterStage::new(platform, client.clone(), session));
            sessions.push((client, session));
        }

        let batcher = config
            .latency_slo
            .map(|slo| AdaptiveBatcher::new(&config.pool.cost, slo, 64));
        // The pressure spec is inert without a batcher to steer.
        let pressure = match (&batcher, config.slo_pressure) {
            (Some(_), Some(spec)) => Some(PressureMonitor::for_spec(spec)),
            _ => None,
        };
        let stealing = config.work_stealing;
        // The steal pass weighs each window by frames *plus* the fixed
        // crossing + dispatch cost (ROADMAP follow-on from the
        // work-stealing item); greedy-only placement keeps the historical
        // frames-only weights, so existing placements are byte-stable.
        let overhead = if stealing {
            window_overhead_frames(
                &config.pool.cost,
                vision.flops_per_inference(),
                config.camera.batch_windows,
            )
        } else {
            0
        };
        Ok(ShardedVisionPipeline {
            config,
            pool,
            cloud,
            fabric,
            sessions,
            capture: ShardedFrameCaptureStage::new(capture_shards)
                .with_stealing(stealing)
                .with_window_overhead(overhead),
            filter: ShardedFilterStage::new(filter_shards)
                .with_stealing(stealing)
                .with_window_overhead(overhead),
            relay: SecureRelayStage::new(),
            batcher,
            pressure,
        })
    }

    /// The slowest core's virtual clock reading — the fleet-facing "now"
    /// of a device whose cores run concurrently (the same max-over-cores
    /// convention the run report's `virtual_time` uses).
    fn fleet_now(&self) -> SimInstant {
        self.pool
            .cores()
            .iter()
            .map(|handle| handle.platform().clock().now())
            .max()
            .unwrap_or(SimInstant::EPOCH)
    }

    /// The current SLO-pressure verdict, when the monitor is configured
    /// (`None` without [`ShardedCameraConfig::slo_pressure`]).
    pub fn pressure_state(&self) -> Option<perisec_telemetry::HealthState> {
        self.pressure.as_ref().map(PressureMonitor::state)
    }

    /// The secure-core pool.
    pub fn pool(&self) -> &TeePool {
        &self.pool
    }

    /// The mock cloud every shard relays to.
    pub fn cloud(&self) -> &Arc<MockCloudService> {
        &self.cloud
    }

    /// Number of shards (TA sessions).
    pub fn shard_count(&self) -> usize {
        self.pool.len()
    }

    /// Installs a new privacy policy in **every** shard's vision TA.
    ///
    /// # Errors
    ///
    /// Propagates the first failing TEE invocation.
    pub fn set_policy(&mut self, policy: PrivacyPolicy) -> Result<()> {
        let (mode, threshold) = policy.to_values();
        for (client, session) in &self.sessions {
            let params = TeeParams::new().with(
                0,
                TeeParam::ValueInput {
                    a: mode,
                    b: threshold,
                },
            );
            client
                .invoke(session, vision_ta::cmd::SET_POLICY, params)
                .map_err(CoreError::from)?;
        }
        self.config.camera.policy = policy;
        Ok(())
    }

    /// Starts a resumable scenario replay: resets the cloud ledger and
    /// records run-relative marks per core and for the network — every
    /// figure of the final report describes *this* run; setup time
    /// (session opens, driver configuration) and earlier runs on the same
    /// pipeline must not blur the budget question.
    pub fn begin_scenario(&mut self) -> ShardedScenarioProgress {
        self.cloud.reset();
        ShardedScenarioProgress {
            before: self.pool.snapshots(),
            bytes_before: self.fabric.stats().bytes_sent,
            stolen_before: self.capture.stolen_windows(),
            run_start: self
                .pool
                .cores()
                .iter()
                .map(|handle| {
                    (
                        handle.platform().clock().now(),
                        handle.platform().energy_report(),
                    )
                })
                .collect(),
            next_event: 0,
        }
    }

    /// Drives **one** batch of the scenario across the pool — one fanned
    /// TEE crossing — and advances the cursor. Returns whether events
    /// remain. The batch size is the fixed `camera.batch_windows` unless
    /// the config carries a latency SLO, in which case the adaptive
    /// batcher picks it from the remaining queue depth. The fleet
    /// executor's yield point for sharded camera devices.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn step_scenario(
        &mut self,
        scenario: &CameraScenario,
        progress: &mut ShardedScenarioProgress,
    ) -> Result<bool> {
        if progress.next_event >= scenario.events.len() {
            return Ok(false);
        }
        let fixed_batch = self.config.camera.batch_windows.max(1);
        let depth = scenario.events.len() - progress.next_event;
        let batch = match &self.batcher {
            Some(batcher) => batcher.pick_batch(depth),
            None => fixed_batch,
        }
        .min(depth);
        let chunk = scenario.events[progress.next_event..progress.next_event + batch].to_vec();
        let windows = chunk.len() as u64;
        let prepared = self.capture.process(chunk)?;
        let filter_start = self.fleet_now();
        let filtered = self.filter.process(prepared.into())?;
        let filter_end = self.fleet_now();
        if let Some(batcher) = &mut self.batcher {
            if windows > 0 && !filtered.per_utterance.is_empty() {
                let mean = filtered.per_utterance.iter().copied().sum::<SimDuration>()
                    / filtered.per_utterance.len() as u64;
                batcher.observe(mean);
            }
            if let Some(pressure) = &mut self.pressure {
                // The monitor sees the per-window share of the whole
                // fanned crossing (slowest core to slowest core), not the
                // TA-internal per-utterance times the EWMA averages — so
                // crossing overhead and cross-core imbalance count.
                pressure.observe(filter_end.duration_since(filter_start) / windows.max(1));
                batcher.set_pressure(pressure.advance(filter_end));
            }
            // Relay backlog overrides any SLO verdict: a shard's bounded
            // unacked buffer is backing up, so fall to single-window
            // probes until the network drains it.
            if filtered.backlog > 0 {
                batcher.set_pressure(perisec_telemetry::HealthState::Critical);
            }
        }
        let backlog = filtered.backlog;
        self.relay.process(filtered)?;
        progress.next_event += batch;
        let more = progress.next_event < scenario.events.len();
        if !more && backlog > 0 {
            // The scenario ended with unacked records still buffered in
            // some shard: a blocking drain on every shard retires them,
            // so the report never misses a verdict the network delayed.
            // Skipped on a clean finish — the healthy path pays no extra
            // TEE crossings.
            self.filter.drain_relay()?;
        }
        Ok(more)
    }

    /// Assembles the run report of a stepped-to-completion replay.
    pub fn finish_scenario(
        &mut self,
        scenario: &CameraScenario,
        progress: ShardedScenarioProgress,
    ) -> ShardedRunReport {
        let ShardedScenarioProgress {
            before,
            bytes_before,
            stolen_before,
            run_start,
            next_event: _,
        } = progress;
        let latency = self.relay.take_breakdown();
        let tz: TzStatsSnapshot = self.pool.aggregate_delta(&before);
        let mut per_core = Vec::with_capacity(self.pool.len());
        let mut energy_reports = Vec::with_capacity(self.pool.len());
        let mut run_elapsed_max = SimDuration::ZERO;
        for (core_index, (handle, earlier)) in self.pool.cores().iter().zip(&before).enumerate() {
            let snapshot = handle.platform().stats().snapshot().delta_since(earlier);
            let (started, energy_before) = &run_start[core_index];
            let energy = diff_energy(&handle.platform().energy_report(), energy_before);
            let elapsed = handle.platform().clock().elapsed_since(*started);
            run_elapsed_max = run_elapsed_max.max(elapsed);
            let secure_busy = energy
                .per_component
                .get(&Component::CpuSecureWorld)
                .map(|c| c.busy)
                .unwrap_or(SimDuration::ZERO);
            let utilization = if elapsed.is_zero() {
                0.0
            } else {
                secure_busy.as_secs_f64() / elapsed.as_secs_f64()
            };
            per_core.push(CoreUtilization {
                core: core_index,
                virtual_time: elapsed,
                world_switches: snapshot.world_switches,
                smc_calls: snapshot.smc_calls,
                secure_busy,
                utilization,
            });
            energy_reports.push(energy);
        }

        let report = PipelineReport {
            pipeline: "secure-camera-sharded".to_owned(),
            workload: WorkloadSummary {
                utterances: scenario.len(),
                sensitive_utterances: scenario.sensitive_count(),
            },
            latency,
            cloud: CloudOutcome {
                report: self.cloud.report(),
                sensitive_ids: scenario.sensitive_ids(),
            },
            tz,
            energy: merge_energy(energy_reports),
            // Run-relative, max over cores: the slowest core's virtual
            // time spent on this scenario (cores run concurrently, and
            // pipeline setup must not count against the frame budget).
            virtual_time: run_elapsed_max,
            bytes_to_cloud: self.fabric.stats().bytes_sent - bytes_before,
        };
        ShardedRunReport {
            report,
            per_core,
            secure_ram: SecureRamFootprint::measure(self.pool.secure_ram()),
            stolen_windows: self.capture.stolen_windows() - stolen_before,
        }
    }

    /// Replays a camera scenario end to end across the pool and reports
    /// on it — `begin`, `step` per crossing, `finish`.
    ///
    /// # Errors
    ///
    /// Propagates TEE and relay failures.
    pub fn run_scenario(&mut self, scenario: &CameraScenario) -> Result<ShardedRunReport> {
        let mut progress = self.begin_scenario();
        while self.step_scenario(scenario, &mut progress)? {}
        Ok(self.finish_scenario(scenario, progress))
    }
}

/// Cursor over one sharded scenario replay: run-relative marks per core
/// plus the next event to dispatch — the sharded twin of
/// `perisec_core::pipeline::ScenarioProgress`.
#[derive(Debug)]
pub struct ShardedScenarioProgress {
    before: Vec<TzStatsSnapshot>,
    bytes_before: u64,
    stolen_before: u64,
    run_start: Vec<(SimInstant, EnergyReport)>,
    next_event: usize,
}

/// Energy accrued between two reports of one core's meter: window, busy
/// time and energy all subtract (floats clamped at zero against rounding
/// noise), so a run's energy covers the run — not setup, not earlier
/// runs on the same pipeline.
fn diff_energy(after: &EnergyReport, before: &EnergyReport) -> EnergyReport {
    let mut per_component = std::collections::BTreeMap::new();
    for (component, late) in &after.per_component {
        let early = before.per_component.get(component);
        per_component.insert(
            *component,
            ComponentEnergy {
                busy: late.busy - early.map(|e| e.busy).unwrap_or(SimDuration::ZERO),
                energy_mj: (late.energy_mj - early.map(|e| e.energy_mj).unwrap_or(0.0)).max(0.0),
            },
        );
    }
    EnergyReport {
        window: after.window - before.window,
        total_mj: (after.total_mj - before.total_mj).max(0.0),
        per_component,
    }
}

/// Merges per-core energy reports: cores draw power concurrently, so the
/// observation window is the longest core's, while busy time and energy
/// add up.
fn merge_energy(reports: Vec<EnergyReport>) -> EnergyReport {
    let mut merged = EnergyReport {
        window: SimDuration::ZERO,
        total_mj: 0.0,
        per_component: std::collections::BTreeMap::new(),
    };
    for report in reports {
        merged.window = merged.window.max(report.window);
        merged.total_mj += report.total_mj;
        for (component, energy) in report.per_component {
            let entry = merged
                .per_component
                .entry(component)
                .or_insert(ComponentEnergy {
                    busy: SimDuration::ZERO,
                    energy_mj: 0.0,
                });
            entry.busy += energy.busy;
            entry.energy_mj += energy.energy_mj;
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_overhead_derivation_scales_with_model_and_batch() {
        let cost = perisec_tz::cost::CostModel::iot_quad_node();
        // A tiny model at batch 1: the crossing dwarfs per-frame
        // inference and the fixed cost dominates the weight.
        assert!(window_overhead_frames(&cost, 100, 1) > 10);
        // The production frame CNN at batch >= 4: the amortized crossing
        // share stays below one frame-equivalent, so historical
        // frames-only placements are preserved.
        assert_eq!(window_overhead_frames(&cost, 12_000, 4), 0);
        // Bigger batches amortize the crossing further.
        assert!(window_overhead_frames(&cost, 100, 8) < window_overhead_frames(&cost, 100, 1));
        // A free cost model degenerates to frames-only weighting.
        assert_eq!(
            window_overhead_frames(&perisec_tz::cost::CostModel::free(), 100, 1),
            0
        );
    }

    fn small_config(cores: usize) -> ShardedCameraConfig {
        ShardedCameraConfig {
            camera: CameraPipelineConfig {
                batch_windows: 2,
                ..CameraPipelineConfig::default()
            },
            pool: TeePoolConfig::jetson(cores),
            ..ShardedCameraConfig::default()
        }
    }

    #[test]
    fn sharded_pipeline_filters_and_keeps_cores_busy() {
        let mut pipeline = ShardedVisionPipeline::new(small_config(2)).unwrap();
        let scenario = CameraScenario::mixed_scenes(12, 0.5, SimDuration::from_secs(2), 0x5C2D);
        assert!(scenario.sensitive_count() > 0);
        let run = pipeline.run_scenario(&scenario).unwrap();

        assert_eq!(run.report.workload.utterances, 12);
        assert_eq!(run.report.cloud.leaked_sensitive_utterances(), 0);
        assert!(run.report.cloud.received_utterances() >= 1);
        // Both cores really worked and reported coherent utilization.
        assert_eq!(run.per_core.len(), 2);
        for core in &run.per_core {
            assert!(core.smc_calls >= 1, "core {} never entered", core.core);
            assert!(core.secure_busy > SimDuration::ZERO);
            assert!(core.utilization > 0.0 && core.utilization <= 1.0);
        }
        // Wall time is the max over cores, not the sum.
        let max_core = run.per_core.iter().map(|c| c.virtual_time).max().unwrap();
        assert_eq!(run.report.virtual_time, max_core);
        // Verdict records only — no payload bytes at the cloud.
        assert!(run
            .report
            .cloud
            .report
            .events
            .iter()
            .all(|e| e.audio_bytes == 0 && e.encrypted));
    }

    #[test]
    fn dedup_charges_the_model_once_across_sessions() {
        let with_dedup = ShardedVisionPipeline::new(small_config(4)).unwrap();
        let without = ShardedVisionPipeline::new(ShardedCameraConfig {
            dedup_models: false,
            ..small_config(4)
        })
        .unwrap();
        let deduped = with_dedup.pool().secure_ram().bytes_in_use();
        let duplicated = without.pool().secure_ram().bytes_in_use();
        assert!(
            deduped < duplicated,
            "dedup {deduped} B should undercut duplicated {duplicated} B"
        );
        assert!(with_dedup.pool().secure_ram().dedup_saved_bytes() > 0);
        assert_eq!(with_dedup.pool().secure_ram().dedup_hits(), 3);
        assert_eq!(without.pool().secure_ram().dedup_hits(), 0);
    }

    #[test]
    fn adaptive_batcher_drives_the_run_within_slo() {
        let mut pipeline = ShardedVisionPipeline::new(ShardedCameraConfig {
            latency_slo: Some(SimDuration::from_millis(5)),
            ..small_config(2)
        })
        .unwrap();
        let scenario = CameraScenario::mixed_scenes(10, 0.4, SimDuration::from_millis(10), 0xADAB);
        let run = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(run.report.cloud.leaked_sensitive_utterances(), 0);
        assert_eq!(run.report.workload.utterances, 10);
        assert!(run.report.latency.p99_end_to_end() > SimDuration::ZERO);
    }

    #[test]
    fn slo_pressure_steers_the_sharded_batcher_without_changing_outcomes() {
        use perisec_telemetry::{HealthState, SloSpec};

        let scenario = CameraScenario::mixed_scenes(16, 0.4, SimDuration::from_millis(10), 0x9E55);
        let base = ShardedCameraConfig {
            latency_slo: Some(SimDuration::from_millis(5)),
            ..small_config(2)
        };
        let mut plain = ShardedVisionPipeline::new(base.clone()).unwrap();
        let a = plain.run_scenario(&scenario).unwrap();
        assert_eq!(plain.pressure_state(), None);

        // An unattainable objective: every observed crossing breaches, so
        // the monitor demotes and the batcher runs clipped — same
        // verdicts at the cloud, never fewer crossings than the pure
        // curve.
        let mut pressured = ShardedVisionPipeline::new(ShardedCameraConfig {
            slo_pressure: Some(SloSpec::p95("shard.filter", SimDuration::from_nanos(1))),
            ..base.clone()
        })
        .unwrap();
        let b = pressured.run_scenario(&scenario).unwrap();
        assert_ne!(pressured.pressure_state(), Some(HealthState::Healthy));
        assert_eq!(
            a.report.cloud.received_utterances(),
            b.report.cloud.received_utterances()
        );
        assert_eq!(
            a.report.cloud.leaked_sensitive_utterances(),
            b.report.cloud.leaked_sensitive_utterances()
        );
        assert!(b.report.tz.smc_calls >= a.report.tz.smc_calls);

        // Without a latency SLO there is no batcher, so the spec is
        // inert and no monitor is built.
        let inert = ShardedVisionPipeline::new(ShardedCameraConfig {
            latency_slo: None,
            slo_pressure: Some(SloSpec::p95("shard.filter", SimDuration::from_nanos(1))),
            ..small_config(2)
        })
        .unwrap();
        assert_eq!(inert.pressure_state(), None);
    }

    #[test]
    fn repeated_runs_report_run_relative_figures() {
        let mut pipeline = ShardedVisionPipeline::new(small_config(2)).unwrap();
        let scenario = CameraScenario::mixed_scenes(6, 0.4, SimDuration::from_millis(50), 0x2E);
        let first = pipeline.run_scenario(&scenario).unwrap();
        let second = pipeline.run_scenario(&scenario).unwrap();
        // Same scenario, same decisions: the second report must describe
        // only its own run, not accumulate the first one's traffic or
        // energy. The second run can only be cheaper — the channel
        // handshake happened in the first, and replayed (past) event
        // timestamps leave no idle gaps — never the sum of both runs.
        assert!(first.report.bytes_to_cloud > 0);
        assert!(second.report.bytes_to_cloud > 0);
        assert!(second.report.bytes_to_cloud <= first.report.bytes_to_cloud);
        assert!(second.report.energy.total_mj <= first.report.energy.total_mj);
        assert!(second.report.energy.window <= first.report.energy.window);
        assert!(second.report.virtual_time <= first.report.virtual_time);
    }

    #[test]
    fn policy_updates_reach_every_shard() {
        let mut pipeline = ShardedVisionPipeline::new(small_config(2)).unwrap();
        let scenario = CameraScenario::mixed_scenes(8, 1.0, SimDuration::from_secs(1), 0xA11);
        pipeline.set_policy(PrivacyPolicy::allow_all()).unwrap();
        let permissive = pipeline.run_scenario(&scenario).unwrap();
        assert!(permissive.report.cloud.leakage_rate() > 0.5);
        pipeline
            .set_policy(PrivacyPolicy::block_sensitive())
            .unwrap();
        let strict = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(strict.report.cloud.leaked_sensitive_utterances(), 0);
    }
}
