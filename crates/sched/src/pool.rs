//! The secure-core pool: N TEE cores over one TZDRAM carve-out.
//!
//! On a multi-core TrustZone SoC every application core can enter the
//! secure world, each with its own banked state and its own monitor
//! transitions, while all of them share the single physical secure
//! carve-out. The pool reproduces that shape: each [`TeeCoreHandle`] owns
//! a full [`Platform`] — its own virtual clock (cores run concurrently,
//! so wall time is the *max* over cores, not the sum), its own
//! [`perisec_tz::monitor::SecureMonitor`] and world-switch counters — and
//! a booted [`TeeCore`], while every core's secure allocations are
//! charged against the **one** shared [`SecureRam`] pool. That shared
//! carve-out is what makes cross-core model deduplication
//! ([`SecureRam::reserve_shared`]) observable: two vision TAs on two
//! cores holding the same weights cost the carve-out one copy.

use std::sync::Arc;

use perisec_core::{CoreError, Result};
use perisec_optee::{Supplicant, TeeCore};
use perisec_tz::cost::CostModel;
use perisec_tz::platform::{Platform, PlatformSpec};
use perisec_tz::power::PowerModel;
use perisec_tz::secure_mem::SecureRam;
use perisec_tz::stats::{TzStats, TzStatsSnapshot};
use perisec_tz::time::{SimDuration, SimInstant};

/// Configuration of a secure-core pool.
#[derive(Debug, Clone)]
pub struct TeePoolConfig {
    /// Number of secure cores (TA sessions the scheduler can place onto).
    pub cores: usize,
    /// The SoC every core instantiates (cores share its memory map).
    pub spec: PlatformSpec,
    /// Latency cost model applied per core.
    pub cost: CostModel,
    /// Power model applied per core.
    pub power: PowerModel,
    /// Override of the shared carve-out size (KiB), if set.
    pub secure_ram_kib: Option<u64>,
}

impl TeePoolConfig {
    /// A pool of `cores` secure cores on the Jetson-class platform.
    pub fn jetson(cores: usize) -> Self {
        TeePoolConfig {
            cores,
            spec: PlatformSpec::jetson_agx_xavier(),
            cost: CostModel::jetson_agx_xavier(),
            power: PowerModel::jetson_agx_xavier(),
            secure_ram_kib: None,
        }
    }

    /// A single-core "pool" on the constrained MCU — that platform has
    /// one application core, so this is the only pool shape it admits
    /// (boot rejects anything larger).
    pub fn constrained_mcu() -> Self {
        TeePoolConfig {
            cores: 1,
            spec: PlatformSpec::constrained_mcu(),
            cost: CostModel::constrained_mcu(),
            power: PowerModel::constrained_mcu(),
            secure_ram_kib: None,
        }
    }

    /// A pool of `cores` secure cores on the quad-core IoT gateway — the
    /// platform where a single vision TA is outrun by a high-fps sensor
    /// and sharding starts to pay.
    pub fn iot_quad_node(cores: usize) -> Self {
        TeePoolConfig {
            cores,
            spec: PlatformSpec::iot_quad_node(),
            cost: CostModel::iot_quad_node(),
            power: PowerModel::iot_quad_node(),
            secure_ram_kib: None,
        }
    }
}

impl Default for TeePoolConfig {
    fn default() -> Self {
        TeePoolConfig::jetson(2)
    }
}

/// One secure core of the pool: a platform plus its booted TEE core.
pub struct TeeCoreHandle {
    platform: Platform,
    core: Arc<TeeCore>,
}

impl TeeCoreHandle {
    /// The core's platform (clock, monitor, counters, shared carve-out).
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The core's OP-TEE instance.
    pub fn core(&self) -> &Arc<TeeCore> {
        &self.core
    }

    /// Virtual time this core has reached.
    pub fn virtual_time(&self) -> SimDuration {
        self.platform
            .clock()
            .now()
            .duration_since(SimInstant::EPOCH)
    }
}

impl std::fmt::Debug for TeeCoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeCoreHandle")
            .field("virtual_time", &self.virtual_time())
            .finish()
    }
}

/// A pool of secure cores sharing one TZDRAM carve-out.
pub struct TeePool {
    cores: Vec<TeeCoreHandle>,
    secure_ram: SecureRam,
    /// Counter set backing the shared carve-out (its peak-usage record);
    /// folded into [`TeePool::aggregate_delta`] so sharded reports carry
    /// the real pool-wide peak rather than per-core zeroes.
    stats: TzStats,
}

impl std::fmt::Debug for TeePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeePool")
            .field("cores", &self.cores.len())
            .field("secure_ram_in_use", &self.secure_ram.bytes_in_use())
            .finish()
    }
}

impl TeePool {
    /// Boots a pool: one shared carve-out, then per core a sibling
    /// platform and a TEE core. `make_supplicant` provides each core's
    /// normal-world supplicant (the caller wires them to its network
    /// fabric so every core's relay lands at the same cloud).
    ///
    /// # Errors
    ///
    /// [`CoreError::Config`] for zero cores or more secure cores than the
    /// SoC has application cores — a pool cannot schedule onto silicon
    /// that is not there.
    pub fn boot(
        config: &TeePoolConfig,
        mut make_supplicant: impl FnMut(usize) -> Arc<Supplicant>,
    ) -> Result<Self> {
        if config.cores == 0 {
            return Err(CoreError::Config {
                reason: "tee pool needs at least one secure core".to_owned(),
            });
        }
        if config.cores > config.spec.cpu_cores as usize {
            return Err(CoreError::Config {
                reason: format!(
                    "tee pool of {} secure cores exceeds the {} application cores of {}",
                    config.cores, config.spec.cpu_cores, config.spec.name
                ),
            });
        }
        let mut spec = config.spec.clone();
        if let Some(kib) = config.secure_ram_kib {
            spec.secure_ram_kib = kib;
        }
        // The one physical carve-out. Its peak-usage accounting lands in a
        // pool-level counter set (per-core counters keep tracking each
        // core's own transitions).
        let stats = TzStats::new();
        let secure_ram = SecureRam::new(spec.secure_base, spec.secure_ram_bytes(), stats.clone());
        let mut cores = Vec::with_capacity(config.cores);
        for index in 0..config.cores {
            let platform = Platform::builder()
                .spec(spec.clone())
                .cost_model(config.cost.clone())
                .power_model(config.power.clone())
                .shared_secure_ram(secure_ram.clone())
                .build();
            let core = TeeCore::boot(platform.clone(), make_supplicant(index));
            cores.push(TeeCoreHandle { platform, core });
        }
        Ok(TeePool {
            cores,
            secure_ram,
            stats,
        })
    }

    /// Number of secure cores.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// Whether the pool has no cores (never true for a booted pool).
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// The cores, in scheduling order.
    pub fn cores(&self) -> &[TeeCoreHandle] {
        &self.cores
    }

    /// One core by index.
    pub fn core(&self, index: usize) -> &TeeCoreHandle {
        &self.cores[index]
    }

    /// The shared TZDRAM carve-out.
    pub fn secure_ram(&self) -> &SecureRam {
        &self.secure_ram
    }

    /// Installs `tracer` on every core's TEE (see `TeeCore::set_tracer`):
    /// SMC-boundary and TA-inference spans from all secure cores land in
    /// the one device trace. Note the spans timestamp off each *core's*
    /// clock — per-core virtual time, exactly what the pool's max-over-
    /// cores wall-time model means.
    pub fn set_tracer(&self, tracer: &perisec_telemetry::Tracer) {
        for handle in &self.cores {
            handle.core().set_tracer(tracer.clone());
        }
    }

    /// Per-core counter snapshots, in core order.
    pub fn snapshots(&self) -> Vec<TzStatsSnapshot> {
        self.cores
            .iter()
            .map(|c| c.platform.stats().snapshot())
            .collect()
    }

    /// Sums per-core deltas since `before` into one pool-wide snapshot.
    /// The secure-RAM peak is the max of the per-core records and the
    /// shared carve-out's own record — allocations against the shared
    /// pool land in the pool's counters, not any single core's.
    ///
    /// # Panics
    ///
    /// Panics if `before` was not produced by [`TeePool::snapshots`] of
    /// this pool (length mismatch).
    pub fn aggregate_delta(&self, before: &[TzStatsSnapshot]) -> TzStatsSnapshot {
        assert_eq!(
            before.len(),
            self.cores.len(),
            "snapshot vector belongs to a different pool"
        );
        let mut total = TzStatsSnapshot {
            secure_ram_peak_bytes: self.stats.snapshot().secure_ram_peak_bytes,
            ..TzStatsSnapshot::default()
        };
        for (core, earlier) in self.cores.iter().zip(before) {
            let delta = core.platform.stats().snapshot().delta_since(earlier);
            total.smc_calls += delta.smc_calls;
            total.world_switches += delta.world_switches;
            total.bytes_to_secure += delta.bytes_to_secure;
            total.bytes_to_normal += delta.bytes_to_normal;
            total.supplicant_rpcs += delta.supplicant_rpcs;
            total.irqs += delta.irqs;
            total.secure_irqs += delta.secure_irqs;
            total.secure_ram_peak_bytes =
                total.secure_ram_peak_bytes.max(delta.secure_ram_peak_bytes);
            total.permission_faults += delta.permission_faults;
        }
        total
    }

    /// Wall-clock virtual time of the pool: cores run concurrently, so
    /// the device has finished when its slowest core has.
    pub fn max_virtual_time(&self) -> SimDuration {
        self.cores
            .iter()
            .map(TeeCoreHandle::virtual_time)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_tz::world::World;

    fn booted(cores: usize) -> TeePool {
        TeePool::boot(&TeePoolConfig::jetson(cores), |_| {
            Arc::new(Supplicant::new())
        })
        .unwrap()
    }

    #[test]
    fn pool_rejects_degenerate_core_counts() {
        assert!(TeePool::boot(&TeePoolConfig::jetson(0), |_| Arc::new(Supplicant::new())).is_err());
        // The quad node has 4 application cores; 8 secure cores is fiction.
        assert!(
            TeePool::boot(&TeePoolConfig::iot_quad_node(8), |_| Arc::new(
                Supplicant::new()
            ))
            .is_err()
        );
        assert!(
            TeePool::boot(&TeePoolConfig::iot_quad_node(4), |_| Arc::new(
                Supplicant::new()
            ))
            .is_ok()
        );
    }

    #[test]
    fn cores_share_the_carveout_but_not_clocks_or_counters() {
        let pool = booted(3);
        assert_eq!(pool.len(), 3);
        let buf = pool.core(0).platform().secure_ram().alloc(4096).unwrap();
        assert!(pool.core(2).platform().secure_ram().bytes_in_use() >= 4096);
        assert!(pool.secure_ram().bytes_in_use() >= 4096);
        drop(buf);

        pool.core(1)
            .platform()
            .charge_cpu(World::Secure, SimDuration::from_micros(11));
        pool.core(1)
            .platform()
            .monitor()
            .world_switch(World::Secure);
        assert_eq!(pool.core(0).virtual_time(), SimDuration::ZERO);
        assert!(pool.core(1).virtual_time() >= SimDuration::from_micros(11));
        assert_eq!(pool.max_virtual_time(), pool.core(1).virtual_time());
        let snaps = pool.snapshots();
        assert_eq!(snaps[0].world_switches, 0);
        assert_eq!(snaps[1].world_switches, 1);
        // TA registration reserves per core; both land in the shared pool,
        // whose peak record survives into the aggregated snapshot.
        let delta = pool.aggregate_delta(&vec![TzStatsSnapshot::default(); 3]);
        assert_eq!(delta.world_switches, 1);
        assert!(delta.secure_ram_peak_bytes >= 4096);
    }
}
