//! Deterministic session placement.
//!
//! The scheduler owns one slot per TA session (one per secure core) and
//! places capture windows onto them by cumulative load: each window goes
//! to the least-loaded session, ties broken by the lowest core index, and
//! a session's load grows by the window's weight (its length in capture
//! periods / frames). With uniform windows this degenerates to exact
//! round-robin; with ragged windows it balances.
//!
//! **Determinism contract.** Placement depends only on the sequence of
//! window weights the scheduler has seen — there is no randomness and no
//! clock. Two schedulers fed identical weight sequences produce identical
//! assignments. The sharded capture stage and the sharded filter stage
//! rely on exactly this: each holds its own scheduler, both see the same
//! batches, so the scenes the capture side queues on core `s` are
//! precisely the windows the filter side dispatches to core `s`'s
//! session. A shared mutable scheduler would give the same result at the
//! cost of a lock; the mirrored form keeps the stages independent.

use serde::{Deserialize, Serialize};

/// Cumulative load of one TA session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionLoad {
    /// Windows placed onto the session.
    pub windows: u64,
    /// Total weight (capture periods / frames) placed onto the session.
    pub weight: u64,
    /// Batches in which the session received at least one window.
    pub batches: u64,
}

/// Deterministic least-loaded placement over a fixed set of sessions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionScheduler {
    loads: Vec<SessionLoad>,
}

impl SessionScheduler {
    /// Creates a scheduler over `sessions` sessions (at least one).
    ///
    /// # Panics
    ///
    /// Panics on zero sessions — a scheduler with nowhere to place work
    /// is a construction bug, not a runtime condition.
    pub fn new(sessions: usize) -> Self {
        assert!(sessions > 0, "scheduler needs at least one session");
        SessionScheduler {
            loads: vec![SessionLoad::default(); sessions],
        }
    }

    /// Number of sessions.
    pub fn sessions(&self) -> usize {
        self.loads.len()
    }

    /// Places one batch of windows: returns, per window, the session it
    /// goes to. Windows are placed in order, each onto the session with
    /// the smallest cumulative weight (ties to the lowest index), and the
    /// placement is recorded so later batches continue from the balanced
    /// state.
    pub fn assign(&mut self, weights: &[u64]) -> Vec<usize> {
        let mut assignment = Vec::with_capacity(weights.len());
        let mut touched = vec![false; self.loads.len()];
        for &weight in weights {
            let session = self
                .loads
                .iter()
                .enumerate()
                .min_by_key(|(index, load)| (load.weight, *index))
                .map(|(index, _)| index)
                .expect("scheduler has at least one session");
            self.loads[session].windows += 1;
            self.loads[session].weight += weight.max(1);
            touched[session] = true;
            assignment.push(session);
        }
        for (session, hit) in touched.into_iter().enumerate() {
            if hit {
                self.loads[session].batches += 1;
            }
        }
        assignment
    }

    /// Per-session cumulative loads, in core order.
    pub fn loads(&self) -> &[SessionLoad] {
        &self.loads
    }

    /// The currently least-loaded session.
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|(index, load)| (load.weight, *index))
            .map(|(index, _)| index)
            .expect("scheduler has at least one session")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_windows_round_robin() {
        let mut scheduler = SessionScheduler::new(3);
        let assignment = scheduler.assign(&[2, 2, 2, 2, 2, 2, 2]);
        assert_eq!(assignment, vec![0, 1, 2, 0, 1, 2, 0]);
        // The next batch continues from the balanced state: core 0 is one
        // window ahead, so cores 1 and 2 fill first.
        let next = scheduler.assign(&[2, 2]);
        assert_eq!(next, vec![1, 2]);
        assert_eq!(scheduler.loads()[0].windows, 3);
        assert_eq!(scheduler.loads()[1].batches, 2);
    }

    #[test]
    fn ragged_windows_balance_by_weight() {
        let mut scheduler = SessionScheduler::new(2);
        // A heavy window tips the scales: the following light windows all
        // land on the other session until the weights even out.
        let assignment = scheduler.assign(&[10, 1, 1, 1, 1]);
        assert_eq!(assignment, vec![0, 1, 1, 1, 1]);
        assert_eq!(scheduler.least_loaded(), 1);
        assert_eq!(scheduler.loads()[0].weight, 10);
        assert_eq!(scheduler.loads()[1].weight, 4);
    }

    #[test]
    fn mirrored_schedulers_agree() {
        // The determinism contract the sharded stages rely on.
        let mut capture_side = SessionScheduler::new(4);
        let mut filter_side = SessionScheduler::new(4);
        for batch in [vec![3u64, 1, 4, 1, 5], vec![9, 2], vec![6, 5, 3, 5]] {
            assert_eq!(capture_side.assign(&batch), filter_side.assign(&batch));
        }
        assert_eq!(capture_side, filter_side);
    }

    #[test]
    fn zero_weights_are_clamped() {
        let mut scheduler = SessionScheduler::new(2);
        scheduler.assign(&[0, 0]);
        assert_eq!(scheduler.loads()[0].weight, 1);
        assert_eq!(scheduler.loads()[1].weight, 1);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn zero_sessions_panic() {
        let _ = SessionScheduler::new(0);
    }
}
