//! Deterministic session placement.
//!
//! The scheduler owns one slot per TA session (one per secure core) and
//! places capture windows onto them by cumulative load: each window goes
//! to the least-loaded session, ties broken by the lowest core index, and
//! a session's load grows by the window's weight (its length in capture
//! periods / frames). With uniform windows this degenerates to exact
//! round-robin; with ragged windows it balances.
//!
//! **Determinism contract.** Placement depends only on the sequence of
//! window weights the scheduler has seen — there is no randomness and no
//! clock. Two schedulers fed identical weight sequences produce identical
//! assignments. The sharded capture stage and the sharded filter stage
//! rely on exactly this: each holds its own scheduler, both see the same
//! batches, so the scenes the capture side queues on core `s` are
//! precisely the windows the filter side dispatches to core `s`'s
//! session. A shared mutable scheduler would give the same result at the
//! cost of a lock; the mirrored form keeps the stages independent.
//!
//! **Work stealing.** Greedy least-loaded placement is online: it cannot
//! revisit a decision once a heavier window lands. On ragged window mixes
//! that leaves one session backlogged while a sibling idles.
//! [`SessionScheduler::assign_with_stealing`] adds a deterministic steal
//! pass after the greedy pass: while the batch still holds a window whose
//! move from the most-loaded to the least-loaded session strictly shrinks
//! the imbalance, the idle session steals it, and every steal is recorded
//! as a [`WindowSteal`] — the seam that keeps the determinism contract:
//! steal decisions are a pure function of the weight sequence, so
//! mirrored schedulers still agree, and the records travel with the
//! prepared batch for auditability.

use serde::{Deserialize, Serialize};

/// Cumulative load of one TA session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionLoad {
    /// Windows placed onto the session.
    pub windows: u64,
    /// Total weight (capture periods / frames) placed onto the session.
    pub weight: u64,
    /// Batches in which the session received at least one window.
    pub batches: u64,
}

/// One recorded steal decision of
/// [`SessionScheduler::assign_with_stealing`]: window `window` of the
/// batch moved from session `from` to the idler session `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSteal {
    /// Index of the window within the batch.
    pub window: usize,
    /// The backlogged session the window was taken from.
    pub from: usize,
    /// The idle session that stole it.
    pub to: usize,
    /// The window's weight (capture periods / frames).
    pub weight: u64,
}

/// Deterministic least-loaded placement over a fixed set of sessions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionScheduler {
    loads: Vec<SessionLoad>,
    /// Fixed cost charged per window on top of its frame weight — the
    /// crossing + dispatch overhead a session pays regardless of window
    /// length, expressed in frame-equivalents. Zero reproduces the
    /// historical frames-only weighting exactly.
    window_overhead: u64,
}

impl SessionScheduler {
    /// Creates a scheduler over `sessions` sessions (at least one),
    /// weighting windows by their frame count alone.
    ///
    /// # Panics
    ///
    /// Panics on zero sessions — a scheduler with nowhere to place work
    /// is a construction bug, not a runtime condition.
    pub fn new(sessions: usize) -> Self {
        SessionScheduler::with_window_overhead(sessions, 0)
    }

    /// Creates a scheduler whose every window additionally weighs
    /// `overhead` frame-equivalents — the per-window fixed cost (TEE
    /// crossing + TA dispatch) that dominates once window shares get very
    /// small. The overhead is part of the weight *function*, not the
    /// weight *sequence*: mirrored schedulers built with the same
    /// overhead still agree on every placement and steal decision.
    ///
    /// # Panics
    ///
    /// Panics on zero sessions.
    pub fn with_window_overhead(sessions: usize, overhead: u64) -> Self {
        assert!(sessions > 0, "scheduler needs at least one session");
        SessionScheduler {
            loads: vec![SessionLoad::default(); sessions],
            window_overhead: overhead,
        }
    }

    /// Number of sessions.
    pub fn sessions(&self) -> usize {
        self.loads.len()
    }

    /// The per-window fixed cost in force.
    pub fn window_overhead(&self) -> u64 {
        self.window_overhead
    }

    /// A window's effective weight: its frame weight (clamped to one)
    /// plus the per-window fixed cost.
    fn effective_weight(&self, weight: u64) -> u64 {
        weight.max(1) + self.window_overhead
    }

    /// Places one batch of windows: returns, per window, the session it
    /// goes to. Windows are placed in order, each onto the session with
    /// the smallest cumulative weight (ties to the lowest index), and the
    /// placement is recorded so later batches continue from the balanced
    /// state.
    pub fn assign(&mut self, weights: &[u64]) -> Vec<usize> {
        let mut assignment = Vec::with_capacity(weights.len());
        let mut touched = vec![false; self.loads.len()];
        for &weight in weights {
            let session = self.place(weight);
            touched[session] = true;
            assignment.push(session);
        }
        for (session, hit) in touched.into_iter().enumerate() {
            if hit {
                self.loads[session].batches += 1;
            }
        }
        assignment
    }

    /// Places one batch like [`SessionScheduler::assign`], then lets
    /// idle sessions **steal** queued windows from backlogged siblings.
    ///
    /// The steal pass closes the **cumulative** backlog gap: greedy
    /// placement is online — it cannot revisit a decision once a heavier
    /// window has landed — so a ragged mix leaves one session backlogged
    /// (large cumulative weight) while a sibling idles. While the
    /// backlogged session carries a window of this batch whose weight is
    /// strictly below the gap to the idlest session, the idle session
    /// steals it (largest such window first), and every move is
    /// recorded. The pass is a pure function of the weight sequence —
    /// mirrored schedulers make identical steal decisions — and it never
    /// increases the cumulative makespan, which is what cuts completion
    /// time and tail latency on ragged window mixes.
    pub fn assign_with_stealing(&mut self, weights: &[u64]) -> (Vec<usize>, Vec<WindowSteal>) {
        // Greedy pass — the same rule as `assign`, with the batch tally
        // deferred until after stealing so a session that only receives
        // stolen windows still counts as touched.
        let mut assignment = Vec::with_capacity(weights.len());
        for &weight in weights {
            assignment.push(self.place(weight));
        }
        // Steal pass. Each move strictly shrinks the backlogged/idle
        // gap, and the iteration cap bounds the pass even in
        // pathological mixes.
        let mut steals = Vec::new();
        if self.loads.len() > 1 {
            for _ in 0..weights.len() {
                let share: Vec<u64> = self.loads.iter().map(|load| load.weight).collect();
                let donor = extreme_session(&share, |gap| gap > 0);
                let thief = extreme_session(&share, |gap| gap < 0);
                let gap = share[donor] - share[thief];
                // The heaviest window of this batch on the donor that
                // still improves the imbalance (ties to the earliest
                // window, for determinism).
                let candidate = assignment
                    .iter()
                    .enumerate()
                    .filter(|(_, &session)| session == donor)
                    .map(|(window, _)| (self.effective_weight(weights[window]), window))
                    .filter(|&(weight, _)| weight < gap)
                    .max_by_key(|&(weight, window)| (weight, std::cmp::Reverse(window)));
                let Some((weight, window)) = candidate else {
                    break;
                };
                assignment[window] = thief;
                self.loads[donor].windows -= 1;
                self.loads[donor].weight -= weight;
                self.loads[thief].windows += 1;
                self.loads[thief].weight += weight;
                steals.push(WindowSteal {
                    window,
                    from: donor,
                    to: thief,
                    weight,
                });
            }
        }
        let mut touched = vec![false; self.loads.len()];
        for &session in &assignment {
            touched[session] = true;
        }
        for (session, hit) in touched.into_iter().enumerate() {
            if hit {
                self.loads[session].batches += 1;
            }
        }
        (assignment, steals)
    }

    /// Places one window onto the least-loaded session — the single
    /// greedy rule shared by [`SessionScheduler::assign`] and the greedy
    /// pass of [`SessionScheduler::assign_with_stealing`], so the two
    /// entry points can never drift.
    fn place(&mut self, weight: u64) -> usize {
        let session = self.least_loaded();
        self.loads[session].windows += 1;
        self.loads[session].weight += self.effective_weight(weight);
        session
    }

    /// Per-session cumulative loads, in core order.
    pub fn loads(&self) -> &[SessionLoad] {
        &self.loads
    }

    /// The currently least-loaded session.
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|(index, load)| (load.weight, *index))
            .map(|(index, _)| index)
            .expect("scheduler has at least one session")
    }
}

/// Index of the session whose batch share is extreme under `prefer`
/// (`gap > 0` picks the heaviest share, `gap < 0` the lightest), with
/// ties broken to the lowest index — the deterministic donor/thief rule
/// of the steal pass.
fn extreme_session(share: &[u64], prefer: impl Fn(i128) -> bool) -> usize {
    let mut best = 0;
    for (index, &value) in share.iter().enumerate().skip(1) {
        if prefer(i128::from(value) - i128::from(share[best])) {
            best = index;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_windows_round_robin() {
        let mut scheduler = SessionScheduler::new(3);
        let assignment = scheduler.assign(&[2, 2, 2, 2, 2, 2, 2]);
        assert_eq!(assignment, vec![0, 1, 2, 0, 1, 2, 0]);
        // The next batch continues from the balanced state: core 0 is one
        // window ahead, so cores 1 and 2 fill first.
        let next = scheduler.assign(&[2, 2]);
        assert_eq!(next, vec![1, 2]);
        assert_eq!(scheduler.loads()[0].windows, 3);
        assert_eq!(scheduler.loads()[1].batches, 2);
    }

    #[test]
    fn ragged_windows_balance_by_weight() {
        let mut scheduler = SessionScheduler::new(2);
        // A heavy window tips the scales: the following light windows all
        // land on the other session until the weights even out.
        let assignment = scheduler.assign(&[10, 1, 1, 1, 1]);
        assert_eq!(assignment, vec![0, 1, 1, 1, 1]);
        assert_eq!(scheduler.least_loaded(), 1);
        assert_eq!(scheduler.loads()[0].weight, 10);
        assert_eq!(scheduler.loads()[1].weight, 4);
    }

    #[test]
    fn mirrored_schedulers_agree() {
        // The determinism contract the sharded stages rely on.
        let mut capture_side = SessionScheduler::new(4);
        let mut filter_side = SessionScheduler::new(4);
        for batch in [vec![3u64, 1, 4, 1, 5], vec![9, 2], vec![6, 5, 3, 5]] {
            assert_eq!(capture_side.assign(&batch), filter_side.assign(&batch));
        }
        assert_eq!(capture_side, filter_side);
    }

    #[test]
    fn zero_weights_are_clamped() {
        let mut scheduler = SessionScheduler::new(2);
        scheduler.assign(&[0, 0]);
        assert_eq!(scheduler.loads()[0].weight, 1);
        assert_eq!(scheduler.loads()[1].weight, 1);
    }

    #[test]
    #[should_panic(expected = "at least one session")]
    fn zero_sessions_panic() {
        let _ = SessionScheduler::new(0);
    }

    fn makespan(scheduler: &SessionScheduler) -> u64 {
        scheduler
            .loads()
            .iter()
            .map(|load| load.weight)
            .max()
            .unwrap_or(0)
    }

    #[test]
    fn stealing_rebalances_a_ragged_batch() {
        // Greedy: s0 gets 3+3 (tie-breaks), s1 gets 3 then the trailing
        // 1s, then the 8 lands on whichever is lighter — leaving a gap a
        // steal pass can close.
        let weights = [3u64, 3, 3, 1, 1, 1, 8];
        let mut greedy = SessionScheduler::new(2);
        greedy.assign(&weights);
        let mut stealing = SessionScheduler::new(2);
        let (assignment, steals) = stealing.assign_with_stealing(&weights);
        assert_eq!(assignment.len(), weights.len());
        assert!(!steals.is_empty(), "ragged batch triggered no steals");
        assert!(
            makespan(&stealing) < makespan(&greedy),
            "stealing {} did not beat greedy {}",
            makespan(&stealing),
            makespan(&greedy)
        );
        // The recorded decisions describe exactly the final placement.
        for steal in &steals {
            assert_eq!(assignment[steal.window], steal.to);
            assert_ne!(steal.from, steal.to);
            assert_eq!(steal.weight, weights[steal.window].max(1));
        }
        // Loads stay a consistent account of the assignment.
        let total: u64 = weights.iter().map(|w| (*w).max(1)).sum();
        assert_eq!(
            stealing.loads().iter().map(|l| l.weight).sum::<u64>(),
            total
        );
        assert_eq!(
            stealing.loads().iter().map(|l| l.windows).sum::<u64>(),
            weights.len() as u64
        );
    }

    #[test]
    fn stealing_never_fires_on_balanced_batches() {
        let mut scheduler = SessionScheduler::new(3);
        let (assignment, steals) = scheduler.assign_with_stealing(&[2, 2, 2, 2, 2, 2]);
        assert_eq!(assignment, vec![0, 1, 2, 0, 1, 2]);
        assert!(steals.is_empty());
    }

    #[test]
    fn mirrored_schedulers_agree_on_steals() {
        let mut capture_side = SessionScheduler::new(3);
        let mut filter_side = SessionScheduler::new(3);
        for batch in [vec![9u64, 1, 1, 1, 7], vec![2, 2, 12], vec![5, 5, 5, 1]] {
            assert_eq!(
                capture_side.assign_with_stealing(&batch),
                filter_side.assign_with_stealing(&batch)
            );
        }
        assert_eq!(capture_side, filter_side);
    }

    #[test]
    fn window_overhead_models_the_per_window_fixed_cost() {
        // Frames alone: one 8-frame window balances eight 1-frame
        // windows. With a fixed per-window cost of 4 frame-equivalents,
        // eight tiny windows cost 8*(1+4)=40 against the heavy window's
        // 8+4=12 — the scheduler must stop pretending they are equal.
        let mut frames_only = SessionScheduler::new(2);
        let mut with_overhead = SessionScheduler::with_window_overhead(2, 4);
        assert_eq!(with_overhead.window_overhead(), 4);
        let weights = [8u64, 1, 1, 1, 1, 1, 1, 1, 1];
        frames_only.assign(&weights);
        with_overhead.assign(&weights);
        // Frames-only: session 0 carries 8, session 1 carries 8 — "even".
        assert_eq!(frames_only.loads()[0].weight, 8);
        assert_eq!(frames_only.loads()[1].weight, 8);
        // Overhead-aware: the tiny windows' fixed costs spill back onto
        // session 0 once session 1's cumulative cost overtakes it.
        assert!(with_overhead.loads()[0].windows > 1);
        let total: u64 = weights.iter().map(|&w| w.max(1) + 4).sum();
        assert_eq!(
            with_overhead.loads().iter().map(|l| l.weight).sum::<u64>(),
            total
        );
    }

    #[test]
    fn mirrored_schedulers_agree_with_overhead() {
        let mut a = SessionScheduler::with_window_overhead(3, 7);
        let mut b = SessionScheduler::with_window_overhead(3, 7);
        for batch in [vec![9u64, 1, 1, 1, 7], vec![2, 2, 12], vec![1, 1, 1, 1]] {
            assert_eq!(
                a.assign_with_stealing(&batch),
                b.assign_with_stealing(&batch)
            );
        }
        assert_eq!(a, b);
    }

    #[test]
    fn single_session_schedulers_cannot_steal() {
        let mut scheduler = SessionScheduler::new(1);
        let (assignment, steals) = scheduler.assign_with_stealing(&[4, 9, 1]);
        assert_eq!(assignment, vec![0, 0, 0]);
        assert!(steals.is_empty());
        assert_eq!(scheduler.loads()[0].batches, 1);
    }
}
