//! The sharded pipeline stages.
//!
//! Both stages implement the existing
//! [`perisec_core::stage::PipelineStage`] trait, so a sharded pipeline is
//! wired exactly like an unsharded one — capture → filter → relay — with
//! the fan-out hidden inside the stage boundary:
//!
//! * [`ShardedFrameCaptureStage`] places each batch's scene events onto
//!   per-core scene queues (via a [`SessionScheduler`]) and runs one
//!   [`SecureFrameCaptureStage`] per core, producing a
//!   [`ShardedPreparedBatch`] whose per-shard halves carry per-core
//!   capture instants — each core has its own clock;
//! * [`ShardedFilterStage`] drives one [`SecureFilterStage`] (one TA
//!   session) per core and merges the per-shard verdicts with
//!   [`merge_verdicts`]. It also accepts a *flat* [`PreparedBatch`]
//!   ([`ShardInput::Flat`]) and round-robins its windows across the
//!   sessions itself — the entry point for callers whose capture side is
//!   not shard-aware.
//!
//! Merging is deterministic and order-invariant: per dialog id, the
//! maximum probability and the most restrictive decision win, and the
//! result is sorted by dialog id — whatever order (or partition) the
//! shard replies arrive in.

use perisec_core::policy::FilterDecision;
use perisec_core::stage::{
    FilteredBatch, PipelineStage, PreparedBatch, SecureFilterStage, SecureFrameCaptureStage,
    WindowVerdict,
};
use perisec_core::{CoreError, Result};
use perisec_workload::scenario::CameraScenarioEvent;

use std::collections::BTreeMap;

use crate::scheduler::{SessionScheduler, WindowSteal};

/// A batch split across secure cores: element `s` is core `s`'s share,
/// with that core's own capture timestamp.
#[derive(Debug, Clone)]
pub struct ShardedPreparedBatch {
    /// Per-core prepared batches, in core order (possibly empty shares).
    pub shards: Vec<PreparedBatch>,
    /// The steal decisions the scheduler applied while placing this batch
    /// (empty when work stealing is disabled) — recorded into the batch
    /// so the placement a downstream stage executes is auditable and the
    /// determinism contract has a visible seam.
    pub steals: Vec<WindowSteal>,
}

impl ShardedPreparedBatch {
    /// Total windows across all shards.
    pub fn window_count(&self) -> usize {
        self.shards.iter().map(|s| s.windows.len()).sum()
    }

    /// Whether no shard carries any window.
    pub fn is_empty(&self) -> bool {
        self.window_count() == 0
    }
}

/// Input of the sharded filter stage: either an already-sharded batch
/// (from [`ShardedFrameCaptureStage`], clock-coherent per core) or a flat
/// batch the stage partitions itself.
#[derive(Debug, Clone)]
pub enum ShardInput {
    /// A flat batch; the stage round-robins its windows across sessions.
    Flat(PreparedBatch),
    /// A batch already split per core.
    Sharded(ShardedPreparedBatch),
}

impl From<PreparedBatch> for ShardInput {
    fn from(batch: PreparedBatch) -> Self {
        ShardInput::Flat(batch)
    }
}

impl From<ShardedPreparedBatch> for ShardInput {
    fn from(batch: ShardedPreparedBatch) -> Self {
        ShardInput::Sharded(batch)
    }
}

/// Merges per-window verdicts deterministically: one verdict per dialog
/// id, carrying the maximum probability and the most restrictive decision
/// observed for that id, sorted by dialog id. Invariant under any
/// permutation or partition of the input (max and "most restrictive" are
/// commutative and associative), which is what makes shard replies safe
/// to combine in whatever order the cores finish.
pub fn merge_verdicts(verdicts: impl IntoIterator<Item = WindowVerdict>) -> Vec<WindowVerdict> {
    fn severity(decision: FilterDecision) -> u8 {
        match decision {
            FilterDecision::Forward => 0,
            FilterDecision::ForwardRedacted => 1,
            FilterDecision::Drop => 2,
        }
    }
    let mut merged: BTreeMap<u64, WindowVerdict> = BTreeMap::new();
    for verdict in verdicts {
        merged
            .entry(verdict.dialog_id)
            .and_modify(|existing| {
                existing.probability_milli =
                    existing.probability_milli.max(verdict.probability_milli);
                if severity(verdict.decision) > severity(existing.decision) {
                    existing.decision = verdict.decision;
                }
            })
            .or_insert(verdict);
    }
    merged.into_values().collect()
}

/// The sharded camera capture stage: scene events fan out onto per-core
/// scene queues, one inner capture stage per core.
pub struct ShardedFrameCaptureStage {
    shards: Vec<SecureFrameCaptureStage>,
    scheduler: SessionScheduler,
    stealing: bool,
    stolen_windows: u64,
}

impl ShardedFrameCaptureStage {
    /// Creates the stage over one inner capture stage per core. Each
    /// inner stage must be bound to its core's platform and scene queue.
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list (see [`SessionScheduler::new`]).
    pub fn new(shards: Vec<SecureFrameCaptureStage>) -> Self {
        let scheduler = SessionScheduler::new(shards.len());
        ShardedFrameCaptureStage {
            shards,
            scheduler,
            stealing: false,
            stolen_windows: 0,
        }
    }

    /// Enables the scheduler's work-stealing rebalance pass (see
    /// [`SessionScheduler::assign_with_stealing`]).
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// Rebuilds the stage's scheduler with a per-window fixed cost in
    /// frame-equivalents (see
    /// [`SessionScheduler::with_window_overhead`]). Must be applied
    /// before the first batch, and identically on the mirrored filter
    /// stage, so the determinism contract holds.
    pub fn with_window_overhead(mut self, overhead: u64) -> Self {
        self.scheduler = SessionScheduler::with_window_overhead(self.shards.len(), overhead);
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The placement loads accumulated so far.
    pub fn loads(&self) -> &[crate::scheduler::SessionLoad] {
        self.scheduler.loads()
    }

    /// Windows moved by the steal pass so far.
    pub fn stolen_windows(&self) -> u64 {
        self.stolen_windows
    }
}

impl PipelineStage for ShardedFrameCaptureStage {
    type Input = Vec<CameraScenarioEvent>;
    type Output = ShardedPreparedBatch;

    fn name(&self) -> &'static str {
        "sharded-frame-capture"
    }

    fn process(&mut self, events: Self::Input) -> Result<ShardedPreparedBatch> {
        let weights: Vec<u64> = events.iter().map(|e| e.frames.max(1) as u64).collect();
        let (assignment, steals) = if self.stealing {
            self.scheduler.assign_with_stealing(&weights)
        } else {
            (self.scheduler.assign(&weights), Vec::new())
        };
        self.stolen_windows += steals.len() as u64;
        let mut per_shard: Vec<Vec<CameraScenarioEvent>> = vec![Vec::new(); self.shards.len()];
        for (event, &shard) in events.into_iter().zip(&assignment) {
            per_shard[shard].push(event);
        }
        let mut shards = Vec::with_capacity(self.shards.len());
        for (stage, share) in self.shards.iter_mut().zip(per_shard) {
            shards.push(stage.process(share)?);
        }
        Ok(ShardedPreparedBatch { shards, steals })
    }
}

/// The sharded filter stage: one open TA session per secure core, shard
/// replies merged into a single [`FilteredBatch`].
pub struct ShardedFilterStage {
    shards: Vec<SecureFilterStage>,
    scheduler: SessionScheduler,
    stealing: bool,
}

impl ShardedFilterStage {
    /// Creates the stage over one inner filter stage (one TA session) per
    /// core.
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list (see [`SessionScheduler::new`]).
    pub fn new(shards: Vec<SecureFilterStage>) -> Self {
        let scheduler = SessionScheduler::new(shards.len());
        ShardedFilterStage {
            shards,
            scheduler,
            stealing: false,
        }
    }

    /// Blocking drain of every shard's relay buffer (see
    /// [`SecureFilterStage::drain_relay`]). Called once a scenario has
    /// stepped to completion so no shard strands a deferred verdict.
    ///
    /// # Errors
    ///
    /// Propagates the first shard's flush failure.
    pub fn drain_relay(&mut self) -> Result<()> {
        for shard in &mut self.shards {
            shard.drain_relay()?;
        }
        Ok(())
    }

    /// Enables the steal pass for the flat-batch path (a shard-aware
    /// capture stage makes the placement itself; this flag mirrors its
    /// behaviour for callers that hand the stage unsharded batches).
    pub fn with_stealing(mut self, stealing: bool) -> Self {
        self.stealing = stealing;
        self
    }

    /// Rebuilds the stage's scheduler with a per-window fixed cost —
    /// must mirror the capture stage's (see
    /// [`ShardedFrameCaptureStage::with_window_overhead`]).
    pub fn with_window_overhead(mut self, overhead: u64) -> Self {
        self.scheduler = SessionScheduler::with_window_overhead(self.shards.len(), overhead);
        self
    }

    /// Number of shards (open TA sessions).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Round-robins a flat batch's windows across the sessions using the
    /// stage's own scheduler — the mirror of what a shard-aware capture
    /// stage does, for callers that prepared one flat batch. Each shard
    /// share is stamped with **its own core's** current clock, not the
    /// flat batch's instant: the caller's capture instant lives in a
    /// different clock domain on a multi-core pool, and measuring elapsed
    /// time against it would yield saturated zeroes or inter-clock
    /// offsets. Per-window latency on this path therefore covers the
    /// filter crossing from dispatch.
    fn shard_flat(&mut self, prepared: PreparedBatch) -> ShardedPreparedBatch {
        let weights: Vec<u64> = prepared
            .windows
            .iter()
            .map(|w| w.periods.max(1) as u64)
            .collect();
        let (assignment, steals) = if self.stealing {
            self.scheduler.assign_with_stealing(&weights)
        } else {
            (self.scheduler.assign(&weights), Vec::new())
        };
        let mut shards: Vec<PreparedBatch> = self
            .shards
            .iter()
            .map(|stage| PreparedBatch {
                windows: Vec::new(),
                started: stage.platform().clock().now(),
            })
            .collect();
        for (window, &shard) in prepared.windows.into_iter().zip(&assignment) {
            shards[shard].windows.push(window);
        }
        ShardedPreparedBatch { shards, steals }
    }
}

impl PipelineStage for ShardedFilterStage {
    type Input = ShardInput;
    type Output = FilteredBatch;

    fn name(&self) -> &'static str {
        "sharded-tee-filter"
    }

    fn process(&mut self, input: Self::Input) -> Result<FilteredBatch> {
        let sharded = match input {
            ShardInput::Flat(prepared) => self.shard_flat(prepared),
            ShardInput::Sharded(sharded) => sharded,
        };
        if sharded.shards.len() != self.shards.len() {
            return Err(CoreError::Config {
                reason: format!(
                    "sharded batch has {} shares for a {}-session filter stage",
                    sharded.shards.len(),
                    self.shards.len()
                ),
            });
        }
        let mut verdicts = Vec::with_capacity(sharded.window_count());
        let mut merged = FilteredBatch::default();
        for (stage, share) in self.shards.iter_mut().zip(sharded.shards) {
            let filtered = stage.process(share)?;
            verdicts.extend(filtered.verdicts);
            merged.wire += filtered.wire;
            merged.capture_cpu += filtered.capture_cpu;
            merged.ml += filtered.ml;
            merged.relay += filtered.relay;
            merged.retries += filtered.retries;
            merged.backlog += filtered.backlog;
            merged.per_utterance.extend(filtered.per_utterance);
        }
        merged.verdicts = merge_verdicts(verdicts);
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(dialog_id: u64, decision: FilterDecision, probability_milli: u16) -> WindowVerdict {
        WindowVerdict {
            dialog_id,
            decision,
            probability_milli,
        }
    }

    #[test]
    fn merge_takes_max_probability_and_most_restrictive_decision() {
        let merged = merge_verdicts(vec![
            verdict(7, FilterDecision::Forward, 120),
            verdict(3, FilterDecision::Forward, 40),
            verdict(7, FilterDecision::Drop, 900),
            verdict(7, FilterDecision::ForwardRedacted, 450),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0], verdict(3, FilterDecision::Forward, 40));
        assert_eq!(merged[1], verdict(7, FilterDecision::Drop, 900));
    }

    #[test]
    fn merge_is_permutation_invariant() {
        let base = vec![
            verdict(1, FilterDecision::Forward, 100),
            verdict(2, FilterDecision::Drop, 990),
            verdict(1, FilterDecision::ForwardRedacted, 600),
            verdict(5, FilterDecision::Forward, 10),
        ];
        let forward = merge_verdicts(base.clone());
        let mut reversed = base;
        reversed.reverse();
        assert_eq!(merge_verdicts(reversed), forward);
        assert_eq!(merge_verdicts(Vec::new()), Vec::new());
    }
}
