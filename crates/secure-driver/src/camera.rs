//! The capture-only camera driver running inside OP-TEE.
//!
//! The paper names cameras alongside microphones as the peripherals whose
//! data leaks private information. This driver is the camera-modality
//! sibling of [`crate::driver::SecureI2sDriver`]: frame readout and the
//! period bookkeeping land in the *secure* world (FIQ-routed frame
//! interrupts, secure CPU time, I/O buffers in the TrustZone carve-out),
//! so the untrusted OS never observes raw pixels.
//!
//! What the camera sees is fed in through a [`SceneSource`] — the image
//! analogue of the playback queue feeding the secure microphone — so
//! scenario runners schedule scenes without the driver learning the
//! ground-truth labels.

use perisec_devices::camera::{CameraSensor, SceneSource};
use perisec_devices::dma::DmaChannel;
use perisec_optee::{TeeError, TeeResult};
use perisec_tz::platform::Platform;
use perisec_tz::power::Component;
use perisec_tz::secure_mem::SecureBuf;
use perisec_tz::time::SimDuration;
use perisec_tz::world::World;

use serde::{Deserialize, Serialize};

use crate::driver::SecureDriverState;

/// The kernel-driver functions whose functionality was ported into this
/// secure camera driver — the minimal "capture a frame" set of the Tegra
/// VI/CSI camera stack, mirroring [`crate::driver::PORTED_FUNCTIONS`] for
/// the audio path. ISP processing, format negotiation beyond raw
/// grayscale, and the media-controller plumbing stay in the normal world
/// or are compiled out.
pub const PORTED_CAMERA_FUNCTIONS: &[&str] = &[
    // core init
    "tegra_vi_probe",
    "tegra_vi_init_regmap",
    "tegra_vi_clk_get",
    "tegra_vi_clk_enable",
    "tegra_vi_clk_disable",
    "tegra_vi_reset_control",
    // capture path
    "tegra_channel_capture_setup",
    "tegra_channel_set_format",
    "tegra_channel_start_streaming",
    "tegra_channel_stop_streaming",
    "tegra_channel_capture_frame",
    "tegra_channel_frame_irq_handler",
    "tegra_channel_read_surface",
    "tegra_csi_start_streaming",
    "tegra_csi_stop_streaming",
    "tegra_csi_error_recover",
    // sensor control used while configuring the capture path
    "imx219_set_mode",
    "imx219_start_streaming",
    "imx219_stop_streaming",
    // dma glue
    "tegra_vi_syncpt_wait",
    "tegra_vi_buffer_queue",
    "tegra_vi_buffer_done",
];

/// Fixed secure-world CPU cost of the per-frame bookkeeping.
const PER_FRAME_DRIVER_OVERHEAD: SimDuration = SimDuration::from_micros(8);

/// Accounting for one secure frame-capture call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SecureFrameReport {
    /// Time the frames occupied on the sensor interface (exposure +
    /// readout, one frame interval per frame).
    pub wire_time: SimDuration,
    /// Secure-world CPU time charged for moving and bookkeeping.
    pub cpu_time: SimDuration,
    /// Frames captured.
    pub frames: usize,
    /// Pixel bytes produced.
    pub pixel_bytes: usize,
    /// Secure interrupts taken.
    pub secure_irqs: u64,
}

/// Cumulative statistics of the secure camera driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SecureCameraStats {
    /// Total frames captured.
    pub frames_captured: u64,
    /// Total secure interrupts taken.
    pub secure_irqs: u64,
    /// Total pixel bytes handed to the PTA interface.
    pub bytes_delivered: u64,
}

/// One window of a batched frame capture: the concatenated grayscale
/// frames plus the accounting for this window alone.
#[derive(Debug, Clone, Default)]
pub struct FrameWindowCapture {
    /// Row-major grayscale pixels, frames concatenated in capture order.
    pub pixels: Vec<u8>,
    /// Number of frames in the window.
    pub frames: usize,
    /// Accounting for this window alone.
    pub report: SecureFrameReport,
}

/// The secure, capture-only camera driver.
pub struct SecureCameraDriver {
    platform: Platform,
    sensor: CameraSensor,
    scenes: Box<dyn SceneSource>,
    dma: DmaChannel,
    state: SecureDriverState,
    io_buffer: Option<SecureBuf>,
    stats: SecureCameraStats,
}

impl std::fmt::Debug for SecureCameraDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureCameraDriver")
            .field("state", &self.state)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SecureCameraDriver {
    /// Creates the secure driver for `sensor` on `platform`, drawing
    /// scenes from `scenes`.
    pub fn new(platform: Platform, sensor: CameraSensor, scenes: Box<dyn SceneSource>) -> Self {
        SecureCameraDriver {
            platform,
            sensor,
            scenes,
            dma: DmaChannel::default(),
            state: SecureDriverState::Idle,
            io_buffer: None,
            stats: SecureCameraStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> SecureDriverState {
        self.state
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.sensor.width()
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.sensor.height()
    }

    /// Bytes of one grayscale frame.
    pub fn frame_bytes(&self) -> usize {
        self.sensor.width() as usize * self.sensor.height() as usize
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SecureCameraStats {
        self.stats
    }

    /// Simulated physical address of the secure I/O buffer, if configured.
    pub fn io_buffer_addr(&self) -> Option<u64> {
        self.io_buffer.as_ref().map(|b| b.addr())
    }

    /// Configures capture: allocates the secure frame buffers
    /// (double-buffered) from the TrustZone carve-out.
    ///
    /// # Errors
    ///
    /// * [`TeeError::BadParameters`] while the stream is running.
    /// * [`TeeError::OutOfMemory`] if the carve-out cannot hold the
    ///   frame buffers.
    pub fn configure(&mut self) -> TeeResult<()> {
        if self.state == SecureDriverState::Running {
            return Err(TeeError::BadParameters {
                reason: "cannot reconfigure a running camera stream".to_owned(),
            });
        }
        let io = self
            .platform
            .secure_ram()
            .alloc(self.frame_bytes() * 2)
            .map_err(TeeError::from)?;
        let pages = io.len().div_ceil(4096);
        self.platform.charge_cpu(
            World::Secure,
            self.platform.cost().secure_page_alloc * pages as u64,
        );
        self.platform
            .charge_cpu(World::Secure, SimDuration::from_micros(50));
        self.io_buffer = Some(io);
        self.state = SecureDriverState::Configured;
        Ok(())
    }

    /// Starts the frame stream.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] unless the driver is configured.
    pub fn start(&mut self) -> TeeResult<()> {
        if self.state == SecureDriverState::Idle {
            return Err(TeeError::BadParameters {
                reason: "camera driver is not configured".to_owned(),
            });
        }
        self.platform
            .charge_cpu(World::Secure, SimDuration::from_micros(25));
        self.sensor.start();
        self.state = SecureDriverState::Running;
        Ok(())
    }

    /// Stops the frame stream (back to configured).
    pub fn stop(&mut self) {
        if self.state == SecureDriverState::Running {
            self.platform
                .charge_cpu(World::Secure, SimDuration::from_micros(15));
            self.sensor.stop();
            self.state = SecureDriverState::Configured;
        }
    }

    /// Captures `frames` consecutive frames of whatever the scene source
    /// presents, returning the concatenated pixels plus accounting.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] if the stream is not running,
    /// or a wrapped device error.
    pub fn capture_frames(&mut self, frames: usize) -> TeeResult<(Vec<u8>, SecureFrameReport)> {
        if self.state != SecureDriverState::Running {
            return Err(TeeError::BadParameters {
                reason: format!("frame capture requested while driver is {}", self.state),
            });
        }
        if frames == 0 {
            return Err(TeeError::BadParameters {
                reason: "frame capture needs at least one frame".to_owned(),
            });
        }
        let mut report = SecureFrameReport {
            frames,
            ..SecureFrameReport::default()
        };
        let mut pixels = Vec::with_capacity(frames * self.frame_bytes());
        let cpu_before = self.platform.clock().now();
        for _ in 0..frames {
            // 1. One frame arrives over the sensor interface.
            let frame = self
                .sensor
                .capture_from(self.scenes.as_mut())
                .map_err(|e| TeeError::Generic {
                    reason: e.to_string(),
                })?;
            let wire = self.sensor.frame_interval();
            report.wire_time += wire;
            self.platform.record_device_busy(Component::Camera, wire);

            // 2. DMA moves it into the secure frame buffer. The DMA model
            //    transfers i16 words; pack two pixels per word.
            let words: Vec<i16> = frame
                .pixels
                .chunks(2)
                .map(|c| i16::from_le_bytes([c[0], *c.get(1).unwrap_or(&0)]))
                .collect();
            let io = self
                .io_buffer
                .as_mut()
                .expect("configured driver has io buffer");
            let transfer =
                self.dma
                    .transfer(&words, io.as_mut_slice())
                    .map_err(|e| TeeError::Generic {
                        reason: e.to_string(),
                    })?;
            self.platform
                .record_device_busy(Component::DmaEngine, transfer.bus_time);

            // 3. Secure (FIQ-routed) frame-done interrupt plus bookkeeping.
            self.platform.stats().record_secure_irq();
            report.secure_irqs += 1;
            self.platform
                .charge_cpu(World::Secure, self.platform.cost().secure_irq_entry);
            self.platform
                .charge_cpu(World::Secure, PER_FRAME_DRIVER_OVERHEAD);

            // 4. The driver securely unpacks the surface into the TA-visible
            //    layout: charged as secure compute over the frame bytes.
            self.platform
                .charge_compute(World::Secure, frame.pixels.len() as u64 / 4);
            pixels.extend_from_slice(&frame.pixels);
        }
        report.pixel_bytes = pixels.len();
        report.cpu_time = self.platform.clock().elapsed_since(cpu_before);

        self.stats.frames_captured += frames as u64;
        self.stats.secure_irqs += report.secure_irqs;
        self.stats.bytes_delivered += pixels.len() as u64;
        Ok((pixels, report))
    }

    /// Captures several frame windows back to back in one driver call —
    /// the batch-aware entry point behind the camera PTA's
    /// `CAPTURE_FRAME_BATCH` command. Each entry of `windows` is a window
    /// length in frames.
    ///
    /// # Errors
    ///
    /// Same as [`SecureCameraDriver::capture_frames`]; an empty batch or a
    /// zero-length window is rejected as [`TeeError::BadParameters`].
    pub fn capture_windows(
        &mut self,
        windows: &[usize],
    ) -> TeeResult<(Vec<FrameWindowCapture>, SecureFrameReport)> {
        if windows.is_empty() {
            return Err(TeeError::BadParameters {
                reason: "frame batch must name at least one window".to_owned(),
            });
        }
        if windows.contains(&0) {
            return Err(TeeError::BadParameters {
                reason: "frame windows must be at least one frame".to_owned(),
            });
        }
        let mut captures = Vec::with_capacity(windows.len());
        let mut total = SecureFrameReport::default();
        for &frames in windows {
            let (pixels, report) = self.capture_frames(frames)?;
            total.wire_time += report.wire_time;
            total.cpu_time += report.cpu_time;
            total.frames += report.frames;
            total.pixel_bytes += report.pixel_bytes;
            total.secure_irqs += report.secure_irqs;
            captures.push(FrameWindowCapture {
                pixels,
                frames,
                report,
            });
        }
        Ok((captures, total))
    }

    /// Releases the secure frame buffers.
    pub fn shutdown(&mut self) {
        self.stop();
        self.io_buffer = None;
        self.state = SecureDriverState::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_devices::camera::{FixedScene, SceneKind};

    fn secure_camera(platform: &Platform, scene: SceneKind) -> SecureCameraDriver {
        let sensor = CameraSensor::smart_home("secure-cam", 7).unwrap();
        SecureCameraDriver::new(platform.clone(), sensor, Box::new(FixedScene(scene)))
    }

    #[test]
    fn configure_allocates_frame_buffers_in_the_carveout() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_camera(&platform, SceneKind::EmptyRoom);
        assert!(d.io_buffer_addr().is_none());
        d.configure().unwrap();
        let addr = d.io_buffer_addr().unwrap();
        assert!(platform
            .check_access(addr, 64, World::Normal, false)
            .is_err());
        assert!(platform.check_access(addr, 64, World::Secure, true).is_ok());
        assert!(platform.secure_ram().bytes_in_use() >= 64 * 48 * 2);
    }

    #[test]
    fn capture_produces_pixels_and_secure_costs() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_camera(&platform, SceneKind::Person);
        d.configure().unwrap();
        d.start().unwrap();
        let (pixels, report) = d.capture_frames(3).unwrap();
        assert_eq!(pixels.len(), 3 * 64 * 48);
        assert_eq!(report.frames, 3);
        assert_eq!(report.secure_irqs, 3);
        // 15 fps: three frames occupy three frame intervals of sensor time.
        assert_eq!(report.wire_time, SimDuration::from_secs_f64(1.0 / 15.0) * 3);
        assert!(report.cpu_time > SimDuration::ZERO);
        assert_eq!(platform.stats().snapshot().secure_irqs, 3);
        assert!(
            platform
                .energy_report()
                .component_mj(Component::CpuSecureWorld)
                > 0.0
        );
    }

    #[test]
    fn capture_requires_configuration_and_start() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_camera(&platform, SceneKind::EmptyRoom);
        assert!(d.start().is_err());
        assert!(d.capture_frames(1).is_err());
        d.configure().unwrap();
        assert!(d.capture_frames(1).is_err());
        d.start().unwrap();
        assert!(d.capture_frames(1).is_ok());
        assert!(d.capture_frames(0).is_err());
        assert!(d.configure().is_err());
        d.stop();
        assert!(d.configure().is_ok());
    }

    #[test]
    fn batched_windows_capture_independently_and_accumulate() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_camera(&platform, SceneKind::Document);
        d.configure().unwrap();
        d.start().unwrap();
        let (captures, total) = d.capture_windows(&[2, 1, 3]).unwrap();
        assert_eq!(captures.len(), 3);
        assert_eq!(captures[0].pixels.len(), 2 * 64 * 48);
        assert_eq!(captures[2].frames, 3);
        assert_eq!(total.frames, 6);
        assert_eq!(total.secure_irqs, 6);
        assert!(d.capture_windows(&[]).is_err());
        assert!(d.capture_windows(&[1, 0]).is_err());
        let stats = d.stats();
        assert_eq!(stats.frames_captured, 6);
        assert_eq!(stats.bytes_delivered, 6 * 64 * 48);
    }

    #[test]
    fn shutdown_releases_secure_memory() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_camera(&platform, SceneKind::Pet);
        d.configure().unwrap();
        let used = platform.secure_ram().bytes_in_use();
        assert!(used > 0);
        d.shutdown();
        assert!(platform.secure_ram().bytes_in_use() < used);
        assert_eq!(d.state(), SecureDriverState::Idle);
    }

    #[test]
    fn ported_camera_functions_are_capture_only() {
        for f in PORTED_CAMERA_FUNCTIONS {
            assert!(!f.contains("isp"), "{f} should not be ported");
            assert!(!f.contains("media_controller"), "{f} should not be ported");
        }
        assert!(PORTED_CAMERA_FUNCTIONS.len() >= 20);
    }
}
