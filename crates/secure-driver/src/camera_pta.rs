//! The camera pseudo trusted application.
//!
//! The camera-modality sibling of [`crate::pta::I2sPta`]: it owns the
//! [`SecureCameraDriver`] and exposes configure / start / batched frame
//! capture / stop / stats commands to userland TAs (the vision TA in
//! `perisec-core`). The pixel data it returns never leaves the secure
//! world — its only consumer is the vision TA, which relays verdicts, not
//! frames.

use perisec_optee::{PseudoTa, PtaEnv, TaDescriptor, TeeError, TeeParam, TeeParams, TeeResult};

use crate::camera::{FrameWindowCapture, SecureCameraDriver};

/// Registered name of the camera PTA (its UUID is derived from this).
pub const CAMERA_PTA_NAME: &str = "perisec.camera-pta";

/// Command identifiers understood by the camera PTA.
pub mod cmd {
    /// Configure capture: allocates the secure frame buffers.
    pub const CONFIGURE: u32 = 0;
    /// Start the frame stream.
    pub const START: u32 = 1;
    /// Stop the frame stream.
    pub const STOP: u32 = 3;
    /// Query cumulative statistics: returns `(frames, bytes)` and
    /// `(secure_irqs, 0)` in two value outputs.
    pub const STATS: u32 = 4;
    /// Release all resources.
    pub const SHUTDOWN: u32 = 5;
    /// Batched frame capture: param 0 is an input memref encoding the
    /// window lengths in frames (see
    /// [`super::camera_pta::encode_frames_request`]); returns the
    /// per-window pixels and accounting in an output memref (see
    /// [`super::camera_pta::decode_frame_windows_reply`]) and the
    /// aggregate `(wire_ns, cpu_ns)` in a value output.
    pub const CAPTURE_FRAME_BATCH: u32 = 6;
}

/// Encodes a batch frame-capture request: each window length in frames as
/// a little-endian `u32`.
pub fn encode_frames_request(windows: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(windows.len() * 4);
    for &w in windows {
        out.extend_from_slice(&(w as u32).to_le_bytes());
    }
    out
}

/// Decodes a batch frame-capture request produced by
/// [`encode_frames_request`].
///
/// # Errors
///
/// Returns [`TeeError::BadParameters`] for an empty or ragged buffer.
pub fn decode_frames_request(data: &[u8]) -> TeeResult<Vec<usize>> {
    if data.is_empty() || !data.len().is_multiple_of(4) {
        return Err(TeeError::BadParameters {
            reason: "frame window list must be a non-empty multiple of 4 bytes".to_owned(),
        });
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")) as usize)
        .collect())
}

/// Encodes a batch frame-capture reply: per window, a `u32` pixel byte
/// length, a `u32` frame count, the frame geometry as two `u16`s, the
/// `(wire_ns, cpu_ns)` accounting as two `u64`s, then the pixels.
pub fn encode_frame_windows_reply(
    captures: &[FrameWindowCapture],
    width: u16,
    height: u16,
) -> Vec<u8> {
    let mut out = Vec::new();
    for capture in captures {
        out.extend_from_slice(&(capture.pixels.len() as u32).to_le_bytes());
        out.extend_from_slice(&(capture.frames as u32).to_le_bytes());
        out.extend_from_slice(&width.to_le_bytes());
        out.extend_from_slice(&height.to_le_bytes());
        out.extend_from_slice(&capture.report.wire_time.as_nanos().to_le_bytes());
        out.extend_from_slice(&capture.report.cpu_time.as_nanos().to_le_bytes());
        out.extend_from_slice(&capture.pixels);
    }
    out
}

/// One decoded window of a batch frame-capture reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameWindowReply {
    /// Row-major grayscale pixels, frames concatenated.
    pub pixels: Vec<u8>,
    /// Number of frames in the window.
    pub frames: usize,
    /// Frame width in pixels.
    pub width: u16,
    /// Frame height in pixels.
    pub height: u16,
    /// Sensor wire time of the window, in nanoseconds.
    pub wire_ns: u64,
    /// Secure CPU time charged for the window, in nanoseconds.
    pub cpu_ns: u64,
}

/// Decodes a batch frame-capture reply produced by
/// [`encode_frame_windows_reply`].
///
/// # Errors
///
/// Returns [`TeeError::Communication`] for truncated buffers.
pub fn decode_frame_windows_reply(data: &[u8]) -> TeeResult<Vec<FrameWindowReply>> {
    const HEADER: usize = 4 + 4 + 2 + 2 + 8 + 8;
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        if data.len() < offset + HEADER {
            return Err(TeeError::Communication {
                reason: "frame batch reply header truncated".to_owned(),
            });
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let frames =
            u32::from_le_bytes(data[offset + 4..offset + 8].try_into().expect("4 bytes")) as usize;
        let width = u16::from_le_bytes(data[offset + 8..offset + 10].try_into().expect("2 bytes"));
        let height =
            u16::from_le_bytes(data[offset + 10..offset + 12].try_into().expect("2 bytes"));
        let wire_ns =
            u64::from_le_bytes(data[offset + 12..offset + 20].try_into().expect("8 bytes"));
        let cpu_ns =
            u64::from_le_bytes(data[offset + 20..offset + 28].try_into().expect("8 bytes"));
        offset += HEADER;
        if data.len() < offset + len {
            return Err(TeeError::Communication {
                reason: "frame batch reply pixels truncated".to_owned(),
            });
        }
        out.push(FrameWindowReply {
            pixels: data[offset..offset + len].to_vec(),
            frames,
            width,
            height,
            wire_ns,
            cpu_ns,
        });
        offset += len;
    }
    Ok(out)
}

/// The pseudo trusted application owning the secure camera driver.
pub struct CameraPta {
    driver: SecureCameraDriver,
}

impl std::fmt::Debug for CameraPta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CameraPta")
            .field("driver", &self.driver)
            .finish()
    }
}

impl CameraPta {
    /// Wraps a secure camera driver in the PTA interface.
    pub fn new(driver: SecureCameraDriver) -> Self {
        CameraPta { driver }
    }

    /// Read access to the wrapped driver (for tests and reports).
    pub fn driver(&self) -> &SecureCameraDriver {
        &self.driver
    }
}

impl PseudoTa for CameraPta {
    fn descriptor(&self) -> TaDescriptor {
        TaDescriptor::new(CAMERA_PTA_NAME, 16, 96)
    }

    fn invoke(&mut self, _env: &mut PtaEnv<'_>, cmd: u32, params: &mut TeeParams) -> TeeResult<()> {
        match cmd {
            cmd::CONFIGURE => self.driver.configure(),
            cmd::START => self.driver.start(),
            cmd::CAPTURE_FRAME_BATCH => {
                let windows = decode_frames_request(params.get(0).as_memref().ok_or(
                    TeeError::BadParameters {
                        reason: "capture-frame-batch expects a memref parameter".to_owned(),
                    },
                )?)?;
                let (captures, total) = self.driver.capture_windows(&windows)?;
                params.set(
                    1,
                    TeeParam::MemRefOutput(encode_frame_windows_reply(
                        &captures,
                        self.driver.width() as u16,
                        self.driver.height() as u16,
                    )),
                );
                params.set(
                    2,
                    TeeParam::ValueOutput {
                        a: total.wire_time.as_nanos(),
                        b: total.cpu_time.as_nanos(),
                    },
                );
                Ok(())
            }
            cmd::STOP => {
                self.driver.stop();
                Ok(())
            }
            cmd::STATS => {
                let stats = self.driver.stats();
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: stats.frames_captured,
                        b: stats.bytes_delivered,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: stats.secure_irqs,
                        b: 0,
                    },
                );
                Ok(())
            }
            cmd::SHUTDOWN => {
                self.driver.shutdown();
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("camera pta command {other}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_devices::camera::{CameraSensor, FixedScene, SceneKind};
    use perisec_optee::{Supplicant, TaUuid, TeeCore};
    use perisec_tz::platform::Platform;
    use std::sync::Arc;

    fn registered_pta() -> (Arc<TeeCore>, TaUuid) {
        let platform = Platform::jetson_agx_xavier();
        let core = TeeCore::boot(platform.clone(), Arc::new(Supplicant::new()));
        let sensor = CameraSensor::smart_home("cam", 9).unwrap();
        let pta = CameraPta::new(SecureCameraDriver::new(
            platform,
            sensor,
            Box::new(FixedScene(SceneKind::Person)),
        ));
        let uuid = core.register_pta(Box::new(pta)).unwrap();
        (core, uuid)
    }

    #[test]
    fn full_frame_capture_flow_through_the_pta_interface() {
        let (core, uuid) = registered_pta();
        core.invoke_pta(uuid, cmd::CONFIGURE, &mut TeeParams::new())
            .unwrap();
        core.invoke_pta(uuid, cmd::START, &mut TeeParams::new())
            .unwrap();

        let windows = [2usize, 1];
        let mut p =
            TeeParams::new().with(0, TeeParam::MemRefInput(encode_frames_request(&windows)));
        core.invoke_pta(uuid, cmd::CAPTURE_FRAME_BATCH, &mut p)
            .unwrap();
        let replies = decode_frame_windows_reply(p.get(1).as_memref().unwrap()).unwrap();
        assert_eq!(replies.len(), 2);
        for (reply, frames) in replies.iter().zip(windows) {
            assert_eq!(reply.frames, frames);
            assert_eq!(reply.width, 64);
            assert_eq!(reply.height, 48);
            assert_eq!(reply.pixels.len(), frames * 64 * 48);
            assert!(reply.wire_ns > 0);
            assert!(reply.cpu_ns > 0);
        }
        let (wire_total, _) = p.get(2).as_values().unwrap();
        assert_eq!(wire_total, replies.iter().map(|r| r.wire_ns).sum::<u64>());

        let mut p = TeeParams::new();
        core.invoke_pta(uuid, cmd::STATS, &mut p).unwrap();
        assert_eq!(p.get(0).as_values().unwrap().0, 3);
        core.invoke_pta(uuid, cmd::STOP, &mut TeeParams::new())
            .unwrap();
        core.invoke_pta(uuid, cmd::SHUTDOWN, &mut TeeParams::new())
            .unwrap();
    }

    #[test]
    fn bad_commands_and_parameters_are_rejected() {
        let (core, uuid) = registered_pta();
        assert!(core.invoke_pta(uuid, 99, &mut TeeParams::new()).is_err());
        // Batch capture without a memref.
        assert!(core
            .invoke_pta(uuid, cmd::CAPTURE_FRAME_BATCH, &mut TeeParams::new())
            .is_err());
        // Capture before configure/start.
        let mut p =
            TeeParams::new().with(0, TeeParam::MemRefInput(encode_frames_request(&[1usize])));
        assert!(core
            .invoke_pta(uuid, cmd::CAPTURE_FRAME_BATCH, &mut p)
            .is_err());
    }

    #[test]
    fn frame_batch_framing_round_trips_and_rejects_garbage() {
        let windows = vec![1usize, 4, 9];
        assert_eq!(
            decode_frames_request(&encode_frames_request(&windows)).unwrap(),
            windows
        );
        assert!(decode_frames_request(&[]).is_err());
        assert!(decode_frames_request(&[1, 2, 3]).is_err());
        assert!(decode_frame_windows_reply(&[0u8; 11]).is_err());
        // Header promising more pixels than present is rejected.
        let mut bogus = vec![0u8; 28];
        bogus[0] = 200;
        assert!(decode_frame_windows_reply(&bogus).is_err());
    }
}
