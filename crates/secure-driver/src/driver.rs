//! The capture-only I2S driver running inside OP-TEE.
//!
//! Functionally this mirrors the baseline driver's capture path, but every
//! cost lands in the *secure* world: interrupts arrive as secure (FIQ)
//! interrupts, the period bookkeeping and the encode step are secure CPU
//! time (with the secure compute penalty), and the I/O buffers live in the
//! TrustZone carve-out, so the untrusted OS cannot observe the raw audio.

use perisec_devices::audio::{AudioBuffer, AudioFormat};
use perisec_devices::codec::AudioEncoding;
use perisec_devices::dma::DmaChannel;
use perisec_devices::mic::Microphone;
use perisec_optee::{TeeError, TeeResult};
use perisec_tz::platform::Platform;
use perisec_tz::power::Component;
use perisec_tz::secure_mem::SecureBuf;
use perisec_tz::time::SimDuration;
use perisec_tz::world::World;

use serde::{Deserialize, Serialize};

/// The kernel-driver functions whose functionality was ported into this
/// secure driver — i.e. the minimal "record a sound" set identified by the
/// paper's tracing methodology (plan item 2). Everything else in the full
/// driver catalog stays in the normal world or is compiled out.
pub const PORTED_FUNCTIONS: &[&str] = &[
    // core init
    "tegra210_i2s_probe",
    "tegra210_i2s_init_regmap",
    "tegra210_i2s_clk_get",
    "tegra210_i2s_clk_enable",
    "tegra210_i2s_clk_disable",
    "tegra210_i2s_reset_control",
    // capture path
    "tegra210_i2s_startup_capture",
    "tegra210_i2s_hw_params",
    "tegra210_i2s_set_fmt",
    "tegra210_i2s_set_clock_rate",
    "tegra210_i2s_set_timing",
    "tegra210_i2s_rx_fifo_enable",
    "tegra210_i2s_rx_fifo_disable",
    "tegra210_i2s_trigger_start_capture",
    "tegra210_i2s_trigger_stop_capture",
    "tegra210_i2s_rx_irq_handler",
    "tegra210_i2s_read_fifo",
    "tegra210_i2s_capture_pointer",
    "tegra210_i2s_sample_convert",
    // audio-hub routing and machine-driver fixups used while configuring
    // the capture path
    "tegra210_ahub_route_setup",
    "tegra210_xbar_connect",
    "tegra_machine_hw_params_fixup",
    // dma glue
    "tegra210_admaif_hw_params",
    "tegra210_admaif_trigger",
    "tegra210_admaif_pcm_pointer",
    "tegra_adma_alloc_chan",
    "tegra_adma_prep_cyclic",
    "tegra_adma_issue_pending",
    "tegra_adma_terminate_all",
    "tegra_adma_irq_handler",
    "tegra_adma_period_complete",
];

/// Fixed secure-world CPU cost of the per-period bookkeeping.
const PER_PERIOD_DRIVER_OVERHEAD: SimDuration = SimDuration::from_micros(5);

/// Lifecycle state of the secure driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecureDriverState {
    /// Created, not configured.
    Idle,
    /// Configured: secure I/O buffers allocated, format fixed.
    Configured,
    /// Capturing.
    Running,
}

impl std::fmt::Display for SecureDriverState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SecureDriverState::Idle => "idle",
            SecureDriverState::Configured => "configured",
            SecureDriverState::Running => "running",
        };
        write!(f, "{s}")
    }
}

/// Accounting for one secure capture call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SecureCaptureReport {
    /// Time the audio occupied on the I2S wire.
    pub wire_time: SimDuration,
    /// Secure-world CPU time charged for moving, bookkeeping and encoding.
    pub cpu_time: SimDuration,
    /// Periods processed.
    pub periods: usize,
    /// Bytes produced after encoding.
    pub encoded_bytes: usize,
    /// Secure interrupts taken.
    pub secure_irqs: u64,
}

/// Cumulative statistics of the secure driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SecureDriverStats {
    /// Total frames captured.
    pub frames_captured: u64,
    /// Total periods processed.
    pub periods: u64,
    /// Total secure interrupts taken.
    pub secure_irqs: u64,
    /// Total encoded bytes handed to the PTA interface.
    pub bytes_delivered: u64,
}

/// One window of a batched capture: the encoded audio plus its accounting.
#[derive(Debug, Clone, Default)]
pub struct WindowCapture {
    /// Encoded audio of this window.
    pub encoded: Vec<u8>,
    /// Accounting for this window alone.
    pub report: SecureCaptureReport,
}

/// The secure, capture-only I2S driver.
pub struct SecureI2sDriver {
    platform: Platform,
    mic: Microphone,
    dma: DmaChannel,
    state: SecureDriverState,
    period_frames: usize,
    encoding: AudioEncoding,
    io_buffer: Option<SecureBuf>,
    stats: SecureDriverStats,
}

impl std::fmt::Debug for SecureI2sDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SecureI2sDriver")
            .field("state", &self.state)
            .field("period_frames", &self.period_frames)
            .field("stats", &self.stats)
            .finish()
    }
}

impl SecureI2sDriver {
    /// Creates the secure driver for `mic` on `platform`.
    pub fn new(platform: Platform, mic: Microphone) -> Self {
        SecureI2sDriver {
            platform,
            mic,
            dma: DmaChannel::default(),
            state: SecureDriverState::Idle,
            period_frames: 160,
            encoding: AudioEncoding::PcmLe16,
            io_buffer: None,
            stats: SecureDriverStats::default(),
        }
    }

    /// Current state.
    pub fn state(&self) -> SecureDriverState {
        self.state
    }

    /// Capture format of the underlying microphone.
    pub fn format(&self) -> AudioFormat {
        self.mic.format()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> SecureDriverStats {
        self.stats
    }

    /// Encoding applied before data leaves the driver.
    pub fn encoding(&self) -> AudioEncoding {
        self.encoding
    }

    /// Access to the microphone (used by scenario runners to swap the
    /// signal source between utterances).
    pub fn mic_mut(&mut self) -> &mut Microphone {
        &mut self.mic
    }

    /// Simulated physical address of the secure I/O buffer, if configured.
    /// Useful in tests that verify the buffer really lies in the TrustZone
    /// carve-out.
    pub fn io_buffer_addr(&self) -> Option<u64> {
        self.io_buffer.as_ref().map(|b| b.addr())
    }

    /// Configures capture: fixes the period size and encoding and allocates
    /// the secure I/O buffers (double-buffered periods) from the carve-out.
    ///
    /// # Errors
    ///
    /// * [`TeeError::BadParameters`] for a zero period.
    /// * [`TeeError::OutOfMemory`] if the secure carve-out cannot hold the
    ///   I/O buffers.
    pub fn configure(&mut self, period_frames: usize, encoding: AudioEncoding) -> TeeResult<()> {
        if period_frames == 0 {
            return Err(TeeError::BadParameters {
                reason: "period must be at least one frame".to_owned(),
            });
        }
        if self.state == SecureDriverState::Running {
            return Err(TeeError::BadParameters {
                reason: "cannot reconfigure a running capture stream".to_owned(),
            });
        }
        let period_bytes = period_frames * self.format().bytes_per_frame();
        let io = self
            .platform
            .secure_ram()
            .alloc(period_bytes * 2)
            .map_err(TeeError::from)?;
        // Charge the secure page allocations for the buffer.
        let pages = io.len().div_ceil(4096);
        self.platform.charge_cpu(
            World::Secure,
            self.platform.cost().secure_page_alloc * pages as u64,
        );
        self.platform
            .charge_cpu(World::Secure, SimDuration::from_micros(40));
        self.io_buffer = Some(io);
        self.period_frames = period_frames;
        self.encoding = encoding;
        self.mic.power_on();
        self.state = SecureDriverState::Configured;
        Ok(())
    }

    /// Starts the capture stream.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] unless the driver is configured.
    pub fn start(&mut self) -> TeeResult<()> {
        if self.state == SecureDriverState::Idle {
            return Err(TeeError::BadParameters {
                reason: "driver is not configured".to_owned(),
            });
        }
        self.platform
            .charge_cpu(World::Secure, SimDuration::from_micros(20));
        self.mic.start_capture().map_err(|e| TeeError::Generic {
            reason: e.to_string(),
        })?;
        self.state = SecureDriverState::Running;
        Ok(())
    }

    /// Stops the capture stream (back to configured).
    pub fn stop(&mut self) {
        if self.state == SecureDriverState::Running {
            self.platform
                .charge_cpu(World::Secure, SimDuration::from_micros(15));
            self.mic.stop_capture();
            self.state = SecureDriverState::Configured;
        }
    }

    /// Captures `periods` periods, encodes them, and returns the encoded
    /// bytes plus the capture accounting.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::BadParameters`] if the stream is not running, or
    /// a wrapped device error.
    pub fn capture_periods(&mut self, periods: usize) -> TeeResult<(Vec<u8>, SecureCaptureReport)> {
        if self.state != SecureDriverState::Running {
            return Err(TeeError::BadParameters {
                reason: format!("capture requested while driver is {}", self.state),
            });
        }
        let format = self.format();
        let mut report = SecureCaptureReport {
            periods,
            ..SecureCaptureReport::default()
        };
        let mut audio = AudioBuffer::silence(format, 0);
        let cpu_before = self.platform.clock().now();
        for _ in 0..periods {
            // 1. One period arrives over the wire.
            let (chunk, wire) =
                self.mic
                    .capture(self.period_frames)
                    .map_err(|e| TeeError::Generic {
                        reason: e.to_string(),
                    })?;
            report.wire_time += wire;
            self.platform
                .record_device_busy(Component::Microphone, wire);
            self.platform
                .record_device_busy(Component::I2sController, wire);

            // 2. DMA moves it into the secure I/O buffer.
            let io = self
                .io_buffer
                .as_mut()
                .expect("configured driver has io buffer");
            let transfer = self
                .dma
                .transfer(chunk.samples(), io.as_mut_slice())
                .map_err(|e| TeeError::Generic {
                    reason: e.to_string(),
                })?;
            self.platform
                .record_device_busy(Component::DmaEngine, transfer.bus_time);

            // 3. Secure (FIQ-routed) period interrupt plus bookkeeping.
            self.platform.stats().record_secure_irq();
            report.secure_irqs += 1;
            self.platform
                .charge_cpu(World::Secure, self.platform.cost().secure_irq_entry);
            self.platform
                .charge_cpu(World::Secure, PER_PERIOD_DRIVER_OVERHEAD);

            // 4. The driver "securely processes (e.g., encoding an audio
            //    signal)" the period: charged as secure compute over the
            //    period bytes.
            let encode_flops = (chunk.byte_len() as u64) / 2;
            self.platform.charge_compute(World::Secure, encode_flops);
            audio.append(&chunk);
        }
        let encoded = self.encoding.encode(&audio);
        report.encoded_bytes = encoded.len();
        report.cpu_time = self.platform.clock().elapsed_since(cpu_before);

        self.stats.frames_captured += audio.frames() as u64;
        self.stats.periods += periods as u64;
        self.stats.secure_irqs += report.secure_irqs;
        self.stats.bytes_delivered += encoded.len() as u64;
        Ok((encoded, report))
    }

    /// Captures several windows back to back in one driver call — the
    /// batch-aware entry point behind the PTA's `CAPTURE_BATCH` command.
    ///
    /// Each entry of `windows` is a window length in periods; the windows
    /// are captured in order and encoded independently, so the caller gets
    /// one encoded buffer per window (one per utterance in the pipelines)
    /// while paying a single driver dispatch for the whole batch. The
    /// second return value aggregates the accounting over the batch.
    ///
    /// # Errors
    ///
    /// Same as [`SecureI2sDriver::capture_periods`]; an empty batch or a
    /// zero-length window is rejected as [`TeeError::BadParameters`].
    pub fn capture_windows(
        &mut self,
        windows: &[usize],
    ) -> TeeResult<(Vec<WindowCapture>, SecureCaptureReport)> {
        if windows.is_empty() {
            return Err(TeeError::BadParameters {
                reason: "capture batch must name at least one window".to_owned(),
            });
        }
        if windows.contains(&0) {
            return Err(TeeError::BadParameters {
                reason: "capture windows must be at least one period".to_owned(),
            });
        }
        let mut captures = Vec::with_capacity(windows.len());
        let mut total = SecureCaptureReport::default();
        for &periods in windows {
            let (encoded, report) = self.capture_periods(periods)?;
            total.wire_time += report.wire_time;
            total.cpu_time += report.cpu_time;
            total.periods += report.periods;
            total.encoded_bytes += report.encoded_bytes;
            total.secure_irqs += report.secure_irqs;
            captures.push(WindowCapture { encoded, report });
        }
        Ok((captures, total))
    }

    /// Captures at least `duration` of audio (rounded up to whole periods).
    ///
    /// # Errors
    ///
    /// Same as [`SecureI2sDriver::capture_periods`].
    pub fn capture_duration(
        &mut self,
        duration: SimDuration,
    ) -> TeeResult<(Vec<u8>, SecureCaptureReport)> {
        let frames = self.format().frames_in(duration);
        let periods = frames.div_ceil(self.period_frames);
        self.capture_periods(periods.max(1))
    }

    /// Releases the secure I/O buffers and powers the microphone down.
    pub fn shutdown(&mut self) {
        self.stop();
        self.io_buffer = None;
        self.mic.power_off();
        self.state = SecureDriverState::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_devices::signal::SineSource;
    use perisec_tz::world::World;

    fn secure_driver(platform: &Platform) -> SecureI2sDriver {
        let mic =
            Microphone::speech_mic("secure-mic", Box::new(SineSource::new(440.0, 16_000, 0.6)))
                .unwrap();
        SecureI2sDriver::new(platform.clone(), mic)
    }

    #[test]
    fn configure_allocates_io_buffers_in_the_carveout() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        assert!(d.io_buffer_addr().is_none());
        d.configure(160, AudioEncoding::PcmLe16).unwrap();
        let addr = d.io_buffer_addr().unwrap();
        // The buffer must be inaccessible to the normal world.
        assert!(platform
            .check_access(addr, 64, World::Normal, false)
            .is_err());
        assert!(platform.check_access(addr, 64, World::Secure, true).is_ok());
        assert!(platform.secure_ram().bytes_in_use() >= 160 * 2 * 2);
    }

    #[test]
    fn capture_produces_encoded_audio_and_secure_costs() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        d.configure(160, AudioEncoding::PcmLe16).unwrap();
        d.start().unwrap();
        let (encoded, report) = d.capture_periods(10).unwrap();
        assert_eq!(report.periods, 10);
        assert_eq!(report.wire_time, SimDuration::from_millis(100));
        assert_eq!(encoded.len(), 1600 * 2);
        assert_eq!(report.secure_irqs, 10);
        assert!(report.cpu_time > SimDuration::ZERO);
        assert_eq!(platform.stats().snapshot().secure_irqs, 10);
        // Secure CPU energy was attributed.
        assert!(
            platform
                .energy_report()
                .component_mj(Component::CpuSecureWorld)
                > 0.0
        );
    }

    #[test]
    fn mulaw_encoding_halves_the_delivered_bytes() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        d.configure(160, AudioEncoding::MuLaw).unwrap();
        d.start().unwrap();
        let (encoded, _) = d.capture_periods(5).unwrap();
        assert_eq!(encoded.len(), 5 * 160);
    }

    #[test]
    fn capture_requires_configuration_and_start() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        assert!(d.start().is_err());
        assert!(d.capture_periods(1).is_err());
        d.configure(160, AudioEncoding::PcmLe16).unwrap();
        assert!(d.capture_periods(1).is_err());
        d.start().unwrap();
        assert!(d.capture_periods(1).is_ok());
        assert!(d.configure(320, AudioEncoding::PcmLe16).is_err());
        d.stop();
        assert!(d.configure(320, AudioEncoding::PcmLe16).is_ok());
    }

    #[test]
    fn configure_fails_when_secure_ram_is_exhausted() {
        // A platform with a tiny carve-out cannot hold the I/O buffers.
        let platform = Platform::builder().secure_ram_kib(1).build();
        let mut d = secure_driver(&platform);
        let err = d.configure(16_000, AudioEncoding::PcmLe16).unwrap_err();
        assert!(matches!(err, TeeError::OutOfMemory { .. }));
        assert_eq!(d.state(), SecureDriverState::Idle);
    }

    #[test]
    fn shutdown_releases_secure_memory() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        d.configure(160, AudioEncoding::PcmLe16).unwrap();
        let used = platform.secure_ram().bytes_in_use();
        assert!(used > 0);
        d.shutdown();
        assert!(platform.secure_ram().bytes_in_use() < used);
        assert_eq!(d.state(), SecureDriverState::Idle);
    }

    #[test]
    fn ported_functions_are_a_strict_subset_of_capture_needs() {
        // The ported set must not contain playback, mixer, USB or HDA
        // functionality.
        for f in PORTED_FUNCTIONS {
            assert!(!f.contains("playback"), "{f} should not be ported");
            assert!(!f.contains("tx_"), "{f} should not be ported");
            assert!(!f.contains("usb"), "{f} should not be ported");
            assert!(!f.contains("hda"), "{f} should not be ported");
            assert!(!f.contains("mixer"), "{f} should not be ported");
        }
        assert!(PORTED_FUNCTIONS.len() > 20);
    }

    #[test]
    fn cumulative_stats_accumulate() {
        let platform = Platform::jetson_agx_xavier();
        let mut d = secure_driver(&platform);
        d.configure(160, AudioEncoding::PcmLe16).unwrap();
        d.start().unwrap();
        d.capture_periods(3).unwrap();
        d.capture_periods(2).unwrap();
        let stats = d.stats();
        assert_eq!(stats.periods, 5);
        assert_eq!(stats.frames_captured, 5 * 160);
        assert_eq!(stats.secure_irqs, 5);
        assert_eq!(stats.bytes_delivered, 5 * 160 * 2);
    }
}
