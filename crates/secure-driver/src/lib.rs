//! # perisec-secure-driver — the peripheral drivers ported into the TEE
//!
//! The heart of the paper's design: "Our design ports the full driver
//! software into OP-TEE. As such, the secure hardware device driver
//! associated with the peripheral device reads this potentially sensitive
//! data into its I/O buffers. TrustZone provides an address space
//! controller capable of carving out secure RAM memory from which a secure
//! driver's I/O buffers are allocated." (§II)
//!
//! In practice (plan items 2 and 3) only the *minimal, traced* subset of
//! each driver is ported. This crate contains both peripheral modalities
//! the paper motivates:
//!
//! * [`driver`] — [`driver::SecureI2sDriver`], the capture-only audio
//!   driver that runs in the secure world, allocates its I/O buffers from
//!   the TrustZone carve-out, and charges secure-world costs for its work;
//! * [`pta`] — [`pta::I2sPta`], the pseudo trusted application that exposes
//!   the audio driver to userland TAs over GlobalPlatform-style commands,
//!   exactly as the paper's Fig. 1 steps 3–4 describe;
//! * [`camera`] — [`camera::SecureCameraDriver`], the capture-only camera
//!   driver (frames into secure memory, FIQ-routed frame interrupts);
//! * [`camera_pta`] — [`camera_pta::CameraPta`], the camera PTA with the
//!   batched `CAPTURE_FRAME_BATCH` command feeding the vision TA.
//!
//! The kernel-function sets these ports correspond to are exported as
//! [`driver::PORTED_FUNCTIONS`] and [`camera::PORTED_CAMERA_FUNCTIONS`];
//! `perisec-tcb` compares them against the full driver catalogs to
//! quantify the TCB reduction per modality.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod camera_pta;
pub mod driver;
pub mod pta;

pub use camera::{SecureCameraDriver, SecureFrameReport, PORTED_CAMERA_FUNCTIONS};
pub use camera_pta::{CameraPta, CAMERA_PTA_NAME};
pub use driver::{SecureCaptureReport, SecureDriverState, SecureI2sDriver, PORTED_FUNCTIONS};
pub use pta::{I2sPta, I2S_PTA_NAME};
