//! # perisec-secure-driver — the I2S driver ported into the TEE
//!
//! The heart of the paper's design: "Our design ports the full driver
//! software into OP-TEE. As such, the secure hardware device driver
//! associated with the peripheral device reads this potentially sensitive
//! data into its I/O buffers. TrustZone provides an address space
//! controller capable of carving out secure RAM memory from which a secure
//! driver's I/O buffers are allocated." (§II)
//!
//! In practice (plan items 2 and 3) only the *minimal, traced* subset of
//! the driver is ported. This crate contains:
//!
//! * [`driver`] — [`driver::SecureI2sDriver`], the capture-only driver that
//!   runs in the secure world, allocates its I/O buffers from the TrustZone
//!   carve-out, and charges secure-world costs for its work;
//! * [`pta`] — [`pta::I2sPta`], the pseudo trusted application that exposes
//!   the driver to userland TAs over GlobalPlatform-style commands, exactly
//!   as the paper's Fig. 1 steps 3–4 describe.
//!
//! The set of kernel functions this port corresponds to is exported as
//! [`driver::PORTED_FUNCTIONS`]; `perisec-tcb` compares it against the
//! full driver catalog and the kernel traces to quantify the TCB reduction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod pta;

pub use driver::{SecureCaptureReport, SecureDriverState, SecureI2sDriver, PORTED_FUNCTIONS};
pub use pta::{I2sPta, I2S_PTA_NAME};
