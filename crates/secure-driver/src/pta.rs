//! The I2S pseudo trusted application.
//!
//! "OP-TEE provides a secure interface called a pseudo trusted application
//! (PTA) which is a secure module with OS-level privileges that could serve
//! as an intermediary between a TA (no OS-level privileges) and low-level
//! code like device driver software." (§II)
//!
//! [`I2sPta`] is that intermediary: it owns the [`SecureI2sDriver`] and
//! exposes configure / start / capture / stop / stats commands to userland
//! TAs (the filter TA in `perisec-core`) and, for management purposes, to
//! the normal-world client.

use perisec_devices::codec::AudioEncoding;
use perisec_optee::{PseudoTa, PtaEnv, TaDescriptor, TeeError, TeeParam, TeeParams, TeeResult};

use crate::driver::{SecureDriverState, SecureI2sDriver, WindowCapture};

/// Registered name of the I2S PTA (its UUID is derived from this).
pub const I2S_PTA_NAME: &str = "perisec.i2s-pta";

/// Command identifiers understood by the PTA.
pub mod cmd {
    /// Configure capture: value param `a` = period frames, `b` = encoding
    /// (0 = PCM, 1 = µ-law).
    pub const CONFIGURE: u32 = 0;
    /// Start the capture stream.
    pub const START: u32 = 1;
    /// Capture: value param `a` = number of periods; returns the encoded
    /// audio in an output memref and `(wire_ns, cpu_ns)` in a value output.
    pub const CAPTURE: u32 = 2;
    /// Stop the capture stream.
    pub const STOP: u32 = 3;
    /// Query cumulative statistics: returns `(frames, bytes)` and
    /// `(periods, secure_irqs)` in two value outputs.
    pub const STATS: u32 = 4;
    /// Release all resources.
    pub const SHUTDOWN: u32 = 5;
    /// Batched capture: param 0 is an input memref encoding the window
    /// lengths (see [`super::pta::encode_windows_request`]); returns the
    /// per-window audio and accounting in an output memref (see
    /// [`super::pta::decode_windows_reply`]) and the aggregate
    /// `(wire_ns, cpu_ns)` in a value output.
    pub const CAPTURE_BATCH: u32 = 6;
}

/// Encodes a batch-capture request: each window length in periods as a
/// little-endian `u32`.
pub fn encode_windows_request(windows: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(windows.len() * 4);
    for &w in windows {
        out.extend_from_slice(&(w as u32).to_le_bytes());
    }
    out
}

/// Decodes a batch-capture request produced by [`encode_windows_request`].
///
/// # Errors
///
/// Returns [`TeeError::BadParameters`] for a ragged buffer.
pub fn decode_windows_request(data: &[u8]) -> TeeResult<Vec<usize>> {
    if data.is_empty() || !data.len().is_multiple_of(4) {
        return Err(TeeError::BadParameters {
            reason: "window list must be a non-empty multiple of 4 bytes".to_owned(),
        });
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")) as usize)
        .collect())
}

/// Encodes a batch-capture reply: per window, a `u32` length, the
/// `(wire_ns, cpu_ns)` accounting as two `u64`s, then the encoded audio.
pub fn encode_windows_reply(captures: &[WindowCapture]) -> Vec<u8> {
    let mut out = Vec::new();
    for capture in captures {
        out.extend_from_slice(&(capture.encoded.len() as u32).to_le_bytes());
        out.extend_from_slice(&capture.report.wire_time.as_nanos().to_le_bytes());
        out.extend_from_slice(&capture.report.cpu_time.as_nanos().to_le_bytes());
        out.extend_from_slice(&capture.encoded);
    }
    out
}

/// One decoded window of a batch-capture reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowReply {
    /// Encoded audio of the window.
    pub encoded: Vec<u8>,
    /// Time the window's audio occupied the I2S wire, in nanoseconds.
    pub wire_ns: u64,
    /// Secure CPU time charged for the window, in nanoseconds.
    pub cpu_ns: u64,
}

/// Decodes a batch-capture reply produced by [`encode_windows_reply`].
///
/// # Errors
///
/// Returns [`TeeError::Communication`] for truncated buffers.
pub fn decode_windows_reply(data: &[u8]) -> TeeResult<Vec<WindowReply>> {
    let mut out = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        if data.len() < offset + 20 {
            return Err(TeeError::Communication {
                reason: "batch reply header truncated".to_owned(),
            });
        }
        let len =
            u32::from_le_bytes(data[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let wire_ns =
            u64::from_le_bytes(data[offset + 4..offset + 12].try_into().expect("8 bytes"));
        let cpu_ns =
            u64::from_le_bytes(data[offset + 12..offset + 20].try_into().expect("8 bytes"));
        offset += 20;
        if data.len() < offset + len {
            return Err(TeeError::Communication {
                reason: "batch reply audio truncated".to_owned(),
            });
        }
        out.push(WindowReply {
            encoded: data[offset..offset + len].to_vec(),
            wire_ns,
            cpu_ns,
        });
        offset += len;
    }
    Ok(out)
}

/// The pseudo trusted application owning the secure I2S driver.
pub struct I2sPta {
    driver: SecureI2sDriver,
}

impl std::fmt::Debug for I2sPta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("I2sPta")
            .field("driver", &self.driver)
            .finish()
    }
}

impl I2sPta {
    /// Wraps a secure driver in the PTA interface.
    pub fn new(driver: SecureI2sDriver) -> Self {
        I2sPta { driver }
    }

    /// Read access to the wrapped driver (for tests and reports).
    pub fn driver(&self) -> &SecureI2sDriver {
        &self.driver
    }

    /// Mutable access to the wrapped driver (scenario runners use this to
    /// swap the microphone's signal source).
    pub fn driver_mut(&mut self) -> &mut SecureI2sDriver {
        &mut self.driver
    }
}

impl PseudoTa for I2sPta {
    fn descriptor(&self) -> TaDescriptor {
        TaDescriptor::new(I2S_PTA_NAME, 16, 64)
    }

    fn invoke(&mut self, _env: &mut PtaEnv<'_>, cmd: u32, params: &mut TeeParams) -> TeeResult<()> {
        match cmd {
            cmd::CONFIGURE => {
                let (period_frames, encoding) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "configure expects a value parameter".to_owned(),
                    })?;
                let encoding = match encoding {
                    0 => AudioEncoding::PcmLe16,
                    1 => AudioEncoding::MuLaw,
                    other => {
                        return Err(TeeError::BadParameters {
                            reason: format!("unknown encoding {other}"),
                        })
                    }
                };
                self.driver.configure(period_frames as usize, encoding)
            }
            cmd::START => self.driver.start(),
            cmd::CAPTURE => {
                let (periods, _) = params.get(0).as_values().ok_or(TeeError::BadParameters {
                    reason: "capture expects a value parameter".to_owned(),
                })?;
                let (encoded, report) = self.driver.capture_periods(periods as usize)?;
                params.set(1, TeeParam::MemRefOutput(encoded));
                params.set(
                    2,
                    TeeParam::ValueOutput {
                        a: report.wire_time.as_nanos(),
                        b: report.cpu_time.as_nanos(),
                    },
                );
                Ok(())
            }
            cmd::CAPTURE_BATCH => {
                let windows = decode_windows_request(params.get(0).as_memref().ok_or(
                    TeeError::BadParameters {
                        reason: "capture-batch expects a memref parameter".to_owned(),
                    },
                )?)?;
                let (captures, total) = self.driver.capture_windows(&windows)?;
                params.set(1, TeeParam::MemRefOutput(encode_windows_reply(&captures)));
                params.set(
                    2,
                    TeeParam::ValueOutput {
                        a: total.wire_time.as_nanos(),
                        b: total.cpu_time.as_nanos(),
                    },
                );
                Ok(())
            }
            cmd::STOP => {
                self.driver.stop();
                Ok(())
            }
            cmd::STATS => {
                let stats = self.driver.stats();
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: stats.frames_captured,
                        b: stats.bytes_delivered,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: stats.periods,
                        b: stats.secure_irqs,
                    },
                );
                Ok(())
            }
            cmd::SHUTDOWN => {
                self.driver.shutdown();
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("i2s pta command {other}"),
            }),
        }
    }
}

/// Convenience check used by callers that want to verify the PTA is usable
/// before streaming.
pub fn is_ready(state: SecureDriverState) -> bool {
    state == SecureDriverState::Running
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SecureI2sDriver;
    use perisec_devices::mic::Microphone;
    use perisec_devices::signal::SineSource;
    use perisec_optee::{Supplicant, TaUuid, TeeCore};
    use perisec_tz::platform::Platform;
    use std::sync::Arc;

    fn registered_pta() -> (Arc<TeeCore>, TaUuid) {
        let platform = Platform::jetson_agx_xavier();
        let core = TeeCore::boot(platform.clone(), Arc::new(Supplicant::new()));
        let mic =
            Microphone::speech_mic("mic", Box::new(SineSource::new(440.0, 16_000, 0.6))).unwrap();
        let pta = I2sPta::new(SecureI2sDriver::new(platform, mic));
        let uuid = core.register_pta(Box::new(pta)).unwrap();
        (core, uuid)
    }

    #[test]
    fn full_capture_flow_through_the_pta_interface() {
        let (core, uuid) = registered_pta();
        // Configure: 160-frame periods, PCM encoding.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 160, b: 0 });
        core.invoke_pta(uuid, cmd::CONFIGURE, &mut p).unwrap();
        core.invoke_pta(uuid, cmd::START, &mut TeeParams::new())
            .unwrap();

        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 5, b: 0 });
        core.invoke_pta(uuid, cmd::CAPTURE, &mut p).unwrap();
        let audio = p.get(1).as_memref().unwrap();
        assert_eq!(audio.len(), 5 * 160 * 2);
        let (wire_ns, cpu_ns) = p.get(2).as_values().unwrap();
        assert_eq!(wire_ns, 50_000_000);
        assert!(cpu_ns > 0);

        let mut p = TeeParams::new();
        core.invoke_pta(uuid, cmd::STATS, &mut p).unwrap();
        assert_eq!(p.get(0).as_values().unwrap().0, 5 * 160);
        core.invoke_pta(uuid, cmd::STOP, &mut TeeParams::new())
            .unwrap();
        core.invoke_pta(uuid, cmd::SHUTDOWN, &mut TeeParams::new())
            .unwrap();
    }

    #[test]
    fn bad_commands_and_parameters_are_rejected() {
        let (core, uuid) = registered_pta();
        assert!(core.invoke_pta(uuid, 99, &mut TeeParams::new()).is_err());
        // Configure without a value parameter.
        assert!(core
            .invoke_pta(uuid, cmd::CONFIGURE, &mut TeeParams::new())
            .is_err());
        // Unknown encoding.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 160, b: 9 });
        assert!(core.invoke_pta(uuid, cmd::CONFIGURE, &mut p).is_err());
        // Capture before start.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 1, b: 0 });
        assert!(core.invoke_pta(uuid, cmd::CAPTURE, &mut p).is_err());
    }

    #[test]
    fn batched_capture_returns_per_window_audio() {
        let (core, uuid) = registered_pta();
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 160, b: 0 });
        core.invoke_pta(uuid, cmd::CONFIGURE, &mut p).unwrap();
        core.invoke_pta(uuid, cmd::START, &mut TeeParams::new())
            .unwrap();

        let windows = [3usize, 5, 2];
        let mut p =
            TeeParams::new().with(0, TeeParam::MemRefInput(encode_windows_request(&windows)));
        core.invoke_pta(uuid, cmd::CAPTURE_BATCH, &mut p).unwrap();
        let replies = decode_windows_reply(p.get(1).as_memref().unwrap()).unwrap();
        assert_eq!(replies.len(), 3);
        for (reply, periods) in replies.iter().zip(windows) {
            assert_eq!(reply.encoded.len(), periods * 160 * 2);
            // 10 ms per 160-frame period at 16 kHz.
            assert_eq!(reply.wire_ns, periods as u64 * 10_000_000);
            assert!(reply.cpu_ns > 0);
        }
        let (wire_total, cpu_total) = p.get(2).as_values().unwrap();
        assert_eq!(wire_total, 10 * 10_000_000);
        assert_eq!(cpu_total, replies.iter().map(|r| r.cpu_ns).sum::<u64>());

        // The batch shows up in cumulative stats as 10 periods.
        let mut p = TeeParams::new();
        core.invoke_pta(uuid, cmd::STATS, &mut p).unwrap();
        assert_eq!(p.get(1).as_values().unwrap().0, 10);
    }

    #[test]
    fn batch_framing_round_trips_and_rejects_garbage() {
        let windows = vec![1usize, 7, 42];
        assert_eq!(
            decode_windows_request(&encode_windows_request(&windows)).unwrap(),
            windows
        );
        assert!(decode_windows_request(&[]).is_err());
        assert!(decode_windows_request(&[1, 2, 3]).is_err());
        assert!(decode_windows_reply(&[0u8; 7]).is_err());
    }

    #[test]
    fn readiness_helper_tracks_state() {
        assert!(!is_ready(SecureDriverState::Idle));
        assert!(!is_ready(SecureDriverState::Configured));
        assert!(is_ready(SecureDriverState::Running));
    }
}
