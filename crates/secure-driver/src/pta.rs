//! The I2S pseudo trusted application.
//!
//! "OP-TEE provides a secure interface called a pseudo trusted application
//! (PTA) which is a secure module with OS-level privileges that could serve
//! as an intermediary between a TA (no OS-level privileges) and low-level
//! code like device driver software." (§II)
//!
//! [`I2sPta`] is that intermediary: it owns the [`SecureI2sDriver`] and
//! exposes configure / start / capture / stop / stats commands to userland
//! TAs (the filter TA in `perisec-core`) and, for management purposes, to
//! the normal-world client.

use perisec_devices::codec::AudioEncoding;
use perisec_optee::{PseudoTa, PtaEnv, TaDescriptor, TeeError, TeeParam, TeeParams, TeeResult};

use crate::driver::{SecureDriverState, SecureI2sDriver};

/// Registered name of the I2S PTA (its UUID is derived from this).
pub const I2S_PTA_NAME: &str = "perisec.i2s-pta";

/// Command identifiers understood by the PTA.
pub mod cmd {
    /// Configure capture: value param `a` = period frames, `b` = encoding
    /// (0 = PCM, 1 = µ-law).
    pub const CONFIGURE: u32 = 0;
    /// Start the capture stream.
    pub const START: u32 = 1;
    /// Capture: value param `a` = number of periods; returns the encoded
    /// audio in an output memref and `(wire_ns, cpu_ns)` in a value output.
    pub const CAPTURE: u32 = 2;
    /// Stop the capture stream.
    pub const STOP: u32 = 3;
    /// Query cumulative statistics: returns `(frames, bytes)` and
    /// `(periods, secure_irqs)` in two value outputs.
    pub const STATS: u32 = 4;
    /// Release all resources.
    pub const SHUTDOWN: u32 = 5;
}

/// The pseudo trusted application owning the secure I2S driver.
pub struct I2sPta {
    driver: SecureI2sDriver,
}

impl std::fmt::Debug for I2sPta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("I2sPta").field("driver", &self.driver).finish()
    }
}

impl I2sPta {
    /// Wraps a secure driver in the PTA interface.
    pub fn new(driver: SecureI2sDriver) -> Self {
        I2sPta { driver }
    }

    /// Read access to the wrapped driver (for tests and reports).
    pub fn driver(&self) -> &SecureI2sDriver {
        &self.driver
    }

    /// Mutable access to the wrapped driver (scenario runners use this to
    /// swap the microphone's signal source).
    pub fn driver_mut(&mut self) -> &mut SecureI2sDriver {
        &mut self.driver
    }
}

impl PseudoTa for I2sPta {
    fn descriptor(&self) -> TaDescriptor {
        TaDescriptor::new(I2S_PTA_NAME, 16, 64)
    }

    fn invoke(&mut self, _env: &mut PtaEnv<'_>, cmd: u32, params: &mut TeeParams) -> TeeResult<()> {
        match cmd {
            cmd::CONFIGURE => {
                let (period_frames, encoding) =
                    params.get(0).as_values().ok_or(TeeError::BadParameters {
                        reason: "configure expects a value parameter".to_owned(),
                    })?;
                let encoding = match encoding {
                    0 => AudioEncoding::PcmLe16,
                    1 => AudioEncoding::MuLaw,
                    other => {
                        return Err(TeeError::BadParameters {
                            reason: format!("unknown encoding {other}"),
                        })
                    }
                };
                self.driver.configure(period_frames as usize, encoding)
            }
            cmd::START => self.driver.start(),
            cmd::CAPTURE => {
                let (periods, _) = params.get(0).as_values().ok_or(TeeError::BadParameters {
                    reason: "capture expects a value parameter".to_owned(),
                })?;
                let (encoded, report) = self.driver.capture_periods(periods as usize)?;
                params.set(1, TeeParam::MemRefOutput(encoded));
                params.set(
                    2,
                    TeeParam::ValueOutput {
                        a: report.wire_time.as_nanos(),
                        b: report.cpu_time.as_nanos(),
                    },
                );
                Ok(())
            }
            cmd::STOP => {
                self.driver.stop();
                Ok(())
            }
            cmd::STATS => {
                let stats = self.driver.stats();
                params.set(
                    0,
                    TeeParam::ValueOutput {
                        a: stats.frames_captured,
                        b: stats.bytes_delivered,
                    },
                );
                params.set(
                    1,
                    TeeParam::ValueOutput {
                        a: stats.periods,
                        b: stats.secure_irqs,
                    },
                );
                Ok(())
            }
            cmd::SHUTDOWN => {
                self.driver.shutdown();
                Ok(())
            }
            other => Err(TeeError::ItemNotFound {
                what: format!("i2s pta command {other}"),
            }),
        }
    }
}

/// Convenience check used by callers that want to verify the PTA is usable
/// before streaming.
pub fn is_ready(state: SecureDriverState) -> bool {
    state == SecureDriverState::Running
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::SecureI2sDriver;
    use perisec_devices::mic::Microphone;
    use perisec_devices::signal::SineSource;
    use perisec_optee::{Supplicant, TaUuid, TeeCore};
    use perisec_tz::platform::Platform;
    use std::sync::Arc;

    fn registered_pta() -> (Arc<TeeCore>, TaUuid) {
        let platform = Platform::jetson_agx_xavier();
        let core = TeeCore::boot(platform.clone(), Arc::new(Supplicant::new()));
        let mic = Microphone::speech_mic("mic", Box::new(SineSource::new(440.0, 16_000, 0.6))).unwrap();
        let pta = I2sPta::new(SecureI2sDriver::new(platform, mic));
        let uuid = core.register_pta(Box::new(pta)).unwrap();
        (core, uuid)
    }

    #[test]
    fn full_capture_flow_through_the_pta_interface() {
        let (core, uuid) = registered_pta();
        // Configure: 160-frame periods, PCM encoding.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 160, b: 0 });
        core.invoke_pta(uuid, cmd::CONFIGURE, &mut p).unwrap();
        core.invoke_pta(uuid, cmd::START, &mut TeeParams::new()).unwrap();

        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 5, b: 0 });
        core.invoke_pta(uuid, cmd::CAPTURE, &mut p).unwrap();
        let audio = p.get(1).as_memref().unwrap();
        assert_eq!(audio.len(), 5 * 160 * 2);
        let (wire_ns, cpu_ns) = p.get(2).as_values().unwrap();
        assert_eq!(wire_ns, 50_000_000);
        assert!(cpu_ns > 0);

        let mut p = TeeParams::new();
        core.invoke_pta(uuid, cmd::STATS, &mut p).unwrap();
        assert_eq!(p.get(0).as_values().unwrap().0, 5 * 160);
        core.invoke_pta(uuid, cmd::STOP, &mut TeeParams::new()).unwrap();
        core.invoke_pta(uuid, cmd::SHUTDOWN, &mut TeeParams::new()).unwrap();
    }

    #[test]
    fn bad_commands_and_parameters_are_rejected() {
        let (core, uuid) = registered_pta();
        assert!(core.invoke_pta(uuid, 99, &mut TeeParams::new()).is_err());
        // Configure without a value parameter.
        assert!(core
            .invoke_pta(uuid, cmd::CONFIGURE, &mut TeeParams::new())
            .is_err());
        // Unknown encoding.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 160, b: 9 });
        assert!(core.invoke_pta(uuid, cmd::CONFIGURE, &mut p).is_err());
        // Capture before start.
        let mut p = TeeParams::new().with(0, TeeParam::ValueInput { a: 1, b: 0 });
        assert!(core.invoke_pta(uuid, cmd::CAPTURE, &mut p).is_err());
    }

    #[test]
    fn readiness_helper_tracks_state() {
        assert!(!is_ready(SecureDriverState::Idle));
        assert!(!is_ready(SecureDriverState::Configured));
        assert!(is_ready(SecureDriverState::Running));
    }
}
