//! Trace analysis: which functions does each task actually need?

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use perisec_kernel::catalog::{DriverCatalog, FeatureGroup};
use perisec_kernel::trace::TraceLog;

/// The minimal function set of one traced task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTcb {
    /// Task label (as recorded by the tracer).
    pub task: String,
    /// Functions the task executed.
    pub functions: BTreeSet<String>,
    /// Lines of code of those functions.
    pub loc: u64,
    /// Feature groups touched by the task.
    pub groups: BTreeSet<FeatureGroup>,
}

impl TaskTcb {
    /// Fraction of the full code base this task needs.
    pub fn loc_fraction(&self, total_loc: u64) -> f64 {
        if total_loc == 0 {
            0.0
        } else {
            self.loc as f64 / total_loc as f64
        }
    }

    /// Builds the minimal set a *statically declared* secure port implies.
    ///
    /// The audio path derives its minimal set from kernel traces; the
    /// camera path has no baseline in-kernel driver to trace, so its
    /// secure port (`PORTED_CAMERA_FUNCTIONS`) declares the set directly.
    /// This constructor turns such a declaration into the same [`TaskTcb`]
    /// shape the trace analysis produces, so both modalities appear in one
    /// TCB report. Functions missing from `catalog` contribute no LoC and
    /// no group (the caller can detect them via
    /// [`TcbAnalysis::unknown_functions`] after
    /// [`TcbAnalysis::add_static_task`]).
    pub fn from_ported(catalog: &DriverCatalog, task: impl Into<String>, ported: &[&str]) -> Self {
        let functions: BTreeSet<String> = ported.iter().map(|s| (*s).to_owned()).collect();
        let mut loc = 0u64;
        let mut groups = BTreeSet::new();
        for f in &functions {
            if let Some(entry) = catalog.function(f) {
                loc += entry.loc as u64;
                groups.insert(entry.group);
            }
        }
        TaskTcb {
            task: task.into(),
            functions,
            loc,
            groups,
        }
    }
}

/// Analysis of a trace log against the full driver catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcbAnalysis {
    /// Total functions in the catalog.
    pub total_functions: usize,
    /// Total lines of code in the catalog.
    pub total_loc: u64,
    /// Per-task minimal sets.
    pub tasks: Vec<TaskTcb>,
    /// Functions traced but missing from the catalog (should be empty; a
    /// non-empty list indicates the catalog is stale).
    pub unknown_functions: BTreeSet<String>,
}

impl TcbAnalysis {
    /// Analyzes `log` against `catalog`.
    pub fn analyze(catalog: &DriverCatalog, log: &TraceLog) -> Self {
        let mut tasks = Vec::new();
        let mut unknown = BTreeSet::new();
        for task in log.tasks() {
            let functions = log.functions_for_task(&task);
            let mut loc = 0u64;
            let mut groups = BTreeSet::new();
            for f in &functions {
                match catalog.function(f) {
                    Some(entry) => {
                        loc += entry.loc as u64;
                        groups.insert(entry.group);
                    }
                    None => {
                        unknown.insert(f.clone());
                    }
                }
            }
            tasks.push(TaskTcb {
                task,
                functions,
                loc,
                groups,
            });
        }
        tasks.sort_by(|a, b| a.task.cmp(&b.task));
        TcbAnalysis {
            total_functions: catalog.len(),
            total_loc: catalog.total_loc(),
            tasks,
            unknown_functions: unknown,
        }
    }

    /// Appends a statically-declared task (e.g. the camera port built by
    /// [`TaskTcb::from_ported`]) to the analysis, keeping the task list
    /// sorted. Functions the catalog does not know are recorded in
    /// [`TcbAnalysis::unknown_functions`], exactly as for traced tasks —
    /// a non-empty set means the port and the catalog have drifted apart.
    pub fn add_static_task(&mut self, catalog: &DriverCatalog, task: TaskTcb) {
        for f in &task.functions {
            if catalog.function(f).is_none() {
                self.unknown_functions.insert(f.clone());
            }
        }
        self.tasks.push(task);
        self.tasks.sort_by(|a, b| a.task.cmp(&b.task));
    }

    /// The minimal set for one task, if it was traced.
    pub fn task(&self, name: &str) -> Option<&TaskTcb> {
        self.tasks.iter().find(|t| t.task == name)
    }

    /// The union of the minimal sets of the given tasks (what must be
    /// ported if the TEE is to support all of them).
    pub fn union_of(&self, task_names: &[&str]) -> BTreeSet<String> {
        self.tasks
            .iter()
            .filter(|t| task_names.contains(&t.task.as_str()))
            .flat_map(|t| t.functions.iter().cloned())
            .collect()
    }

    /// LoC reduction factor for a task (total / task).
    pub fn reduction_factor(&self, task_name: &str) -> f64 {
        match self.task(task_name) {
            Some(t) if t.loc > 0 => self.total_loc as f64 / t.loc as f64,
            _ => 0.0,
        }
    }

    /// Verifies that `ported` (e.g. the secure driver's
    /// `PORTED_FUNCTIONS`) covers everything the named task was observed to
    /// execute. Returns the missing functions (empty = full coverage).
    pub fn coverage_gap(&self, task_name: &str, ported: &[&str]) -> BTreeSet<String> {
        let ported: BTreeSet<&str> = ported.iter().copied().collect();
        match self.task(task_name) {
            Some(t) => t
                .functions
                .iter()
                .filter(|f| !ported.contains(f.as_str()))
                .cloned()
                .collect(),
            None => BTreeSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_devices::mic::Microphone;
    use perisec_devices::signal::SilenceSource;
    use perisec_kernel::i2s_driver::BaselineI2sDriver;
    use perisec_kernel::pcm::PcmHwParams;
    use perisec_kernel::trace::FunctionTracer;
    use perisec_tz::platform::Platform;

    fn traced_driver_log() -> (DriverCatalog, TraceLog) {
        let platform = Platform::jetson_agx_xavier();
        let mic = Microphone::speech_mic("mic", Box::new(SilenceSource)).unwrap();
        let tracer = FunctionTracer::new();
        tracer.enable();
        let mut driver = BaselineI2sDriver::new(platform, mic, tracer.clone());
        driver.probe().unwrap();

        tracer.begin_task("record");
        driver.configure(PcmHwParams::voice_default()).unwrap();
        driver.start().unwrap();
        driver.capture_periods(3).unwrap();
        driver.stop();
        tracer.end_task();

        tracer.begin_task("playback");
        driver.run_playback_task();
        tracer.end_task();

        tracer.begin_task("mixer");
        driver.run_mixer_task();
        tracer.end_task();

        (DriverCatalog::tegra_audio_stack(), tracer.log())
    }

    #[test]
    fn record_task_needs_a_small_fraction_of_the_driver() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        assert!(analysis.unknown_functions.is_empty());
        let record = analysis.task("record").unwrap();
        assert!(record.functions.len() < catalog.len() / 2);
        assert!(record.loc_fraction(analysis.total_loc) < 0.35);
        assert!(analysis.reduction_factor("record") > 2.5);
        assert!(record.groups.contains(&FeatureGroup::I2sCapture));
        assert!(!record.groups.contains(&FeatureGroup::UsbAudio));
    }

    #[test]
    fn tasks_have_distinct_minimal_sets() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        let record = analysis.task("record").unwrap();
        let playback = analysis.task("playback").unwrap();
        assert!(
            record.functions.is_disjoint(&playback.functions)
                || record.functions != playback.functions
        );
        let union = analysis.union_of(&["record", "playback"]);
        assert!(union.len() >= record.functions.len());
        assert!(union.len() >= playback.functions.len());
        assert!(analysis.task("nonexistent").is_none());
        assert_eq!(analysis.reduction_factor("nonexistent"), 0.0);
    }

    #[test]
    fn ported_functions_cover_the_record_task() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        let gap = analysis.coverage_gap("record", perisec_secure_driver::PORTED_FUNCTIONS);
        assert!(
            gap.is_empty(),
            "secure driver port misses traced functions: {gap:?}"
        );
    }

    #[test]
    fn camera_port_accounts_as_a_static_task() {
        let camera_catalog = DriverCatalog::tegra_camera_stack();
        let task = TaskTcb::from_ported(
            &camera_catalog,
            "record-frames",
            perisec_secure_driver::PORTED_CAMERA_FUNCTIONS,
        );
        // The declared port is known to the catalog and touches only the
        // capture path plus core init — never ISP or the media controller.
        assert!(task.loc > 0);
        assert!(task.groups.contains(&FeatureGroup::CameraCapture));
        assert!(!task.groups.contains(&FeatureGroup::CameraIsp));
        assert!(!task.groups.contains(&FeatureGroup::CameraMediaController));
        assert!(
            task.loc_fraction(camera_catalog.total_loc()) < 0.5,
            "camera port is {:.2} of the camera stack",
            task.loc_fraction(camera_catalog.total_loc())
        );
    }

    #[test]
    fn static_tasks_join_the_traced_analysis() {
        let (_, log) = traced_driver_log();
        // Analyze against the combined audio+camera code base, then fold
        // the camera port in as a static task.
        let av = DriverCatalog::tegra_av_stack();
        let mut analysis = TcbAnalysis::analyze(&av, &log);
        let camera_task = TaskTcb::from_ported(
            &av,
            "record-frames",
            perisec_secure_driver::PORTED_CAMERA_FUNCTIONS,
        );
        analysis.add_static_task(&av, camera_task);
        assert!(analysis.unknown_functions.is_empty());
        let record = analysis.task("record").unwrap();
        let frames = analysis.task("record-frames").unwrap();
        assert!(record.functions.is_disjoint(&frames.functions));
        // The union — what a TEE serving both modalities must port — is
        // still a small fraction of the combined code base.
        let union = analysis.union_of(&["record", "record-frames"]);
        let union_loc = av.loc_of(union.iter().map(String::as_str));
        assert!(
            (union_loc as f64) < 0.35 * av.total_loc() as f64,
            "both-modality port is {union_loc} of {} loc",
            av.total_loc()
        );
    }

    #[test]
    fn static_tasks_report_unknown_functions() {
        let catalog = DriverCatalog::tegra_camera_stack();
        let mut analysis =
            TcbAnalysis::analyze(&catalog, &perisec_kernel::trace::TraceLog::default());
        let task = TaskTcb::from_ported(&catalog, "ghost", &["not_in_catalog"]);
        analysis.add_static_task(&catalog, task);
        assert!(analysis.unknown_functions.contains("not_in_catalog"));
    }

    #[test]
    fn unknown_functions_are_reported_not_dropped() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let tracer = FunctionTracer::new();
        tracer.enable();
        tracer.begin_task("record");
        tracer.record(
            "some_function_not_in_catalog",
            perisec_tz::time::SimInstant::EPOCH,
        );
        tracer.end_task();
        let analysis = TcbAnalysis::analyze(&catalog, &tracer.log());
        assert_eq!(analysis.unknown_functions.len(), 1);
    }
}
