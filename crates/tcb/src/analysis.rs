//! Trace analysis: which functions does each task actually need?

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use perisec_kernel::catalog::{DriverCatalog, FeatureGroup};
use perisec_kernel::trace::TraceLog;

/// The minimal function set of one traced task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTcb {
    /// Task label (as recorded by the tracer).
    pub task: String,
    /// Functions the task executed.
    pub functions: BTreeSet<String>,
    /// Lines of code of those functions.
    pub loc: u64,
    /// Feature groups touched by the task.
    pub groups: BTreeSet<FeatureGroup>,
}

impl TaskTcb {
    /// Fraction of the full code base this task needs.
    pub fn loc_fraction(&self, total_loc: u64) -> f64 {
        if total_loc == 0 {
            0.0
        } else {
            self.loc as f64 / total_loc as f64
        }
    }
}

/// Analysis of a trace log against the full driver catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcbAnalysis {
    /// Total functions in the catalog.
    pub total_functions: usize,
    /// Total lines of code in the catalog.
    pub total_loc: u64,
    /// Per-task minimal sets.
    pub tasks: Vec<TaskTcb>,
    /// Functions traced but missing from the catalog (should be empty; a
    /// non-empty list indicates the catalog is stale).
    pub unknown_functions: BTreeSet<String>,
}

impl TcbAnalysis {
    /// Analyzes `log` against `catalog`.
    pub fn analyze(catalog: &DriverCatalog, log: &TraceLog) -> Self {
        let mut tasks = Vec::new();
        let mut unknown = BTreeSet::new();
        for task in log.tasks() {
            let functions = log.functions_for_task(&task);
            let mut loc = 0u64;
            let mut groups = BTreeSet::new();
            for f in &functions {
                match catalog.function(f) {
                    Some(entry) => {
                        loc += entry.loc as u64;
                        groups.insert(entry.group);
                    }
                    None => {
                        unknown.insert(f.clone());
                    }
                }
            }
            tasks.push(TaskTcb {
                task,
                functions,
                loc,
                groups,
            });
        }
        tasks.sort_by(|a, b| a.task.cmp(&b.task));
        TcbAnalysis {
            total_functions: catalog.len(),
            total_loc: catalog.total_loc(),
            tasks,
            unknown_functions: unknown,
        }
    }

    /// The minimal set for one task, if it was traced.
    pub fn task(&self, name: &str) -> Option<&TaskTcb> {
        self.tasks.iter().find(|t| t.task == name)
    }

    /// The union of the minimal sets of the given tasks (what must be
    /// ported if the TEE is to support all of them).
    pub fn union_of(&self, task_names: &[&str]) -> BTreeSet<String> {
        self.tasks
            .iter()
            .filter(|t| task_names.contains(&t.task.as_str()))
            .flat_map(|t| t.functions.iter().cloned())
            .collect()
    }

    /// LoC reduction factor for a task (total / task).
    pub fn reduction_factor(&self, task_name: &str) -> f64 {
        match self.task(task_name) {
            Some(t) if t.loc > 0 => self.total_loc as f64 / t.loc as f64,
            _ => 0.0,
        }
    }

    /// Verifies that `ported` (e.g. the secure driver's
    /// `PORTED_FUNCTIONS`) covers everything the named task was observed to
    /// execute. Returns the missing functions (empty = full coverage).
    pub fn coverage_gap(&self, task_name: &str, ported: &[&str]) -> BTreeSet<String> {
        let ported: BTreeSet<&str> = ported.iter().copied().collect();
        match self.task(task_name) {
            Some(t) => t
                .functions
                .iter()
                .filter(|f| !ported.contains(f.as_str()))
                .cloned()
                .collect(),
            None => BTreeSet::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_devices::mic::Microphone;
    use perisec_devices::signal::SilenceSource;
    use perisec_kernel::i2s_driver::BaselineI2sDriver;
    use perisec_kernel::pcm::PcmHwParams;
    use perisec_kernel::trace::FunctionTracer;
    use perisec_tz::platform::Platform;

    fn traced_driver_log() -> (DriverCatalog, TraceLog) {
        let platform = Platform::jetson_agx_xavier();
        let mic = Microphone::speech_mic("mic", Box::new(SilenceSource)).unwrap();
        let tracer = FunctionTracer::new();
        tracer.enable();
        let mut driver = BaselineI2sDriver::new(platform, mic, tracer.clone());
        driver.probe().unwrap();

        tracer.begin_task("record");
        driver.configure(PcmHwParams::voice_default()).unwrap();
        driver.start().unwrap();
        driver.capture_periods(3).unwrap();
        driver.stop();
        tracer.end_task();

        tracer.begin_task("playback");
        driver.run_playback_task();
        tracer.end_task();

        tracer.begin_task("mixer");
        driver.run_mixer_task();
        tracer.end_task();

        (DriverCatalog::tegra_audio_stack(), tracer.log())
    }

    #[test]
    fn record_task_needs_a_small_fraction_of_the_driver() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        assert!(analysis.unknown_functions.is_empty());
        let record = analysis.task("record").unwrap();
        assert!(record.functions.len() < catalog.len() / 2);
        assert!(record.loc_fraction(analysis.total_loc) < 0.35);
        assert!(analysis.reduction_factor("record") > 2.5);
        assert!(record.groups.contains(&FeatureGroup::I2sCapture));
        assert!(!record.groups.contains(&FeatureGroup::UsbAudio));
    }

    #[test]
    fn tasks_have_distinct_minimal_sets() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        let record = analysis.task("record").unwrap();
        let playback = analysis.task("playback").unwrap();
        assert!(
            record.functions.is_disjoint(&playback.functions)
                || record.functions != playback.functions
        );
        let union = analysis.union_of(&["record", "playback"]);
        assert!(union.len() >= record.functions.len());
        assert!(union.len() >= playback.functions.len());
        assert!(analysis.task("nonexistent").is_none());
        assert_eq!(analysis.reduction_factor("nonexistent"), 0.0);
    }

    #[test]
    fn ported_functions_cover_the_record_task() {
        let (catalog, log) = traced_driver_log();
        let analysis = TcbAnalysis::analyze(&catalog, &log);
        let gap = analysis.coverage_gap("record", perisec_secure_driver::PORTED_FUNCTIONS);
        assert!(
            gap.is_empty(),
            "secure driver port misses traced functions: {gap:?}"
        );
    }

    #[test]
    fn unknown_functions_are_reported_not_dropped() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let tracer = FunctionTracer::new();
        tracer.enable();
        tracer.begin_task("record");
        tracer.record(
            "some_function_not_in_catalog",
            perisec_tz::time::SimInstant::EPOCH,
        );
        tracer.end_task();
        let analysis = TcbAnalysis::analyze(&catalog, &tracer.log());
        assert_eq!(analysis.unknown_functions.len(), 1);
    }
}
