//! # perisec-tcb — trusted-computing-base minimization
//!
//! Plan item 2 of the paper: a kernel tracing mechanism logs which driver
//! functions run for a given task; the logs are analyzed "to identify a
//! minimal set of executed functions necessary for the task to complete",
//! and conditional compilation excludes everything else from the OP-TEE
//! image.
//!
//! This crate is the analysis half of that workflow:
//!
//! * [`analysis`] — combine a [`perisec_kernel::DriverCatalog`] with a
//!   [`perisec_kernel::TraceLog`] to compute per-task minimal function
//!   sets and the lines-of-code reduction;
//! * [`prune`] — build a pruned "driver image" (the set of functions that
//!   survive conditional compilation) and estimate the resulting OP-TEE
//!   image size;
//! * [`memory`] — secure-RAM residency accounting for co-resident TA
//!   sessions, including the model-dedup saving the multi-core scheduler
//!   relies on;
//! * [`report`] — serializable reports and markdown tables for
//!   EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod memory;
pub mod prune;
pub mod report;

pub use analysis::{TaskTcb, TcbAnalysis};
pub use memory::SecureRamFootprint;
pub use prune::{PruneStrategy, PrunedImage};
pub use report::TcbReport;
