//! Secure-memory accounting: what co-resident TA sessions cost the
//! TrustZone carve-out, with and without model deduplication.
//!
//! The paper's §V names the small secure carve-out as a core limitation
//! and proposes smaller ML models as the mitigation. The multi-core TEE
//! scheduler generalizes that mitigation to model *sharing*: when several
//! TA sessions on one carve-out host the same read-only weights
//! ([`perisec_tz::secure_mem::SecureRam::reserve_shared`]), the weights
//! are charged once. This module turns the allocator's counters into the
//! serializable report experiment E14 prints.

use serde::{Deserialize, Serialize};

use perisec_tz::secure_mem::SecureRam;

/// Snapshot of a secure carve-out's occupancy, including the saving that
/// content-keyed shared reservations produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecureRamFootprint {
    /// Total carve-out capacity in bytes.
    pub capacity_bytes: u64,
    /// Bytes currently allocated (with dedup in effect).
    pub in_use_bytes: u64,
    /// Bytes that co-resident sessions would additionally occupy had every
    /// session reserved its own copy of the shared weights.
    pub dedup_saved_bytes: u64,
    /// Number of reservations served from an existing shared allocation.
    pub dedup_hits: u64,
    /// Distinct live shared allocations (model weight sets in residence).
    pub shared_models: u64,
}

impl SecureRamFootprint {
    /// Measures a carve-out's current occupancy and dedup counters.
    pub fn measure(ram: &SecureRam) -> Self {
        SecureRamFootprint {
            capacity_bytes: ram.capacity() as u64,
            in_use_bytes: ram.bytes_in_use() as u64,
            dedup_saved_bytes: ram.dedup_saved_bytes(),
            dedup_hits: ram.dedup_hits(),
            shared_models: ram.shared_reservation_count() as u64,
        }
    }

    /// What the same residency would cost without dedup.
    pub fn bytes_without_dedup(&self) -> u64 {
        self.in_use_bytes + self.dedup_saved_bytes
    }

    /// Occupancy as a fraction of the carve-out.
    pub fn occupancy(&self) -> f64 {
        if self.capacity_bytes == 0 {
            return 0.0;
        }
        self.in_use_bytes as f64 / self.capacity_bytes as f64
    }

    /// Saving fraction relative to the non-deduplicated residency.
    pub fn saving_fraction(&self) -> f64 {
        let without = self.bytes_without_dedup();
        if without == 0 {
            return 0.0;
        }
        self.dedup_saved_bytes as f64 / without as f64
    }

    /// One markdown table row: `| sessions | with | without | saved |`
    /// (the caller prints the header and supplies the session count).
    pub fn to_markdown_row(&self, sessions: usize) -> String {
        format!(
            "| {sessions} | {} | {} | {} ({:.0}%) |",
            self.in_use_bytes / 1024,
            self.bytes_without_dedup() / 1024,
            self.dedup_saved_bytes / 1024,
            100.0 * self.saving_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_tz::stats::TzStats;

    #[test]
    fn footprint_reports_dedup_savings() {
        let ram = SecureRam::new(0xF000_0000, 1 << 20, TzStats::new());
        let _private = ram.alloc(64 * 1024).unwrap();
        let a = ram.reserve_shared(0xCAFE, 128 * 1024).unwrap();
        let _b = ram.reserve_shared(0xCAFE, 128 * 1024).unwrap();
        let _c = ram.reserve_shared(0xCAFE, 128 * 1024).unwrap();
        assert_eq!(a.handle_count(), 3);

        let fp = SecureRamFootprint::measure(&ram);
        assert_eq!(fp.capacity_bytes, 1 << 20);
        assert!(fp.in_use_bytes >= (64 + 128) * 1024);
        assert_eq!(fp.dedup_saved_bytes, 2 * 128 * 1024);
        assert_eq!(fp.dedup_hits, 2);
        assert_eq!(fp.shared_models, 1);
        assert_eq!(fp.bytes_without_dedup(), fp.in_use_bytes + 2 * 128 * 1024);
        assert!(fp.occupancy() > 0.0 && fp.occupancy() < 1.0);
        assert!(fp.saving_fraction() > 0.4);
        let row = fp.to_markdown_row(3);
        assert!(row.starts_with("| 3 |"));
    }

    #[test]
    fn empty_pool_reports_zeroes() {
        let ram = SecureRam::new(0xF000_0000, 4096, TzStats::new());
        let fp = SecureRamFootprint::measure(&ram);
        assert_eq!(fp.in_use_bytes, 0);
        assert_eq!(fp.bytes_without_dedup(), 0);
        assert_eq!(fp.occupancy(), 0.0);
        assert_eq!(fp.saving_fraction(), 0.0);
    }
}
