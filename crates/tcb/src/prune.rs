//! Driver pruning and OP-TEE image sizing.
//!
//! Models the paper's "conditional compiler directives to selectively
//! exclude driver functions which are not required for the task, from
//! being compiled and included in the final OP-TEE image".

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use perisec_kernel::catalog::{DriverCatalog, FeatureGroup};

/// How the keep-set is chosen.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// Keep everything (port the full driver, the naive approach).
    KeepAll,
    /// Keep exactly the functions observed in the trace of the given task
    /// (the paper's approach).
    TracedFunctions {
        /// The traced function names to keep.
        functions: BTreeSet<String>,
    },
    /// Keep whole feature groups (coarser-grained conditional compilation).
    FeatureGroups {
        /// The groups to keep.
        groups: BTreeSet<FeatureGroup>,
    },
}

/// A pruned driver image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedImage {
    /// Strategy that produced the image.
    pub strategy_name: String,
    /// Functions included in the image.
    pub functions: BTreeSet<String>,
    /// Lines of code included.
    pub loc: u64,
    /// Estimated compiled size of the driver portion in bytes.
    pub driver_bytes: u64,
    /// Estimated total OP-TEE image size in bytes (core + driver).
    pub image_bytes: u64,
}

/// Average compiled bytes per line of driver C code (empirically ~12–20 for
/// arm64 kernel-style code; we use a fixed mid-range value, the comparisons
/// are relative anyway).
const BYTES_PER_LOC: u64 = 16;

/// Size of the OP-TEE core itself (os kernel, crypto, TA loader) before any
/// driver is added — in the right ballpark for a release build.
const OPTEE_CORE_BYTES: u64 = 450 * 1024;

impl PrunedImage {
    /// Builds the image for `strategy` over `catalog`.
    pub fn build(catalog: &DriverCatalog, strategy: &PruneStrategy) -> Self {
        let (name, functions): (String, BTreeSet<String>) = match strategy {
            PruneStrategy::KeepAll => (
                "keep-all".to_owned(),
                catalog.iter().map(|f| f.name.clone()).collect(),
            ),
            PruneStrategy::TracedFunctions { functions } => (
                "traced-functions".to_owned(),
                functions
                    .iter()
                    .filter(|f| catalog.function(f).is_some())
                    .cloned()
                    .collect(),
            ),
            PruneStrategy::FeatureGroups { groups } => (
                "feature-groups".to_owned(),
                catalog
                    .iter()
                    .filter(|f| groups.contains(&f.group))
                    .map(|f| f.name.clone())
                    .collect(),
            ),
        };
        let loc = catalog.loc_of(functions.iter().map(String::as_str));
        let driver_bytes = loc * BYTES_PER_LOC;
        PrunedImage {
            strategy_name: name,
            functions,
            loc,
            driver_bytes,
            image_bytes: OPTEE_CORE_BYTES + driver_bytes,
        }
    }

    /// Size reduction of the driver portion relative to another image.
    pub fn driver_reduction_vs(&self, other: &PrunedImage) -> f64 {
        if self.driver_bytes == 0 {
            return 0.0;
        }
        other.driver_bytes as f64 / self.driver_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_pruning_is_much_smaller_than_keep_all() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let full = PrunedImage::build(&catalog, &PruneStrategy::KeepAll);
        let traced: BTreeSet<String> = perisec_secure_driver::PORTED_FUNCTIONS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let pruned = PrunedImage::build(
            &catalog,
            &PruneStrategy::TracedFunctions { functions: traced },
        );
        assert_eq!(full.loc, catalog.total_loc());
        assert!(pruned.loc < full.loc / 2);
        assert!(pruned.driver_reduction_vs(&full) > 2.0);
        assert!(pruned.image_bytes < full.image_bytes);
        assert!(pruned.image_bytes > pruned.driver_bytes);
    }

    #[test]
    fn group_pruning_keeps_whole_groups() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let groups: BTreeSet<FeatureGroup> = [
            FeatureGroup::CoreInit,
            FeatureGroup::I2sCapture,
            FeatureGroup::Dma,
        ]
        .into_iter()
        .collect();
        let image = PrunedImage::build(
            &catalog,
            &PruneStrategy::FeatureGroups {
                groups: groups.clone(),
            },
        );
        let expected_loc: u64 = groups.iter().map(|&g| catalog.loc_by_group()[&g]).sum();
        assert_eq!(image.loc, expected_loc);
        // Function-level pruning is strictly finer than group-level.
        let traced: BTreeSet<String> = perisec_secure_driver::PORTED_FUNCTIONS
            .iter()
            .map(|s| s.to_string())
            .collect();
        let fine = PrunedImage::build(
            &catalog,
            &PruneStrategy::TracedFunctions { functions: traced },
        );
        assert!(fine.loc <= image.loc);
    }

    #[test]
    fn unknown_traced_functions_are_ignored() {
        let catalog = DriverCatalog::tegra_audio_stack();
        let functions: BTreeSet<String> =
            ["tegra210_i2s_hw_params".to_owned(), "ghost_fn".to_owned()].into();
        let image = PrunedImage::build(&catalog, &PruneStrategy::TracedFunctions { functions });
        assert_eq!(image.functions.len(), 1);
        assert_eq!(image.loc, 180);
    }
}
