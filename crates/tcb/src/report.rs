//! Serializable TCB reports.

use serde::{Deserialize, Serialize};

use crate::analysis::TcbAnalysis;
use crate::prune::PrunedImage;

/// The complete TCB-minimization report for one platform/driver/trace
/// combination (the content of experiment E1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcbReport {
    /// The trace analysis (per-task minimal sets).
    pub analysis: TcbAnalysis,
    /// The image built from the full driver.
    pub full_image: PrunedImage,
    /// The image built from the traced minimal set of the record task.
    pub pruned_image: PrunedImage,
}

impl TcbReport {
    /// Lines-of-code reduction factor (full / pruned).
    pub fn loc_reduction(&self) -> f64 {
        if self.pruned_image.loc == 0 {
            return 0.0;
        }
        self.full_image.loc as f64 / self.pruned_image.loc as f64
    }

    /// Renders the per-task table as markdown (used by EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| task | functions | loc | % of driver |\n");
        out.push_str("|---|---|---|---|\n");
        out.push_str(&format!(
            "| (full driver) | {} | {} | 100.0% |\n",
            self.analysis.total_functions, self.analysis.total_loc
        ));
        for task in &self.analysis.tasks {
            out.push_str(&format!(
                "| {} | {} | {} | {:.1}% |\n",
                task.task,
                task.functions.len(),
                task.loc,
                100.0 * task.loc_fraction(self.analysis.total_loc)
            ));
        }
        out.push_str(&format!(
            "\nPruned OP-TEE image: {} KiB (driver portion {} KiB, {:.1}x smaller than porting the full driver)\n",
            self.pruned_image.image_bytes / 1024,
            self.pruned_image.driver_bytes / 1024,
            self.loc_reduction()
        ));
        out
    }

    /// Serializes the report to JSON.
    ///
    /// # Panics
    ///
    /// Never panics: all fields are plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PruneStrategy;
    use perisec_kernel::catalog::DriverCatalog;
    use perisec_kernel::trace::FunctionTracer;
    use perisec_tz::time::SimInstant;
    use std::collections::BTreeSet;

    fn simple_report() -> TcbReport {
        let catalog = DriverCatalog::tegra_audio_stack();
        let tracer = FunctionTracer::new();
        tracer.enable();
        tracer.begin_task("record");
        for f in [
            "tegra210_i2s_hw_params",
            "tegra210_i2s_trigger_start_capture",
        ] {
            tracer.record(f, SimInstant::EPOCH);
        }
        tracer.end_task();
        let analysis = TcbAnalysis::analyze(&catalog, &tracer.log());
        let full_image = PrunedImage::build(&catalog, &PruneStrategy::KeepAll);
        let functions: BTreeSet<String> = analysis.task("record").unwrap().functions.clone();
        let pruned_image =
            PrunedImage::build(&catalog, &PruneStrategy::TracedFunctions { functions });
        TcbReport {
            analysis,
            full_image,
            pruned_image,
        }
    }

    #[test]
    fn report_computes_reduction_and_renders() {
        let report = simple_report();
        assert!(report.loc_reduction() > 10.0);
        let md = report.to_markdown();
        assert!(md.contains("| record |"));
        assert!(md.contains("full driver"));
        let json = report.to_json();
        assert!(json.contains("\"pruned_image\""));
        let parsed: TcbReport = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed, report);
    }
}
