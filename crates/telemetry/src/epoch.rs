//! Virtual-time telemetry epochs.
//!
//! The health plane needs *windowed* visibility — "what did this device
//! do in the last 250 ms of virtual time" — on top of a tracer that only
//! accumulates cumulatively. An [`EpochCutter`] turns the cumulative
//! state into per-window deltas by keeping a baseline snapshot and
//! diffing against it ([`Tracer::cut_into`]) whenever the device's own
//! virtual clock crosses an epoch boundary.
//!
//! Determinism falls out of *where* cuts happen: a device task cuts at
//! its own step boundaries, reading its own [`SimClock`]. Virtual time
//! is a pure function of the workload, so epoch contents — and every
//! verdict derived from them — are identical at any executor worker
//! count and under any steal interleaving. The per-epoch fleet fold
//! ([`FleetEpochs`]) then reuses the same commutative-merge discipline
//! as the end-of-run [`FleetTelemetry`] fold.
//!
//! [`SimClock`]: perisec_tz::time::SimClock

use std::collections::BTreeMap;

use serde::{value::Value, Serialize};

use perisec_tz::time::{SimDuration, SimInstant};

use crate::fleet::{DeviceTelemetry, FleetTelemetry};
use crate::span::Tracer;

/// Cuts one device's cumulative telemetry into fixed-window virtual-time
/// deltas. Epoch `i` covers virtual time `[i·window, (i+1)·window)`.
///
/// The baseline and delta buffers are allocated once and reused: after
/// every series name has appeared, a cut is pure in-place value
/// arithmetic — the allocation-free steady path the E19 bench pins.
#[derive(Debug, Clone)]
pub struct EpochCutter {
    window: SimDuration,
    next_epoch: u64,
    baseline: DeviceTelemetry,
    delta: DeviceTelemetry,
}

impl EpochCutter {
    /// A cutter with the given epoch window (must be non-zero).
    pub fn new(window: SimDuration) -> Self {
        assert!(!window.is_zero(), "epoch window must be non-zero");
        EpochCutter {
            window,
            next_epoch: 0,
            baseline: DeviceTelemetry::default(),
            delta: DeviceTelemetry::default(),
        }
    }

    /// The epoch window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Index of the next epoch a cut would complete.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Cuts the next completed epoch, if `now` has moved past its end
    /// boundary; returns its index (read the delta via
    /// [`EpochCutter::last_delta`]). Call in a loop: when a device's step
    /// jumps several windows at once, the first cut absorbs the whole
    /// pending delta into the first completed epoch (sub-window
    /// attribution is unknowable from step-boundary cuts) and the
    /// remaining epochs cut as quiet — which is exactly the signal the
    /// stall detector feeds on.
    pub fn cut_next(&mut self, now: SimInstant, tracer: &Tracer) -> Option<u64> {
        let current = now.duration_since(SimInstant::EPOCH).as_nanos() / self.window.as_nanos();
        if self.next_epoch >= current {
            return None;
        }
        self.delta.reset_metrics();
        tracer.cut_into(&mut self.baseline, &mut self.delta);
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        Some(epoch)
    }

    /// Cuts whatever accumulated past the last completed boundary — the
    /// trailing partial epoch at end of run. Returns its index, or `None`
    /// when nothing was recorded since the last cut.
    pub fn cut_trailing(&mut self, tracer: &Tracer) -> Option<u64> {
        self.delta.reset_metrics();
        tracer.cut_into(&mut self.baseline, &mut self.delta);
        if self.delta.is_quiet() {
            return None;
        }
        Some(self.next_epoch)
    }

    /// The delta produced by the most recent cut.
    pub fn last_delta(&self) -> &DeviceTelemetry {
        &self.delta
    }

    /// The virtual instant ending epoch `epoch` — the deterministic
    /// timestamp alerts carry.
    pub fn epoch_end(&self, epoch: u64) -> SimInstant {
        SimInstant::EPOCH + self.window * (epoch + 1)
    }
}

/// Per-epoch fleet telemetry slices: epoch index → the commutative fold
/// of every device's delta for that window. Devices fold in as they cut
/// (in nondeterministic completion order); keying on the epoch index and
/// merging commutatively keeps the slices byte-stable anyway.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetEpochs {
    slices: BTreeMap<u64, FleetTelemetry>,
}

impl FleetEpochs {
    /// An empty set of slices.
    pub fn new() -> Self {
        FleetEpochs::default()
    }

    /// Folds one device-epoch delta into its slice. Quiet deltas are
    /// skipped — idle windows would otherwise bloat the map with
    /// all-zero slices. Slices aggregate across devices (per-device
    /// traces stay in the end-of-run fold); `_device` documents the
    /// provenance at call sites.
    pub fn absorb(&mut self, epoch: u64, _device: usize, delta: &DeviceTelemetry) {
        if delta.is_quiet() {
            return;
        }
        let slice = self.slices.entry(epoch).or_default();
        slice.devices += 1;
        for (name, histogram) in &delta.histograms {
            if !histogram.is_empty() {
                slice.histograms.entry(name).or_default().merge(histogram);
            }
        }
        for (name, &n) in &delta.counters {
            if n > 0 {
                *slice.counters.entry(name).or_insert(0) += n;
            }
        }
        slice.dropped_spans += delta.dropped_spans;
    }

    /// Merges another set of slices (hierarchical folding).
    pub fn merge(&mut self, other: &FleetEpochs) {
        for (epoch, slice) in &other.slices {
            self.slices.entry(*epoch).or_default().merge(slice);
        }
    }

    /// Number of non-quiet epoch slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// Whether no slice was recorded.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }

    /// The slice for one epoch, if any device was active in it.
    pub fn slice(&self, epoch: u64) -> Option<&FleetTelemetry> {
        self.slices.get(&epoch)
    }

    /// Iterates slices in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &FleetTelemetry)> {
        self.slices.iter().map(|(e, s)| (*e, s))
    }
}

impl Serialize for FleetEpochs {
    fn to_value(&self) -> Value {
        Value::Object(
            self.slices
                .iter()
                .map(|(epoch, slice)| (epoch.to_string(), slice.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;
    use perisec_tz::time::SimClock;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn cuts_attribute_deltas_to_virtual_windows() {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut cutter = EpochCutter::new(ms(10));

        // Epoch 0: two spans.
        for _ in 0..2 {
            let _span = tracer.span("stage.filter");
            clock.advance(ms(2));
        }
        assert_eq!(cutter.cut_next(clock.now(), &tracer), None, "epoch 0 open");
        clock.advance(ms(7)); // now at 11 ms — epoch 0 complete
        assert_eq!(cutter.cut_next(clock.now(), &tracer), Some(0));
        assert_eq!(cutter.last_delta().histograms["stage.filter"].count(), 2);
        assert_eq!(cutter.cut_next(clock.now(), &tracer), None);

        // A step that jumps three windows: the first completed epoch
        // absorbs the pending work, the rest cut quiet.
        {
            let _span = tracer.span("stage.filter");
            clock.advance(ms(30)); // now at 41 ms
        }
        assert_eq!(cutter.cut_next(clock.now(), &tracer), Some(1));
        assert_eq!(cutter.last_delta().histograms["stage.filter"].count(), 1);
        assert_eq!(cutter.cut_next(clock.now(), &tracer), Some(2));
        assert!(cutter.last_delta().is_quiet());
        assert_eq!(cutter.cut_next(clock.now(), &tracer), Some(3));
        assert!(cutter.last_delta().is_quiet());
        assert_eq!(cutter.cut_next(clock.now(), &tracer), None);

        // Trailing partial epoch.
        tracer.count("pipeline.windows", 1);
        assert_eq!(cutter.cut_trailing(&tracer), Some(4));
        assert_eq!(cutter.last_delta().counters["pipeline.windows"], 1);
        assert_eq!(cutter.cut_trailing(&tracer), None);

        assert_eq!(cutter.epoch_end(0), SimInstant::EPOCH + ms(10));
        assert_eq!(cutter.epoch_end(3), SimInstant::EPOCH + ms(40));
    }

    #[test]
    fn fleet_slices_fold_order_invariantly() {
        let deltas: Vec<(u64, usize, DeviceTelemetry)> = (0..8u64)
            .map(|i| {
                let clock = SimClock::new();
                let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
                {
                    let _span = tracer.span("stage.filter");
                    clock.advance(SimDuration::from_micros(i + 1));
                }
                (i % 3, i as usize, tracer.take())
            })
            .collect();
        let mut forward = FleetEpochs::new();
        for (epoch, device, delta) in &deltas {
            forward.absorb(*epoch, *device, delta);
        }
        let mut backward = FleetEpochs::new();
        for (epoch, device, delta) in deltas.iter().rev() {
            backward.absorb(*epoch, *device, delta);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 3);
        assert_eq!(forward.slice(0).unwrap().devices, 3);

        // Hierarchical merge matches the flat fold.
        let mut left = FleetEpochs::new();
        let mut right = FleetEpochs::new();
        for (i, (epoch, device, delta)) in deltas.iter().enumerate() {
            if i % 2 == 0 {
                left.absorb(*epoch, *device, delta);
            } else {
                right.absorb(*epoch, *device, delta);
            }
        }
        left.merge(&right);
        assert_eq!(left, forward);

        // Quiet deltas do not create slices.
        let mut sparse = FleetEpochs::new();
        sparse.absorb(9, 0, &DeviceTelemetry::default());
        assert!(sparse.is_empty());
    }
}
