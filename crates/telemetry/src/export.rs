//! Trace exporters: chrome-trace JSON and folded flamegraph stacks.
//!
//! Both exporters consume the retained [`SpanEvent`]s of one device
//! (captured under [`TelemetryConfig::tracing`](crate::TelemetryConfig))
//! and are pure functions of them — deterministic traces in, byte-stable
//! artifacts out.
//!
//! * [`chrome_trace_json`] emits the Trace Event Format understood by
//!   `chrome://tracing` and Perfetto: one complete (`"ph": "X"`) event per
//!   span, timestamps in microseconds of virtual time.
//! * [`folded_stacks`] emits `inferno`/`flamegraph.pl`-style folded
//!   stacks (`root;child;leaf <self-ns>`), one line per distinct stack,
//!   weighted by self time so a flamegraph's widths add up correctly.

use std::collections::BTreeMap;

use serde::value::Value;

use perisec_tz::time::SimInstant;

use crate::span::SpanEvent;

fn micros(instant: SimInstant) -> f64 {
    instant.duration_since(SimInstant::EPOCH).as_nanos() as f64 / 1_000.0
}

/// Renders `spans` as a chrome-trace (Trace Event Format) JSON document.
/// `pid` labels the process lane — device id in fleet runs. All spans land
/// on one thread lane (`tid: 0`): a simulated device is single-threaded,
/// and nesting is conveyed by the spans' time containment.
pub fn chrome_trace_json(spans: &[SpanEvent], pid: usize) -> String {
    let events: Vec<Value> = spans
        .iter()
        .map(|span| {
            Value::Object(vec![
                ("name".to_owned(), Value::Str(span.name.to_owned())),
                ("cat".to_owned(), Value::Str("perisec".to_owned())),
                ("ph".to_owned(), Value::Str("X".to_owned())),
                ("ts".to_owned(), Value::Float(micros(span.start))),
                (
                    "dur".to_owned(),
                    Value::Float(span.duration().as_nanos() as f64 / 1_000.0),
                ),
                ("pid".to_owned(), Value::UInt(pid as u128)),
                ("tid".to_owned(), Value::UInt(0)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_owned(), Value::Array(events)),
        ("displayTimeUnit".to_owned(), Value::Str("ms".to_owned())),
        (
            "otherData".to_owned(),
            Value::Object(vec![(
                "clock".to_owned(),
                Value::Str("virtual (SimClock)".to_owned()),
            )]),
        ),
    ]);
    serde_json::to_string_pretty(&doc).expect("chrome trace is serializable")
}

/// Renders `spans` as folded flamegraph stacks. Each retained span
/// contributes its **self time** (duration minus the durations of its
/// direct children) to the line for its full ancestry path, so stack
/// widths in the rendered flamegraph sum to total traced time.
pub fn folded_stacks(spans: &[SpanEvent]) -> String {
    // Self time: start from each span's own duration, subtract each
    // child's duration from its parent.
    let mut self_ns: Vec<u64> = spans.iter().map(|s| s.duration().as_nanos()).collect();
    for span in spans {
        if let Some(parent) = span.parent {
            let d = span.duration().as_nanos();
            if let Some(p) = self_ns.get_mut(parent as usize) {
                *p = p.saturating_sub(d);
            }
        }
    }
    // Fold identical stacks together (a device repeats its pipeline every
    // scenario step).
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (i, span) in spans.iter().enumerate() {
        let mut path: Vec<&'static str> = vec![span.name];
        let mut cursor = span.parent;
        while let Some(p) = cursor {
            let parent = &spans[p as usize];
            path.push(parent.name);
            cursor = parent.parent;
        }
        path.reverse();
        *folded.entry(path.join(";")).or_insert(0) += self_ns[i];
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TelemetryConfig, Tracer};
    use perisec_tz::time::{SimClock, SimDuration};

    fn sample_spans() -> Vec<SpanEvent> {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::tracing());
        for _ in 0..2 {
            let _outer = tracer.span("stage.filter");
            clock.advance(SimDuration::from_micros(1));
            {
                let _inner = tracer.span("ta.classify");
                clock.advance(SimDuration::from_micros(3));
            }
            clock.advance(SimDuration::from_micros(1));
        }
        tracer.take().spans
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let spans = sample_spans();
        let json = chrome_trace_json(&spans, 7);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.field("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 4);
        for event in events {
            assert_eq!(event.field("ph").unwrap().as_str(), Some("X"));
            assert_eq!(event.field("pid").unwrap(), &Value::UInt(7));
            assert!(event.field("ts").is_ok());
            assert!(event.field("dur").is_ok());
        }
        // Second outer span starts at 5 µs of virtual time.
        assert_eq!(events[2].field("ts").unwrap(), &Value::Float(5.0));
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        let spans = sample_spans();
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        // Two distinct stacks, each folded across both iterations.
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"stage.filter 4000"), "folded: {folded}");
        assert!(
            lines.contains(&"stage.filter;ta.classify 6000"),
            "folded: {folded}"
        );
    }

    #[test]
    fn folded_stacks_golden_output() {
        // The full byte-exact artifact: stacks sort lexically (BTreeMap
        // fold) and each line is `path space self-ns newline`. Changing
        // the format breaks downstream flamegraph tooling, so it is
        // pinned verbatim.
        let spans = sample_spans();
        assert_eq!(
            folded_stacks(&spans),
            "stage.filter 4000\nstage.filter;ta.classify 6000\n"
        );
    }

    #[test]
    fn chrome_trace_round_trips_every_span() {
        // Serialize, parse, and reconstruct each span's timing from the
        // parsed document: the microsecond Float encoding must carry the
        // exact nanosecond virtual timestamps back out.
        let spans = sample_spans();
        let json = chrome_trace_json(&spans, 42);
        let doc: Value = serde_json::from_str(&json).unwrap();
        let events = doc.field("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), spans.len());
        for (event, span) in events.iter().zip(&spans) {
            assert_eq!(event.field("name").unwrap().as_str(), Some(span.name));
            assert_eq!(event.field("pid").unwrap(), &Value::UInt(42));
            let micros_of = |field: &str| match event.field(field).unwrap() {
                Value::Float(f) => *f,
                other => panic!("{field} parsed as {}", other.kind()),
            };
            let start_ns = (micros_of("ts") * 1_000.0).round() as u64;
            let dur_ns = (micros_of("dur") * 1_000.0).round() as u64;
            assert_eq!(
                start_ns,
                span.start.duration_since(SimInstant::EPOCH).as_nanos()
            );
            assert_eq!(dur_ns, span.duration().as_nanos());
        }
        // Metadata survives the trip too.
        assert_eq!(
            doc.field("otherData")
                .unwrap()
                .field("clock")
                .unwrap()
                .as_str(),
            Some("virtual (SimClock)")
        );
        // And re-serializing the parsed tree reproduces the bytes — the
        // export is a fixed point of parse ∘ print.
        assert_eq!(serde_json::to_string_pretty(&doc).unwrap(), json);
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let json = chrome_trace_json(&[], 0);
        let doc: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            doc.field("traceEvents").unwrap().as_array().unwrap().len(),
            0
        );
        assert_eq!(folded_stacks(&[]), "");
    }
}
