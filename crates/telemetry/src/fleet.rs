//! Per-device telemetry snapshots and the order-invariant fleet fold.
//!
//! Devices complete in a nondeterministic order (the executor steals
//! work), yet the fleet's telemetry must be deterministic — the same
//! discipline `FleetReport` enforces for the functional results. The fold
//! achieves it structurally: histograms and counters merge by commutative
//! addition keyed on static names, and retained traces key on the device
//! id, so the folded [`FleetTelemetry`] is identical for any completion
//! interleaving and any worker count.

use std::collections::BTreeMap;

use serde::{value::Value, Serialize};

use crate::hist::LogHistogram;
use crate::span::SpanEvent;

/// Everything one device's tracer accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceTelemetry {
    /// Per-span-name latency histograms (fixed memory per name).
    pub histograms: BTreeMap<&'static str, LogHistogram>,
    /// Per-name event counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Retained span events (empty unless span capture was on).
    pub spans: Vec<SpanEvent>,
    /// Spans dropped past the capture cap.
    pub dropped_spans: u64,
}

impl DeviceTelemetry {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
            && self.counters.is_empty()
            && self.spans.is_empty()
            && self.dropped_spans == 0
    }

    /// Total spans recorded across all names.
    pub fn total_spans(&self) -> u64 {
        self.counters.values().sum()
    }

    /// Zeroes every metric value in place while keeping the key sets (and
    /// the span vector's capacity) — the allocation-free reset for epoch
    /// scratch buffers fed to [`Tracer::cut_into`](crate::Tracer::cut_into).
    pub fn reset_metrics(&mut self) {
        for histogram in self.histograms.values_mut() {
            *histogram = LogHistogram::new();
        }
        for n in self.counters.values_mut() {
            *n = 0;
        }
        self.spans.clear();
        self.dropped_spans = 0;
    }

    /// Whether every metric *value* is zero. Distinct from
    /// [`DeviceTelemetry::is_empty`]: epoch scratch buffers keep their key
    /// sets across resets, so map emptiness is the wrong idleness test —
    /// this is the stall detector's "no activity this epoch" predicate.
    pub fn is_quiet(&self) -> bool {
        self.histograms.values().all(LogHistogram::is_empty)
            && self.counters.values().all(|&n| n == 0)
            && self.spans.is_empty()
            && self.dropped_spans == 0
    }
}

/// The fleet-wide fold of device telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTelemetry {
    /// Devices folded in.
    pub devices: u64,
    /// Fleet-merged per-name histograms.
    pub histograms: BTreeMap<&'static str, LogHistogram>,
    /// Fleet-summed per-name counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Spans dropped across the fleet (capture caps).
    pub dropped_spans: u64,
    /// Retained traces, keyed by device id — at most one device captures
    /// spans in a fleet run (the deep-dive device), but the map form keeps
    /// the fold order-invariant even if several do.
    pub traces: BTreeMap<usize, Vec<SpanEvent>>,
}

impl FleetTelemetry {
    /// An empty fold.
    pub fn new() -> Self {
        FleetTelemetry::default()
    }

    /// Folds one device's telemetry in. Commutative across devices: any
    /// absorb order yields the same fold.
    pub fn absorb(&mut self, device: usize, telemetry: DeviceTelemetry) {
        self.devices += 1;
        for (name, histogram) in telemetry.histograms {
            self.histograms.entry(name).or_default().merge(&histogram);
        }
        for (name, n) in telemetry.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        self.dropped_spans += telemetry.dropped_spans;
        if !telemetry.spans.is_empty() {
            self.traces.insert(device, telemetry.spans);
        }
    }

    /// Merges another fold into this one (for hierarchical folding —
    /// e.g. per-worker partial folds). Commutative and associative, like
    /// [`FleetTelemetry::absorb`].
    pub fn merge(&mut self, other: &FleetTelemetry) {
        self.devices += other.devices;
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name).or_default().merge(histogram);
        }
        for (name, n) in &other.counters {
            *self.counters.entry(name).or_insert(0) += n;
        }
        self.dropped_spans += other.dropped_spans;
        for (device, spans) in &other.traces {
            self.traces.insert(*device, spans.clone());
        }
    }

    /// The trace of one device, if captured.
    pub fn trace(&self, device: usize) -> Option<&[SpanEvent]> {
        self.traces.get(&device).map(Vec::as_slice)
    }

    /// Approximate resident bytes of the fold, excluding retained traces
    /// (those are bounded separately by the capture cap). This is the
    /// figure that stays flat as the fleet grows: per-name histograms and
    /// counters, regardless of device count or events per device.
    pub fn metrics_memory_bytes(&self) -> usize {
        self.histograms.len() * (LogHistogram::memory_bytes() + std::mem::size_of::<&str>())
            + self
                .counters
                .len()
                .saturating_mul(std::mem::size_of::<(&str, u64)>())
    }

    /// The machine-readable JSON section (also embedded by
    /// `FleetReport::to_json_with_telemetry`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("telemetry is serializable")
    }
}

impl Serialize for FleetTelemetry {
    fn to_value(&self) -> Value {
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(name, h)| ((*name).to_owned(), h.to_value()))
                .collect(),
        );
        let counters = Value::Object(
            self.counters
                .iter()
                .map(|(name, n)| ((*name).to_owned(), Value::UInt(*n as u128)))
                .collect(),
        );
        Value::Object(vec![
            ("devices".to_owned(), Value::UInt(self.devices as u128)),
            ("histograms".to_owned(), histograms),
            ("counters".to_owned(), counters),
            (
                "dropped_spans".to_owned(),
                Value::UInt(self.dropped_spans as u128),
            ),
            (
                "traced_devices".to_owned(),
                Value::Array(
                    self.traces
                        .keys()
                        .map(|d| Value::UInt(*d as u128))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perisec_tz::time::SimDuration;

    fn device(seed: u64) -> DeviceTelemetry {
        let mut telemetry = DeviceTelemetry::default();
        let mut histogram = LogHistogram::new();
        for i in 0..seed % 7 + 1 {
            histogram.record(SimDuration::from_micros(seed + i));
        }
        telemetry.histograms.insert("stage.filter", histogram);
        telemetry.counters.insert("windows", seed % 7 + 1);
        telemetry
    }

    #[test]
    fn absorb_order_does_not_matter() {
        let devices: Vec<DeviceTelemetry> = (0..12u64).map(device).collect();
        let mut forward = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate() {
            forward.absorb(i, d.clone());
        }
        let mut backward = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate().rev() {
            backward.absorb(i, d.clone());
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.devices, 12);
    }

    #[test]
    fn merge_matches_flat_absorb() {
        let devices: Vec<DeviceTelemetry> = (0..10u64).map(device).collect();
        let mut flat = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate() {
            flat.absorb(i, d.clone());
        }
        let mut left = FleetTelemetry::new();
        let mut right = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate() {
            if i % 2 == 0 {
                left.absorb(i, d.clone());
            } else {
                right.absorb(i, d.clone());
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, flat);
        let mut reversed = right.clone();
        reversed.merge(&left);
        assert_eq!(reversed, flat);
    }

    #[test]
    fn metrics_memory_is_flat_in_device_count() {
        let mut small = FleetTelemetry::new();
        let mut large = FleetTelemetry::new();
        for i in 0..4usize {
            small.absorb(i, device(i as u64));
        }
        for i in 0..4000usize {
            large.absorb(i, device(i as u64));
        }
        assert_eq!(small.metrics_memory_bytes(), large.metrics_memory_bytes());
        assert!(large.metrics_memory_bytes() > 0);
    }

    #[test]
    fn json_export_is_machine_readable() {
        let mut fleet = FleetTelemetry::new();
        fleet.absorb(3, device(5));
        let json = fleet.to_json();
        let value: serde::value::Value = serde_json::from_str(&json).unwrap();
        assert!(value.field("histograms").is_ok());
        assert!(value.field("counters").is_ok());
        assert_eq!(
            value.field("devices").unwrap(),
            &serde::value::Value::UInt(1)
        );
    }
}
