//! The live fleet health plane: SLO objectives, per-device health state
//! machines, deterministic anomaly detectors, and the virtual-time alert
//! journal.
//!
//! Every verdict here is a pure function of the workload. Epoch deltas
//! are cut from each device's own virtual clock at its step boundaries
//! ([`EpochCutter`]); percentile estimates are deterministic
//! ([`LogHistogram::percentile`]); alert timestamps are epoch boundaries
//! of virtual time. So the entire health plane — states, alerts, the
//! journal's JSON bytes — is identical at any executor worker count,
//! under any steal interleaving, on any host. That is the property E19
//! gates in CI: injected degradation fires the *same alerts at the same
//! virtual instants* whether the fleet runs on 1 worker or 8.
//!
//! Two monitors share the machinery:
//!
//! * [`DeviceHealthMonitor`] — the fleet plane. Driven by a device's
//!   [`Tracer`] inside its executor task; cuts epochs, evaluates
//!   [`SloSpec`]s and anomaly detectors, feeds a shared [`HealthSink`].
//! * [`PressureMonitor`] — the control seam. Tracer-free, fed directly
//!   with per-utterance service observations inside a pipeline's batch
//!   step; its [`HealthState`] verdict is the SLO-pressure input of
//!   `AdaptiveBatcher`, closing the observability→control loop.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

use serde::{value::Value, Serialize};

use perisec_tz::time::{SimDuration, SimInstant};

use crate::epoch::{EpochCutter, FleetEpochs};
use crate::fleet::DeviceTelemetry;
use crate::hist::LogHistogram;
use crate::span::Tracer;

/// One service-level objective over a named span series: "the
/// `percentile` of `span` must stay within `budget` every epoch".
///
/// The percentile is stored in milli-units (`990` = p99) so the spec
/// stays `Eq`/`Copy` and config structs keep their derives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// The span-name series the objective watches.
    pub span: &'static str,
    /// Target percentile in milli-units: 500 = p50, 990 = p99.
    pub percentile_milli: u32,
    /// The latency budget the percentile must not exceed.
    pub budget: SimDuration,
}

impl SloSpec {
    /// A p50 objective.
    pub fn p50(span: &'static str, budget: SimDuration) -> Self {
        SloSpec {
            span,
            percentile_milli: 500,
            budget,
        }
    }

    /// A p95 objective.
    pub fn p95(span: &'static str, budget: SimDuration) -> Self {
        SloSpec {
            span,
            percentile_milli: 950,
            budget,
        }
    }

    /// A p99 objective.
    pub fn p99(span: &'static str, budget: SimDuration) -> Self {
        SloSpec {
            span,
            percentile_milli: 990,
            budget,
        }
    }

    /// The percentile as the `q` argument of
    /// [`LogHistogram::percentile`].
    pub fn q(&self) -> f64 {
        self.percentile_milli as f64 / 1000.0
    }

    /// Human label, e.g. `p99` or `p99.9`.
    pub fn label(&self) -> String {
        if self.percentile_milli.is_multiple_of(10) {
            format!("p{}", self.percentile_milli / 10)
        } else {
            format!(
                "p{}.{}",
                self.percentile_milli / 10,
                self.percentile_milli % 10
            )
        }
    }
}

/// Device health, coarsest to finest trouble.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthState {
    /// Meeting every objective.
    #[default]
    Healthy,
    /// Breaching objectives; service continues.
    Degraded,
    /// Sustained breach; intervention expected.
    Critical,
}

impl HealthState {
    /// Lowercase machine label.
    pub fn label(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Critical => "critical",
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthState::Healthy => "Healthy",
            HealthState::Degraded => "Degraded",
            HealthState::Critical => "Critical",
        })
    }
}

/// Health-plane configuration: the epoch window, the objectives, and the
/// detector/hysteresis knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthConfig {
    /// Virtual-time epoch window (must be non-zero).
    pub window: SimDuration,
    /// Objectives evaluated each epoch.
    pub slos: Vec<SloSpec>,
    /// Minimum recordings a series needs in an epoch before its
    /// percentile is judged (thin epochs stay un-judged, not breached).
    pub min_samples: u64,
    /// Breached epochs before Healthy demotes to Degraded.
    pub degraded_after: u32,
    /// Further breached epochs before Degraded demotes to Critical.
    pub critical_after: u32,
    /// Clean epochs before stepping one level back toward Healthy.
    pub healthy_after: u32,
    /// Epoch-over-epoch regression threshold in percent (300 = a 3x
    /// jump of a watched percentile fires an alert; 0 disables).
    pub regression_factor_pct: u32,
    /// Consecutive quiet epochs (after first activity) that count as a
    /// stall (0 disables).
    pub stall_epochs: u32,
    /// Whether any `relay.payload_bytes > 0` epoch is an anomaly — the
    /// privacy tripwire: a filtered fleet should relay verdicts, never
    /// raw audio payloads.
    pub expect_zero_payload: bool,
    /// Epoch `relay.retries` count at or above which a retry-storm alert
    /// fires (0 disables) — the fault-tolerance plane's signal that a
    /// device is burning its virtual time retransmitting into a lossy or
    /// dead network rather than making forward progress.
    pub retry_storm_threshold: u64,
    /// Epoch `ingest.backpressure` count at or above which a
    /// backpressure alert fires (0 disables) — queue saturation on the
    /// ingest path made visible in the health report rather than only as
    /// device-side retries.
    pub backpressure_threshold: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            window: SimDuration::from_secs(1),
            slos: Vec::new(),
            min_samples: 1,
            degraded_after: 1,
            critical_after: 3,
            healthy_after: 2,
            regression_factor_pct: 0,
            stall_epochs: 0,
            expect_zero_payload: false,
            retry_storm_threshold: 0,
            backpressure_threshold: 0,
        }
    }
}

impl HealthConfig {
    /// A config with the given epoch window and default knobs.
    pub fn with_window(window: SimDuration) -> Self {
        HealthConfig {
            window,
            ..HealthConfig::default()
        }
    }
}

/// The Healthy → Degraded → Critical state machine with hysteresis:
/// demotion needs a streak of breached epochs, recovery a streak of
/// clean ones, and recovery steps down one level at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthMachine {
    state: HealthState,
    breach_streak: u32,
    clean_streak: u32,
    degraded_after: u32,
    critical_after: u32,
    healthy_after: u32,
}

impl HealthMachine {
    /// A machine in `Healthy` with the config's hysteresis thresholds.
    pub fn new(config: &HealthConfig) -> Self {
        HealthMachine {
            state: HealthState::Healthy,
            breach_streak: 0,
            clean_streak: 0,
            degraded_after: config.degraded_after.max(1),
            critical_after: config.critical_after.max(1),
            healthy_after: config.healthy_after.max(1),
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Feeds one epoch verdict; returns `Some((from, to))` on a
    /// transition. Quiet epochs must *not* be fed — idleness freezes the
    /// streaks rather than counting as clean.
    pub fn step(&mut self, breached: bool) -> Option<(HealthState, HealthState)> {
        if breached {
            self.clean_streak = 0;
            self.breach_streak += 1;
            let next = match self.state {
                HealthState::Healthy if self.breach_streak >= self.degraded_after => {
                    HealthState::Degraded
                }
                HealthState::Degraded if self.breach_streak >= self.critical_after => {
                    HealthState::Critical
                }
                _ => return None,
            };
            self.breach_streak = 0;
            let from = self.state;
            self.state = next;
            Some((from, next))
        } else {
            self.breach_streak = 0;
            if self.state == HealthState::Healthy {
                return None;
            }
            self.clean_streak += 1;
            if self.clean_streak < self.healthy_after {
                return None;
            }
            self.clean_streak = 0;
            let from = self.state;
            self.state = match self.state {
                HealthState::Critical => HealthState::Degraded,
                _ => HealthState::Healthy,
            };
            Some((from, self.state))
        }
    }
}

/// What a journal entry reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// An epoch percentile exceeded its [`SloSpec`] budget.
    SloBreach,
    /// A watched percentile jumped epoch-over-epoch past the
    /// regression factor.
    LatencyRegression,
    /// A previously active device went quiet for the configured streak.
    DeviceStalled,
    /// `relay.payload_bytes` grew in a fleet expected to relay none.
    PayloadLeak,
    /// `relay.retries` crossed the configured per-epoch threshold — the
    /// device is retransmitting into a lossy or dead network.
    RetryStorm,
    /// Spans were dropped past the capture cap this epoch.
    DroppedSpanPressure,
    /// `ingest.backpressure` crossed the configured per-epoch threshold
    /// — the ingest path is refusing records faster than the device can
    /// drain them.
    Backpressure,
    /// An ingest shard entered a crash window (chaos schedule or
    /// observed outage).
    ShardDown,
    /// An ingest shard came back from a crash window.
    ShardRecovered,
    /// The health state machine transitioned.
    StateChange {
        /// State before the transition.
        from: HealthState,
        /// State after the transition.
        to: HealthState,
    },
}

impl AlertKind {
    /// Machine label for exports.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::SloBreach => "slo_breach",
            AlertKind::LatencyRegression => "latency_regression",
            AlertKind::DeviceStalled => "device_stalled",
            AlertKind::PayloadLeak => "payload_leak",
            AlertKind::RetryStorm => "retry_storm",
            AlertKind::DroppedSpanPressure => "dropped_span_pressure",
            AlertKind::Backpressure => "backpressure",
            AlertKind::ShardDown => "shard_down",
            AlertKind::ShardRecovered => "shard_recovered",
            AlertKind::StateChange { .. } => "state_change",
        }
    }
}

/// One append-only journal entry, timestamped in virtual time (the end
/// boundary of the epoch that produced it — deterministic at any worker
/// count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alert {
    /// Device that raised the alert.
    pub device: usize,
    /// Epoch index the verdict covers.
    pub epoch: u64,
    /// Virtual instant of the epoch's end boundary.
    pub at: SimInstant,
    /// What happened.
    pub kind: AlertKind,
    /// The span series involved, for SLO/regression alerts.
    pub span: Option<&'static str>,
    /// Deterministic human detail (built only from virtual-time
    /// quantities).
    pub detail: String,
}

impl Serialize for Alert {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("device".to_owned(), Value::UInt(self.device as u128)),
            ("epoch".to_owned(), Value::UInt(self.epoch as u128)),
            ("at_ns".to_owned(), Value::UInt(self.at.as_nanos() as u128)),
            ("kind".to_owned(), Value::Str(self.kind.label().to_owned())),
        ];
        if let AlertKind::StateChange { from, to } = self.kind {
            fields.push(("from".to_owned(), Value::Str(from.label().to_owned())));
            fields.push(("to".to_owned(), Value::Str(to.label().to_owned())));
        }
        if let Some(span) = self.span {
            fields.push(("span".to_owned(), Value::Str(span.to_owned())));
        }
        fields.push(("detail".to_owned(), Value::Str(self.detail.clone())));
        Value::Object(fields)
    }
}

/// The shared fleet-health accumulator device monitors feed. Folding is
/// commutative (epoch slices key on epoch index, device records on
/// device id), so completion order and worker count cannot show.
pub type HealthSink = Arc<Mutex<FleetHealth>>;

/// Fleet-wide health accumulation: per-epoch telemetry slices, final
/// per-device states, and the raw (not yet sorted) alert stream.
#[derive(Debug, Clone, Default)]
pub struct FleetHealth {
    window: SimDuration,
    epochs: FleetEpochs,
    final_states: BTreeMap<usize, HealthState>,
    alerts: Vec<Alert>,
}

impl FleetHealth {
    /// An empty accumulator for the given epoch window.
    pub fn new(window: SimDuration) -> Self {
        FleetHealth {
            window,
            ..FleetHealth::default()
        }
    }

    /// A shareable sink over an empty accumulator.
    pub fn sink(window: SimDuration) -> HealthSink {
        Arc::new(Mutex::new(FleetHealth::new(window)))
    }

    fn absorb_epoch(&mut self, epoch: u64, device: usize, delta: &DeviceTelemetry) {
        self.epochs.absorb(epoch, device, delta);
    }

    fn complete_device(&mut self, device: usize, state: HealthState, alerts: Vec<Alert>) {
        self.final_states.insert(device, state);
        self.alerts.extend(alerts);
    }

    /// Folds one epoch's telemetry delta for a device — the external
    /// entry point planes that run their own epoch accounting (the
    /// sharded ingest plane) use to feed a health accumulator directly.
    pub fn ingest_epoch(&mut self, epoch: u64, device: usize, delta: &DeviceTelemetry) {
        self.absorb_epoch(epoch, device, delta);
    }

    /// Records a device's final state and its alert journal — the
    /// external counterpart of the monitor-driven completion path.
    pub fn finish_device(&mut self, device: usize, state: HealthState, alerts: Vec<Alert>) {
        self.complete_device(device, state, alerts);
    }

    /// Assembles the deterministic report: the journal sorts by
    /// `(epoch, device)` — stable, so each device's in-epoch alert order
    /// (its deterministic generation order) is preserved.
    pub fn report(&self) -> FleetHealthReport {
        let mut alerts = self.alerts.clone();
        alerts.sort_by_key(|a| (a.epoch, a.device));
        let count = |s: HealthState| self.final_states.values().filter(|&&v| v == s).count() as u64;
        FleetHealthReport {
            window: self.window,
            devices: self.final_states.len() as u64,
            healthy: count(HealthState::Healthy),
            degraded: count(HealthState::Degraded),
            critical: count(HealthState::Critical),
            epochs: self.epochs.clone(),
            alerts,
        }
    }
}

/// The end-of-run health report: state census, per-epoch fleet slices,
/// and the sorted virtual-time alert journal. Byte-identical across
/// worker counts, like `FleetReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealthReport {
    /// Epoch window the plane ran with.
    pub window: SimDuration,
    /// Devices monitored.
    pub devices: u64,
    /// Devices that finished Healthy.
    pub healthy: u64,
    /// Devices that finished Degraded.
    pub degraded: u64,
    /// Devices that finished Critical.
    pub critical: u64,
    /// Per-epoch fleet telemetry slices.
    pub epochs: FleetEpochs,
    /// The alert journal, sorted by `(epoch, device)`.
    pub alerts: Vec<Alert>,
}

impl FleetHealthReport {
    /// Alerts that transitioned a device *into* `state`.
    pub fn transitions_to(&self, state: HealthState) -> usize {
        self.alerts
            .iter()
            .filter(|a| matches!(a.kind, AlertKind::StateChange { to, .. } if to == state))
            .count()
    }

    /// Alerts of one kind (by label, so `StateChange` variants collapse).
    pub fn alerts_of(&self, label: &str) -> usize {
        self.alerts
            .iter()
            .filter(|a| a.kind.label() == label)
            .count()
    }

    /// The alert journal alone as pretty JSON — the byte-identity
    /// artifact E19 compares across worker counts.
    pub fn alert_journal_json(&self) -> String {
        let entries = Value::Array(self.alerts.iter().map(Serialize::to_value).collect());
        serde_json::to_string_pretty(&entries).expect("alert journal is serializable")
    }

    /// The full report as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).expect("health report is serializable")
    }

    /// The human table: state census, per-epoch activity, then the
    /// journal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Fleet health: {} devices — {} healthy, {} degraded, {} critical \
             (epoch window {} µs)",
            self.devices,
            self.healthy,
            self.degraded,
            self.critical,
            self.window.as_micros()
        );
        let _ = writeln!(out, "| epoch | active devices | spans | alerts |");
        let _ = writeln!(out, "|---|---|---|---|");
        for (epoch, slice) in self.epochs.iter() {
            let spans: u64 = slice.histograms.values().map(LogHistogram::count).sum();
            let alerts = self.alerts.iter().filter(|a| a.epoch == epoch).count();
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                epoch, slice.devices, spans, alerts
            );
        }
        if self.alerts.is_empty() {
            let _ = writeln!(out, "Alert journal: empty");
        } else {
            let _ = writeln!(out, "Alert journal ({} entries):", self.alerts.len());
            for alert in &self.alerts {
                let span = alert.span.map(|s| format!(" [{s}]")).unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  epoch {:>3} @ {:>12} ns  device {:>5}  {}{}: {}",
                    alert.epoch,
                    alert.at.as_nanos(),
                    alert.device,
                    alert.kind.label(),
                    span,
                    alert.detail
                );
            }
        }
        out
    }
}

impl Serialize for FleetHealthReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "window_ns".to_owned(),
                Value::UInt(self.window.as_nanos() as u128),
            ),
            ("devices".to_owned(), Value::UInt(self.devices as u128)),
            (
                "states".to_owned(),
                Value::Object(vec![
                    ("healthy".to_owned(), Value::UInt(self.healthy as u128)),
                    ("degraded".to_owned(), Value::UInt(self.degraded as u128)),
                    ("critical".to_owned(), Value::UInt(self.critical as u128)),
                ]),
            ),
            (
                "alerts".to_owned(),
                Value::Array(self.alerts.iter().map(Serialize::to_value).collect()),
            ),
            ("epochs".to_owned(), self.epochs.to_value()),
        ])
    }
}

/// Detector state shared by one device's epochs: the state machine,
/// last-seen percentiles (for the regression detector), and the stall
/// streak.
#[derive(Debug, Clone)]
struct Detectors {
    machine: HealthMachine,
    prev_percentile: BTreeMap<&'static str, u64>,
    stall_streak: u32,
    seen_activity: bool,
}

impl Detectors {
    fn new(config: &HealthConfig) -> Self {
        Detectors {
            machine: HealthMachine::new(config),
            prev_percentile: BTreeMap::new(),
            stall_streak: 0,
            seen_activity: false,
        }
    }

    /// Evaluates one completed epoch delta, appending alerts. Quiet
    /// epochs only feed the stall detector; everything else freezes.
    fn evaluate(
        &mut self,
        config: &HealthConfig,
        device: usize,
        epoch: u64,
        at: SimInstant,
        delta: &DeviceTelemetry,
        alerts: &mut Vec<Alert>,
    ) {
        if delta.is_quiet() {
            if self.seen_activity && config.stall_epochs > 0 {
                self.stall_streak += 1;
                if self.stall_streak == config.stall_epochs {
                    alerts.push(Alert {
                        device,
                        epoch,
                        at,
                        kind: AlertKind::DeviceStalled,
                        span: None,
                        detail: format!(
                            "no activity for {} consecutive epochs",
                            config.stall_epochs
                        ),
                    });
                }
            }
            return;
        }
        self.seen_activity = true;
        self.stall_streak = 0;

        let mut breached = false;
        for spec in &config.slos {
            let Some(histogram) = delta.histograms.get(spec.span) else {
                continue;
            };
            if histogram.count() < config.min_samples {
                continue;
            }
            let p = histogram.percentile(spec.q()).as_nanos();
            if p > spec.budget.as_nanos() {
                breached = true;
                alerts.push(Alert {
                    device,
                    epoch,
                    at,
                    kind: AlertKind::SloBreach,
                    span: Some(spec.span),
                    detail: format!(
                        "{} {} ns over budget {} ns",
                        spec.label(),
                        p,
                        spec.budget.as_nanos()
                    ),
                });
            }
            if config.regression_factor_pct > 0 {
                if let Some(&prev) = self.prev_percentile.get(spec.span) {
                    if prev > 0
                        && p.saturating_mul(100)
                            > prev.saturating_mul(config.regression_factor_pct as u64)
                    {
                        alerts.push(Alert {
                            device,
                            epoch,
                            at,
                            kind: AlertKind::LatencyRegression,
                            span: Some(spec.span),
                            detail: format!(
                                "{} regressed {} ns -> {} ns (> {}%)",
                                spec.label(),
                                prev,
                                p,
                                config.regression_factor_pct
                            ),
                        });
                    }
                }
            }
            self.prev_percentile.insert(spec.span, p);
        }

        if config.expect_zero_payload {
            if let Some(&bytes) = delta.counters.get("relay.payload_bytes") {
                if bytes > 0 {
                    alerts.push(Alert {
                        device,
                        epoch,
                        at,
                        kind: AlertKind::PayloadLeak,
                        span: None,
                        detail: format!("{bytes} payload bytes crossed the relay"),
                    });
                }
            }
        }
        if config.retry_storm_threshold > 0 {
            if let Some(&retries) = delta.counters.get("relay.retries") {
                if retries >= config.retry_storm_threshold {
                    alerts.push(Alert {
                        device,
                        epoch,
                        at,
                        kind: AlertKind::RetryStorm,
                        span: None,
                        detail: format!(
                            "{retries} relay retransmissions in one epoch (threshold {})",
                            config.retry_storm_threshold
                        ),
                    });
                }
            }
        }
        if config.backpressure_threshold > 0 {
            if let Some(&rejections) = delta.counters.get("ingest.backpressure") {
                if rejections >= config.backpressure_threshold {
                    alerts.push(Alert {
                        device,
                        epoch,
                        at,
                        kind: AlertKind::Backpressure,
                        span: None,
                        detail: format!(
                            "{rejections} ingest backpressure rejections in one epoch (threshold {})",
                            config.backpressure_threshold
                        ),
                    });
                }
            }
        }
        if delta.dropped_spans > 0 {
            alerts.push(Alert {
                device,
                epoch,
                at,
                kind: AlertKind::DroppedSpanPressure,
                span: None,
                detail: format!("{} spans dropped past the capture cap", delta.dropped_spans),
            });
        }
        if let Some((from, to)) = self.machine.step(breached) {
            alerts.push(Alert {
                device,
                epoch,
                at,
                kind: AlertKind::StateChange { from, to },
                span: None,
                detail: format!("{from} -> {to}"),
            });
        }
    }
}

/// The per-device health monitor the fleet executor drives: cut epochs
/// at step boundaries, evaluate them, feed the shared sink.
#[derive(Debug, Clone)]
pub struct DeviceHealthMonitor {
    device: usize,
    config: HealthConfig,
    cutter: EpochCutter,
    detectors: Detectors,
    alerts: Vec<Alert>,
    sink: HealthSink,
}

impl DeviceHealthMonitor {
    /// A monitor for `device`, reporting into `sink`.
    pub fn new(device: usize, config: HealthConfig, sink: HealthSink) -> Self {
        DeviceHealthMonitor {
            device,
            cutter: EpochCutter::new(config.window),
            detectors: Detectors::new(&config),
            config,
            alerts: Vec::new(),
            sink,
        }
    }

    /// Current health state.
    pub fn state(&self) -> HealthState {
        self.detectors.machine.state()
    }

    /// Cuts and evaluates every epoch completed by virtual instant
    /// `now` — called at each device step boundary.
    pub fn advance(&mut self, now: SimInstant, tracer: &Tracer) {
        while let Some(epoch) = self.cutter.cut_next(now, tracer) {
            let at = self.cutter.epoch_end(epoch);
            let delta = self.cutter.last_delta();
            self.detectors.evaluate(
                &self.config,
                self.device,
                epoch,
                at,
                delta,
                &mut self.alerts,
            );
            if !delta.is_quiet() {
                self.sink.lock().absorb_epoch(epoch, self.device, delta);
            }
        }
    }

    /// Final cut at end of run: the trailing partial epoch folds into
    /// the slices (un-judged — a partial window is not a fair SLO
    /// sample), then the device's record lands in the sink.
    pub fn finish(mut self, now: SimInstant, tracer: &Tracer) {
        self.advance(now, tracer);
        let trailing = self.cutter.cut_trailing(tracer);
        let mut sink = self.sink.lock();
        if let Some(epoch) = trailing {
            sink.absorb_epoch(epoch, self.device, self.cutter.last_delta());
        }
        sink.complete_device(
            self.device,
            self.detectors.machine.state(),
            std::mem::take(&mut self.alerts),
        );
    }
}

/// The tracer-free pressure verdict feeding `AdaptiveBatcher`: a single
/// series (per-utterance service time, observed directly in the batch
/// step), cut on the same virtual-window discipline, judged by the same
/// hysteresis machine. Epoch attribution matches [`EpochCutter`]: the
/// first completed epoch absorbs pending observations; idle windows
/// freeze the streaks.
#[derive(Debug, Clone)]
pub struct PressureMonitor {
    spec: SloSpec,
    window: SimDuration,
    min_samples: u64,
    next_epoch: u64,
    current: LogHistogram,
    machine: HealthMachine,
}

impl PressureMonitor {
    /// Window length of [`PressureMonitor::for_spec`], in multiples of
    /// the spec's own budget: long enough for a stable percentile, short
    /// enough that pressure reacts within tens of windows.
    pub const BUDGETS_PER_WINDOW: u64 = 32;

    /// A monitor whose window derives deterministically from the spec's
    /// budget (`budget ×` [`PressureMonitor::BUDGETS_PER_WINDOW`]) — the
    /// one-knob constructor config structs use.
    pub fn for_spec(spec: SloSpec) -> Self {
        PressureMonitor::new(spec, spec.budget * Self::BUDGETS_PER_WINDOW)
    }

    /// A monitor judging `spec` over fixed virtual `window`s, with
    /// default hysteresis.
    pub fn new(spec: SloSpec, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "pressure window must be non-zero");
        let config = HealthConfig::default();
        PressureMonitor {
            spec,
            window,
            min_samples: config.min_samples,
            next_epoch: 0,
            current: LogHistogram::new(),
            machine: HealthMachine::new(&config),
        }
    }

    /// Records one service observation into the open window.
    pub fn observe(&mut self, duration: SimDuration) {
        self.current.record(duration);
    }

    /// Closes any window completed by `now` and returns the (possibly
    /// updated) verdict.
    pub fn advance(&mut self, now: SimInstant) -> HealthState {
        let current_epoch =
            now.duration_since(SimInstant::EPOCH).as_nanos() / self.window.as_nanos();
        if current_epoch > self.next_epoch {
            if !self.current.is_empty() {
                let breached = self.current.count() >= self.min_samples
                    && self.current.percentile(self.spec.q()).as_nanos()
                        > self.spec.budget.as_nanos();
                self.machine.step(breached);
                self.current = LogHistogram::new();
            }
            self.next_epoch = current_epoch;
        }
        self.machine.state()
    }

    /// Current verdict without advancing.
    pub fn state(&self) -> HealthState {
        self.machine.state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryConfig;
    use perisec_tz::time::SimClock;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn machine_hysteresis_demotes_and_recovers_one_level_at_a_time() {
        let config = HealthConfig {
            degraded_after: 2,
            critical_after: 2,
            healthy_after: 2,
            ..HealthConfig::default()
        };
        let mut machine = HealthMachine::new(&config);
        assert_eq!(machine.step(true), None, "one breach is not a streak");
        assert_eq!(
            machine.step(true),
            Some((HealthState::Healthy, HealthState::Degraded))
        );
        assert_eq!(machine.step(true), None);
        assert_eq!(
            machine.step(true),
            Some((HealthState::Degraded, HealthState::Critical))
        );
        assert_eq!(machine.step(true), None, "Critical is terminal downward");
        // A single clean epoch between breaches resets the breach streak.
        assert_eq!(machine.step(false), None);
        assert_eq!(
            machine.step(false),
            Some((HealthState::Critical, HealthState::Degraded))
        );
        assert_eq!(machine.step(false), None);
        assert_eq!(
            machine.step(false),
            Some((HealthState::Degraded, HealthState::Healthy))
        );
        assert_eq!(machine.step(false), None);
        assert_eq!(machine.state(), HealthState::Healthy);
    }

    fn monitored_device(
        device: usize,
        sink: &HealthSink,
        config: &HealthConfig,
        slow_epochs: std::ops::Range<u64>,
    ) {
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut monitor = DeviceHealthMonitor::new(device, config.clone(), sink.clone());
        // 12 epochs of 1 ms, four spans each; "slow" epochs run 1.5x over
        // the 100 µs budget.
        for epoch in 0..12u64 {
            for _ in 0..4 {
                let cost = if slow_epochs.contains(&epoch) {
                    150
                } else {
                    50
                };
                {
                    let _span = tracer.span("stage.filter");
                    clock.advance(us(cost));
                }
                monitor.advance(clock.now(), &tracer);
            }
            clock.advance_to(SimInstant::EPOCH + SimDuration::from_millis(epoch + 1));
            monitor.advance(clock.now(), &tracer);
        }
        monitor.finish(clock.now(), &tracer);
    }

    #[test]
    fn monitors_fire_deterministic_alerts_and_fold_into_the_sink() {
        let config = HealthConfig {
            window: SimDuration::from_millis(1),
            slos: vec![SloSpec::p99("stage.filter", us(100))],
            degraded_after: 2,
            healthy_after: 2,
            regression_factor_pct: 250,
            ..HealthConfig::default()
        };
        let run = || {
            let sink = FleetHealth::sink(config.window);
            // Device 1 degrades in epochs 4..8; device 0 stays healthy.
            monitored_device(0, &sink, &config, 0..0);
            monitored_device(1, &sink, &config, 4..8);
            let fleet = sink.lock();
            fleet.report()
        };
        let report = run();
        assert_eq!(report.devices, 2);
        assert_eq!(report.healthy, 2, "device 1 recovered by end of run");
        // Breaches in every slow epoch, one Degraded transition after the
        // two-epoch streak, one regression on the 50->150 µs jump, and a
        // recovery transition after two clean epochs.
        assert_eq!(report.alerts_of("slo_breach"), 4);
        assert_eq!(report.transitions_to(HealthState::Degraded), 1);
        assert_eq!(report.alerts_of("latency_regression"), 1);
        assert_eq!(report.transitions_to(HealthState::Healthy), 1);
        assert!(
            report.alerts.iter().all(|a| a.device == 1),
            "device 0 raised nothing"
        );
        // Alert instants are epoch boundaries of virtual time.
        for alert in &report.alerts {
            assert_eq!(
                alert.at,
                SimInstant::EPOCH + config.window * (alert.epoch + 1)
            );
        }
        // Epoch slices saw both devices.
        assert_eq!(report.epochs.slice(0).unwrap().devices, 2);
        // The whole plane is a pure function of the workload: a second
        // run (device order swapped by the closure) is byte-identical.
        let again = run();
        assert_eq!(report.alert_journal_json(), again.alert_journal_json());
        assert_eq!(report.to_json(), again.to_json());
        assert!(report.to_table().contains("state_change"));
    }

    #[test]
    fn stall_and_payload_detectors_fire() {
        let config = HealthConfig {
            window: SimDuration::from_millis(1),
            stall_epochs: 3,
            expect_zero_payload: true,
            ..HealthConfig::default()
        };
        let sink = FleetHealth::sink(config.window);
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut monitor = DeviceHealthMonitor::new(7, config.clone(), sink.clone());
        // One active epoch that also leaks payload bytes...
        tracer.count("relay.payload_bytes", 2048);
        clock.advance(SimDuration::from_millis(1));
        monitor.advance(clock.now(), &tracer);
        // ...then silence for five epochs.
        clock.advance(SimDuration::from_millis(5));
        monitor.advance(clock.now(), &tracer);
        monitor.finish(clock.now(), &tracer);
        let report = sink.lock().report();
        assert_eq!(report.alerts_of("payload_leak"), 1);
        assert_eq!(
            report.alerts_of("device_stalled"),
            1,
            "fires once, at the streak"
        );
        assert_eq!(report.healthy, 1, "anomalies alert without demoting");
    }

    #[test]
    fn retry_storm_detector_fires_on_threshold() {
        let config = HealthConfig {
            window: SimDuration::from_millis(1),
            retry_storm_threshold: 10,
            ..HealthConfig::default()
        };
        let sink = FleetHealth::sink(config.window);
        let clock = SimClock::new();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut monitor = DeviceHealthMonitor::new(3, config.clone(), sink.clone());
        // Epoch 0: a handful of retries, below the threshold.
        tracer.count("relay.retries", 9);
        clock.advance(SimDuration::from_millis(1));
        monitor.advance(clock.now(), &tracer);
        // Epoch 1: a storm.
        tracer.count("relay.retries", 10);
        clock.advance(SimDuration::from_millis(1));
        monitor.advance(clock.now(), &tracer);
        monitor.finish(clock.now(), &tracer);
        let report = sink.lock().report();
        assert_eq!(report.alerts_of("retry_storm"), 1);
        let storm = report
            .alerts
            .iter()
            .find(|a| a.kind.label() == "retry_storm")
            .unwrap();
        assert_eq!(storm.epoch, 1);
        assert!(storm.detail.contains("10 relay retransmissions"));
        assert_eq!(report.healthy, 1, "a storm alerts without demoting");
    }

    #[test]
    fn pressure_monitor_tracks_windowed_breaches() {
        let spec = SloSpec::p95("service", us(100));
        // The derived window is a pure function of the spec's budget.
        assert_eq!(
            PressureMonitor::for_spec(spec).window,
            us(100) * PressureMonitor::BUDGETS_PER_WINDOW
        );
        let mut monitor = PressureMonitor::new(spec, SimDuration::from_millis(1));
        let clock = SimClock::new();
        // Healthy window.
        for _ in 0..8 {
            monitor.observe(us(40));
        }
        clock.advance(SimDuration::from_millis(1));
        assert_eq!(monitor.advance(clock.now()), HealthState::Healthy);
        // Breaching window demotes (degraded_after defaults to 1).
        for _ in 0..8 {
            monitor.observe(us(400));
        }
        clock.advance(SimDuration::from_millis(1));
        assert_eq!(monitor.advance(clock.now()), HealthState::Degraded);
        // Idle windows freeze the verdict rather than healing it.
        clock.advance(SimDuration::from_millis(4));
        assert_eq!(monitor.advance(clock.now()), HealthState::Degraded);
        // Two clean windows step back to Healthy.
        for round in 0..2 {
            for _ in 0..8 {
                monitor.observe(us(30));
            }
            clock.advance(SimDuration::from_millis(1));
            let state = monitor.advance(clock.now());
            if round == 1 {
                assert_eq!(state, HealthState::Healthy);
            }
        }
    }
}
