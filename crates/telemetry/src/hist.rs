//! Bounded log-bucket latency histograms.
//!
//! A device may process an unbounded number of windows, but its latency
//! distribution must fit in fixed memory: 64 power-of-two nanosecond
//! buckets (bucket `i` counts durations with `floor(log2(ns)) == i`; a
//! zero-length duration lands in bucket 0). That covers 1 ns to ~584
//! years at a constant ~2x resolution — the right trade for latency
//! percentiles, where relative error matters and absolute error does not.
//!
//! Merging is elementwise addition, so it is **commutative and
//! associative**: folding 10k device histograms produces the same fleet
//! histogram in any completion order and on any worker count, which is
//! what lets fleet telemetry ride alongside the byte-identical
//! `FleetReport` contract (pinned by the merge-commutativity proptest in
//! `tests/properties.rs`).

use serde::{value::Value, Serialize};

use perisec_tz::time::SimDuration;

/// Number of buckets: one per possible `floor(log2(ns))` of a `u64`.
pub const BUCKETS: usize = 64;

/// A fixed-memory latency histogram over virtual durations.
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ns: u128,
    max_ns: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p99", &self.percentile(0.99))
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

/// Bucket index of a duration: `floor(log2(max(ns, 1)))`.
fn bucket_of(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros()) as usize
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram::default()
    }

    /// Records one duration.
    pub fn record(&mut self, duration: SimDuration) {
        let ns = duration.as_nanos();
        self.buckets[bucket_of(ns)] += 1;
        self.count += 1;
        self.total_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The largest recorded duration.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_ns / self.count as u128) as u64)
    }

    /// Nearest-rank `q`-percentile estimate (0 < q <= 1).
    ///
    /// The estimate is the **upper edge** of the log2 bucket holding the
    /// rank, clamped to the recorded maximum. Because a bucket spans
    /// `[2^i, 2^(i+1))` nanoseconds, the upper-edge convention
    /// *overestimates* by at most 2x (never underestimates): an SLO
    /// verdict built on it errs toward flagging, not toward missing, a
    /// breach. The estimate is deterministic for a given multiset of
    /// recorded durations, in any recording order.
    ///
    /// Edge cases: an empty histogram reports `0` at every `q`;
    /// zero-length durations land in bucket 0 and clamp to the true
    /// maximum (so an all-zero series reports `0`, not bucket 0's upper
    /// edge of 1 ns); durations near `u64::MAX` ns saturate into the top
    /// bucket, whose upper edge is `u64::MAX` itself; a non-finite `q`
    /// (NaN, ±inf) is treated as `q = 1.0` (the maximum) rather than
    /// poisoning the rank arithmetic.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = if q.is_finite() {
            q.clamp(0.0, 1.0)
        } else {
            1.0
        };
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
                return SimDuration::from_nanos(upper.min(self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Elementwise merge: `self` absorbs every recording of `other`.
    /// Commutative and associative — the fleet-fold property.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// The elementwise difference `self - baseline`, for cutting a
    /// cumulative histogram into a per-epoch delta: with `baseline` an
    /// earlier snapshot of the same monotonically growing histogram, the
    /// result holds exactly the recordings made in between.
    ///
    /// `LogHistogram` is plain value state (no heap), so the subtraction
    /// writes into `out` without allocating — the epoch-cut steady path.
    /// One field is approximate: the true maximum *within* the window is
    /// not recoverable from two cumulative maxima, so the delta carries
    /// the cumulative `max_ns` — an overestimate, consistent with the
    /// bucket-upper-edge convention of [`LogHistogram::percentile`]
    /// (which clamps to it, never exceeds it).
    pub fn delta_into(&self, baseline: &LogHistogram, out: &mut LogHistogram) {
        for (o, (cur, base)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(baseline.buckets.iter()))
        {
            *o = cur.saturating_sub(*base);
        }
        out.count = self.count.saturating_sub(baseline.count);
        out.total_ns = self.total_ns.saturating_sub(baseline.total_ns);
        out.max_ns = self.max_ns;
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, for sparse
    /// export.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }

    /// In-memory footprint of one histogram — the per-name cost a device
    /// pays, fixed regardless of event count.
    pub const fn memory_bytes() -> usize {
        std::mem::size_of::<LogHistogram>()
    }
}

impl Serialize for LogHistogram {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".to_owned(), Value::UInt(self.count as u128)),
            (
                "mean_ns".to_owned(),
                Value::UInt(self.mean().as_nanos() as u128),
            ),
            (
                "p50_ns".to_owned(),
                Value::UInt(self.percentile(0.50).as_nanos() as u128),
            ),
            (
                "p95_ns".to_owned(),
                Value::UInt(self.percentile(0.95).as_nanos() as u128),
            ),
            (
                "p99_ns".to_owned(),
                Value::UInt(self.percentile(0.99).as_nanos() as u128),
            ),
            ("max_ns".to_owned(), Value::UInt(self.max_ns as u128)),
            (
                "buckets".to_owned(),
                Value::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(i, n)| {
                            Value::Array(vec![Value::UInt(i as u128), Value::UInt(n as u128)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    #[test]
    fn buckets_follow_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn statistics_track_recordings() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
        for n in 1..=100u64 {
            h.record(us(n));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), us(100));
        assert_eq!(h.mean(), SimDuration::from_nanos(50_500));
        // The p99 estimate is within one bucket (2x) of the true value and
        // never above the recorded maximum.
        let p99 = h.percentile(0.99).as_nanos();
        assert!((99_000..=100_000).contains(&p99), "p99 estimate {p99}");
        let p50 = h.percentile(0.50).as_nanos();
        assert!((50_000..=100_000).contains(&p50), "p50 estimate {p50}");
        assert!(p50 <= 65_535 * 2, "p50 estimate beyond 2x: {p50}");
    }

    #[test]
    fn merge_is_commutative_and_matches_single_pass() {
        let mut all = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for n in 1..=60u64 {
            all.record(us(n * 3));
            if n % 2 == 0 {
                left.record(us(n * 3));
            } else {
                right.record(us(n * 3));
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl);
        assert_eq!(lr, all);
    }

    #[test]
    fn zero_duration_records_clamp_to_the_true_maximum() {
        // Zero-length durations land in bucket 0 (upper edge 1 ns), but
        // the percentile clamps to the recorded maximum, so an all-zero
        // series reports exactly zero at every rank.
        let mut h = LogHistogram::new();
        for _ in 0..10 {
            h.record(SimDuration::ZERO);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), SimDuration::ZERO);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.percentile(q), SimDuration::ZERO, "q={q}");
        }
        // One real recording alongside the zeros: p50 stays in bucket 0
        // (clamped at 1 ns), the top rank finds the outlier.
        h.record(us(3));
        assert_eq!(h.percentile(0.5), SimDuration::from_nanos(1));
        assert_eq!(h.percentile(1.0), us(3));
    }

    #[test]
    fn top_bucket_saturates_without_overflow() {
        // Durations near u64::MAX ns land in bucket 63, whose upper edge
        // is u64::MAX itself — no shift overflow, no wrap to zero.
        let mut h = LogHistogram::new();
        h.record(SimDuration::from_nanos(u64::MAX));
        h.record(SimDuration::from_nanos(u64::MAX - 1));
        h.record(SimDuration::from_nanos(1 << 63));
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), SimDuration::from_nanos(u64::MAX));
        assert_eq!(h.percentile(0.99), SimDuration::from_nanos(u64::MAX));
        assert_eq!(h.nonzero_buckets(), vec![(63, 3)]);
    }

    #[test]
    fn non_finite_percentile_requests_degrade_to_the_maximum() {
        let mut h = LogHistogram::new();
        for n in 1..=8u64 {
            h.record(us(n));
        }
        let max = h.percentile(1.0);
        assert_eq!(h.percentile(f64::NAN), max);
        assert_eq!(h.percentile(f64::INFINITY), max);
        assert_eq!(h.percentile(f64::NEG_INFINITY), max);
        assert!(h.percentile(f64::NAN) > SimDuration::ZERO);
    }

    #[test]
    fn delta_recovers_the_recordings_between_two_snapshots() {
        let mut h = LogHistogram::new();
        for n in 1..=20u64 {
            h.record(us(n));
        }
        let baseline = h.clone();
        for n in 100..=140u64 {
            h.record(us(n));
        }
        let mut delta = LogHistogram::new();
        h.delta_into(&baseline, &mut delta);
        assert_eq!(delta.count(), 41);
        // The delta holds exactly the in-between recordings...
        let mut expected = LogHistogram::new();
        for n in 100..=140u64 {
            expected.record(us(n));
        }
        assert_eq!(delta.nonzero_buckets(), expected.nonzero_buckets());
        assert_eq!(delta.mean(), expected.mean());
        // ...except max_ns, which is the documented cumulative
        // overestimate (and here coincides with the window's true max).
        assert_eq!(delta.max(), us(140));
        // baseline + delta == cumulative (the fold identity).
        let mut rebuilt = baseline.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
        // Delta against itself is empty, reusing the same out slot.
        let snapshot = h.clone();
        h.delta_into(&snapshot, &mut delta);
        assert!(delta.is_empty());
    }

    #[test]
    fn serialization_is_sparse_and_carries_percentiles() {
        let mut h = LogHistogram::new();
        h.record(us(10));
        h.record(us(10));
        let value = h.to_value();
        let json = serde_json::to_string(&value).unwrap();
        assert!(json.contains("p99_ns"));
        assert!(json.contains("\"count\": 2") || json.contains("\"count\":2"));
        // One distinct bucket recorded twice.
        let buckets = value.field("buckets").unwrap().as_array().unwrap();
        assert_eq!(buckets.len(), 1);
    }
}
