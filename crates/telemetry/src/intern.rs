//! The shared string-interning table.
//!
//! Tracing hot paths must not allocate per event. Span names are
//! `&'static str` literals already; the kernel function tracer, the TCB
//! analysis and deserialized trace logs deal in *dynamic* strings, and
//! [`intern`] folds those into the same static-lifetime world: the first
//! sighting of a name leaks one boxed copy, every later sighting returns
//! the shared `&'static str` with no allocation. [`Symbol`] is the
//! copyable handle the rest of the workspace stores.

use std::collections::BTreeSet;
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::{value::Value, Deserialize, Serialize};

fn table() -> &'static Mutex<BTreeSet<&'static str>> {
    static TABLE: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Interns `name`: returns the one shared `&'static str` with these
/// contents, allocating only on the first sighting of a given name. The
/// table only ever grows; the set of distinct trace/span names in this
/// workspace is small and static, which is the regime interning is for.
pub fn intern(name: &str) -> &'static str {
    let mut entries = table().lock();
    if let Some(existing) = entries.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    entries.insert(leaked);
    leaked
}

/// A copyable interned string: 8 bytes, no per-event allocation, ordinary
/// string semantics for comparison, hashing and serialization.
#[derive(Clone, Copy)]
pub struct Symbol(&'static str);

impl Symbol {
    /// Interns `name` and wraps the shared copy.
    pub fn new(name: &str) -> Self {
        Symbol(intern(name))
    }

    /// The empty symbol (no interning needed — `""` is already static).
    pub const fn empty() -> Self {
        Symbol("")
    }

    /// The string contents.
    pub fn as_str(&self) -> &'static str {
        self.0
    }

    /// Whether this is the empty symbol.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Symbol {
    fn default() -> Self {
        Symbol::empty()
    }
}

impl From<&str> for Symbol {
    fn from(name: &str) -> Self {
        Symbol::new(name)
    }
}

impl std::ops::Deref for Symbol {
    type Target = str;
    fn deref(&self) -> &str {
        self.0
    }
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality would hold for symbols minted via `intern`, but
        // content equality also covers `Symbol::empty` and costs nothing
        // measurable at these lengths.
        self.0 == other.0
    }
}

impl Eq for Symbol {}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl Serialize for Symbol {
    fn to_value(&self) -> Value {
        Value::Str(self.0.to_owned())
    }
}

impl Deserialize for Symbol {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        match value {
            Value::Str(s) => Ok(Symbol::new(s)),
            other => Err(serde::Error::custom(format!(
                "expected string symbol, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_to_one_static_pointer() {
        let a = intern("telemetry_test_fn_a");
        let b = intern(&String::from("telemetry_test_fn_a"));
        assert!(std::ptr::eq(a, b), "same contents must share one copy");
        assert_ne!(intern("telemetry_test_fn_b"), a);
    }

    #[test]
    fn symbols_behave_like_strings() {
        let s = Symbol::new("hw_params");
        assert_eq!(s.as_str(), "hw_params");
        assert_eq!(s, Symbol::new("hw_params"));
        assert!(Symbol::new("a") < Symbol::new("b"));
        assert_eq!(format!("{s}"), "hw_params");
        assert_eq!(&*s, "hw_params");
        assert!(Symbol::empty().is_empty());
        assert_eq!(Symbol::default(), Symbol::empty());
    }

    #[test]
    fn symbols_round_trip_through_serde() {
        let s = Symbol::new("trigger_start");
        let value = s.to_value();
        assert_eq!(value.as_str(), Some("trigger_start"));
        let back = Symbol::from_value(&value).unwrap();
        assert_eq!(back, s);
        assert!(std::ptr::eq(back.as_str(), s.as_str()));
        assert!(Symbol::from_value(&Value::UInt(3)).is_err());
    }
}
