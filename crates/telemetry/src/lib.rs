//! # perisec-telemetry — the fleet observability plane
//!
//! Every performance and privacy claim in this workspace is a *measured*
//! claim, and before this crate the measurements were scattered:
//! `TzStats` atomics in the machine model, a kernel-only function tracer,
//! per-experiment ad-hoc tables. This crate is the one substrate they
//! share:
//!
//! * [`span::Tracer`] — a **virtual-time span tracer**. Spans read the
//!   device's [`perisec_tz::time::SimClock`], so traces are deterministic
//!   and reproducible: the same scenario produces the same trace on any
//!   host, at any worker count. A disabled tracer is a `None` — creating
//!   a span is a single branch and no allocation.
//! * [`hist::LogHistogram`] — **bounded** power-of-two-bucket latency
//!   histograms: fixed memory per device regardless of how many events a
//!   scenario produces, and an elementwise (commutative, associative)
//!   merge so 10k+ device histograms fold into one fleet histogram in
//!   any completion order.
//! * [`fleet::FleetTelemetry`] — the order-invariant fleet fold of
//!   per-device [`fleet::DeviceTelemetry`] snapshots, plus its JSON
//!   export.
//! * [`export`] — chrome-trace (`chrome://tracing` / Perfetto) JSON for
//!   single-device deep dives and folded-stack flamegraph text.
//! * [`intern`] — the shared `&'static str` symbol table behind both the
//!   kernel function tracer's event names and dynamic telemetry labels.
//! * [`epoch`] + [`health`] — the **live fleet health plane**: fixed
//!   virtual-time epoch windows cut from each device's cumulative
//!   telemetry, per-span [`health::SloSpec`] objectives judged by a
//!   hysteresis state machine (Healthy → Degraded → Critical),
//!   deterministic anomaly detectors, and an append-only virtual-time
//!   alert journal — byte-identical at any worker count, like every
//!   other artifact here.

pub mod epoch;
pub mod export;
pub mod fleet;
pub mod health;
pub mod hist;
pub mod intern;
pub mod span;

pub use epoch::{EpochCutter, FleetEpochs};
pub use fleet::{DeviceTelemetry, FleetTelemetry};
pub use health::{
    Alert, AlertKind, DeviceHealthMonitor, FleetHealth, FleetHealthReport, HealthConfig,
    HealthMachine, HealthSink, HealthState, PressureMonitor, SloSpec,
};
pub use hist::LogHistogram;
pub use intern::{intern, Symbol};
pub use span::{Span, SpanEvent, Tracer};

/// Per-pipeline telemetry switchboard. Defaults to fully off: a default
/// config costs one branch per would-be span and nothing else.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch: when false the tracer is a `None` and every span,
    /// counter and histogram call is a no-op.
    pub enabled: bool,
    /// Whether to retain individual span events (needed for chrome-trace
    /// and flamegraph export). Histograms and counters are always
    /// maintained while `enabled`; span retention is opt-in because it is
    /// the one part whose memory grows with scenario length — bounded by
    /// [`TelemetryConfig::max_span_events`].
    pub capture_spans: bool,
    /// Hard cap on retained span events; spans past the cap are counted
    /// as dropped, never stored.
    pub max_span_events: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            capture_spans: false,
            max_span_events: 1 << 16,
        }
    }
}

impl TelemetryConfig {
    /// Histograms and counters on, span retention off — the fleet
    /// configuration (fixed memory per device).
    pub fn metrics() -> Self {
        TelemetryConfig {
            enabled: true,
            ..TelemetryConfig::default()
        }
    }

    /// Everything on, including span retention — the single-device
    /// deep-dive configuration behind chrome-trace dumps.
    pub fn tracing() -> Self {
        TelemetryConfig {
            enabled: true,
            capture_spans: true,
            ..TelemetryConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_fully_off() {
        let config = TelemetryConfig::default();
        assert!(!config.enabled);
        assert!(!config.capture_spans);
        assert!(config.max_span_events > 0);
        assert!(TelemetryConfig::metrics().enabled);
        assert!(!TelemetryConfig::metrics().capture_spans);
        assert!(TelemetryConfig::tracing().capture_spans);
    }
}
