//! The virtual-time span tracer.
//!
//! A [`Tracer`] is shared (cheaply cloned) by every layer of one device's
//! stack — pipeline stages, the TEE core's SMC path, the TAs' inference
//! stages — and timestamps spans off the device's own
//! [`SimClock`](perisec_tz::time::SimClock). Virtual time is deterministic,
//! so the resulting trace is too: the same scenario yields the same spans
//! with the same durations on any host, at any executor worker count.
//!
//! Every span always lands in a bounded per-name [`LogHistogram`] and a
//! per-name counter. Retaining the individual [`SpanEvent`]s (for
//! chrome-trace / flamegraph export) is opt-in via
//! [`TelemetryConfig::capture_spans`] and capped at
//! [`TelemetryConfig::max_span_events`].
//!
//! A disabled tracer is `None` inside: [`Tracer::span`] is one branch, no
//! lock, no allocation — the zero-cost-when-off contract E18 measures.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use perisec_tz::time::{SimClock, SimDuration, SimInstant};

use crate::fleet::DeviceTelemetry;
use crate::hist::LogHistogram;
use crate::TelemetryConfig;

/// One completed span: a named interval of virtual time, with the index
/// of its enclosing span (chrome-trace nesting and flamegraph stacks are
/// reconstructed from `parent`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (see the span taxonomy in the README).
    pub name: &'static str,
    /// Virtual start instant.
    pub start: SimInstant,
    /// Virtual end instant.
    pub end: SimInstant,
    /// Index of the enclosing span in the same trace, if any.
    pub parent: Option<u32>,
}

impl SpanEvent {
    /// The span's virtual duration.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

#[derive(Default)]
struct TraceState {
    histograms: BTreeMap<&'static str, LogHistogram>,
    counters: BTreeMap<&'static str, u64>,
    spans: Vec<SpanEvent>,
    stack: Vec<u32>,
    dropped_spans: u64,
}

struct TracerInner {
    clock: SimClock,
    capture_spans: bool,
    max_span_events: usize,
    state: Mutex<TraceState>,
}

/// The span tracer. Cheap to clone; clones share state, which is how one
/// device's pipeline, TEE core and TAs write into a single trace.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("Tracer(disabled)"),
            Some(inner) => {
                let state = inner.state.lock();
                f.debug_struct("Tracer")
                    .field("names", &state.histograms.len())
                    .field("spans", &state.spans.len())
                    .finish()
            }
        }
    }
}

impl Tracer {
    /// The disabled tracer: every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// A tracer over `clock` per `config` (disabled when
    /// `config.enabled` is false).
    pub fn new(clock: SimClock, config: &TelemetryConfig) -> Self {
        if !config.enabled {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(TracerInner {
                clock,
                capture_spans: config.capture_spans,
                max_span_events: config.max_span_events,
                state: Mutex::new(TraceState::default()),
            })),
        }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span named `name`. The span closes (and records) when the
    /// returned guard drops. Disabled tracers return an inert guard.
    pub fn span(&self, name: &'static str) -> Span {
        let Some(inner) = &self.inner else {
            return Span {
                inner: None,
                name,
                start: SimInstant::EPOCH,
                index: None,
            };
        };
        let start = inner.clock.now();
        let mut index = None;
        if inner.capture_spans {
            let mut state = inner.state.lock();
            if state.spans.len() < inner.max_span_events {
                let parent = state.stack.last().copied();
                let i = state.spans.len() as u32;
                state.spans.push(SpanEvent {
                    name,
                    start,
                    end: start,
                    parent,
                });
                state.stack.push(i);
                index = Some(i);
            } else {
                state.dropped_spans += 1;
            }
        }
        Span {
            inner: Some(Arc::clone(inner)),
            name,
            start,
            index,
        }
    }

    /// Adds `n` to the counter `name`.
    pub fn count(&self, name: &'static str, n: u64) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            *state.counters.entry(name).or_insert(0) += n;
        }
    }

    /// Records `duration` into the histogram `name` without opening a
    /// span (for durations measured elsewhere).
    pub fn observe(&self, name: &'static str, duration: SimDuration) {
        if let Some(inner) = &self.inner {
            let mut state = inner.state.lock();
            state.histograms.entry(name).or_default().record(duration);
        }
    }

    /// Copies out the accumulated telemetry.
    pub fn snapshot(&self) -> DeviceTelemetry {
        match &self.inner {
            None => DeviceTelemetry::default(),
            Some(inner) => {
                let state = inner.state.lock();
                DeviceTelemetry {
                    histograms: state.histograms.clone(),
                    counters: state.counters.clone(),
                    spans: state.spans.clone(),
                    dropped_spans: state.dropped_spans,
                }
            }
        }
    }

    /// Cuts an **epoch delta**: writes the metrics recorded since
    /// `baseline` into `delta`, then advances `baseline` to the current
    /// cumulative state. Both buffers are meant to be reused across cuts
    /// (reset `delta` with [`DeviceTelemetry::reset_metrics`] first):
    /// once every series name has appeared, a cut allocates nothing —
    /// histograms are plain value state and counters are `u64`s, so the
    /// diff is in-place assignment per named series.
    ///
    /// Retained span events are *not* diffed (they stay cumulative for
    /// the end-of-run [`Tracer::take`]); `delta.spans` is left untouched.
    /// Cutting does not consume: `take` still drains the full totals.
    pub fn cut_into(&self, baseline: &mut DeviceTelemetry, delta: &mut DeviceTelemetry) {
        let Some(inner) = &self.inner else {
            return;
        };
        let state = inner.state.lock();
        for (name, current) in &state.histograms {
            let base = baseline.histograms.entry(name).or_default();
            current.delta_into(base, delta.histograms.entry(name).or_default());
            *base = current.clone();
        }
        for (name, &current) in &state.counters {
            let base = baseline.counters.entry(name).or_insert(0);
            *delta.counters.entry(name).or_insert(0) = current.saturating_sub(*base);
            *base = current;
        }
        delta.dropped_spans = state.dropped_spans.saturating_sub(baseline.dropped_spans);
        baseline.dropped_spans = state.dropped_spans;
    }

    /// Drains the accumulated telemetry, leaving the tracer empty (the
    /// per-device hand-off into the fleet fold).
    pub fn take(&self) -> DeviceTelemetry {
        match &self.inner {
            None => DeviceTelemetry::default(),
            Some(inner) => {
                let mut state = inner.state.lock();
                let drained = std::mem::take(&mut *state);
                DeviceTelemetry {
                    histograms: drained.histograms,
                    counters: drained.counters,
                    spans: drained.spans,
                    dropped_spans: drained.dropped_spans,
                }
            }
        }
    }
}

/// An open span; closing happens on drop. Spans are expected to nest
/// lexically (guards drop in reverse open order), which every
/// instrumentation site in the workspace satisfies by construction.
#[must_use = "a span records on drop; binding it to _ closes it immediately"]
pub struct Span {
    inner: Option<Arc<TracerInner>>,
    name: &'static str,
    start: SimInstant,
    index: Option<u32>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let end = inner.clock.now();
        let mut state = inner.state.lock();
        if let Some(index) = self.index {
            if let Some(event) = state.spans.get_mut(index as usize) {
                event.end = end;
            }
            // Unwind the stack through this span (tolerates a child guard
            // leaked past its parent rather than corrupting parentage).
            while let Some(top) = state.stack.pop() {
                if top == index {
                    break;
                }
            }
        }
        state
            .histograms
            .entry(self.name)
            .or_default()
            .record(end.duration_since(self.start));
        *state.counters.entry(self.name).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        {
            let _span = tracer.span("stage.capture");
            tracer.count("events", 3);
            tracer.observe("latency", SimDuration::from_micros(5));
        }
        let snapshot = tracer.snapshot();
        assert!(snapshot.histograms.is_empty());
        assert!(snapshot.counters.is_empty());
        assert!(snapshot.spans.is_empty());
        // A config with enabled=false behaves identically.
        let off = Tracer::new(clock(), &TelemetryConfig::default());
        assert!(!off.is_enabled());
    }

    #[test]
    fn spans_measure_virtual_time() {
        let clock = clock();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        {
            let _span = tracer.span("stage.filter");
            clock.advance(SimDuration::from_micros(7));
        }
        let snapshot = tracer.snapshot();
        let hist = &snapshot.histograms["stage.filter"];
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), SimDuration::from_micros(7));
        assert_eq!(snapshot.counters["stage.filter"], 1);
        // Metrics mode retains no individual events.
        assert!(snapshot.spans.is_empty());
        assert_eq!(snapshot.dropped_spans, 0);
    }

    #[test]
    fn captured_spans_nest_via_parent_indices() {
        let clock = clock();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::tracing());
        {
            let _outer = tracer.span("smc.call");
            clock.advance(SimDuration::from_micros(1));
            {
                let _inner = tracer.span("ta.classify");
                clock.advance(SimDuration::from_micros(2));
            }
            clock.advance(SimDuration::from_micros(1));
        }
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.spans.len(), 2);
        let outer = &snapshot.spans[0];
        let inner = &snapshot.spans[1];
        assert_eq!(outer.name, "smc.call");
        assert_eq!(outer.parent, None);
        assert_eq!(outer.duration(), SimDuration::from_micros(4));
        assert_eq!(inner.name, "ta.classify");
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.duration(), SimDuration::from_micros(2));
    }

    #[test]
    fn span_capture_is_bounded() {
        let clock = clock();
        let config = TelemetryConfig {
            max_span_events: 3,
            ..TelemetryConfig::tracing()
        };
        let tracer = Tracer::new(clock.clone(), &config);
        for _ in 0..5 {
            let _span = tracer.span("stage.capture");
            clock.advance(SimDuration::from_nanos(10));
        }
        let snapshot = tracer.snapshot();
        assert_eq!(snapshot.spans.len(), 3);
        assert_eq!(snapshot.dropped_spans, 2);
        // Histograms still saw every span.
        assert_eq!(snapshot.histograms["stage.capture"].count(), 5);
    }

    #[test]
    fn take_drains_state() {
        let clock = clock();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        tracer.count("windows", 4);
        let first = tracer.take();
        assert_eq!(first.counters["windows"], 4);
        assert!(tracer.take().counters.is_empty());
    }

    #[test]
    fn epoch_cuts_diff_without_consuming() {
        let clock = clock();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let mut baseline = DeviceTelemetry::default();
        let mut delta = DeviceTelemetry::default();
        {
            let _span = tracer.span("stage.filter");
            clock.advance(SimDuration::from_micros(2));
        }
        tracer.count("pipeline.windows", 3);
        tracer.cut_into(&mut baseline, &mut delta);
        assert_eq!(delta.histograms["stage.filter"].count(), 1);
        assert_eq!(delta.counters["pipeline.windows"], 3);

        // Second epoch: reset the scratch, record more, cut again — the
        // delta holds only the new recordings.
        delta.reset_metrics();
        {
            let _span = tracer.span("stage.filter");
            clock.advance(SimDuration::from_micros(4));
        }
        tracer.cut_into(&mut baseline, &mut delta);
        assert_eq!(delta.histograms["stage.filter"].count(), 1);
        assert_eq!(
            delta.histograms["stage.filter"].mean(),
            SimDuration::from_micros(4)
        );
        assert_eq!(delta.counters["pipeline.windows"], 0);
        assert!(!delta.is_quiet());

        // An idle epoch cuts to all-zero values (quiet, not empty).
        delta.reset_metrics();
        tracer.cut_into(&mut baseline, &mut delta);
        assert!(delta.is_quiet());
        assert!(!delta.is_empty());

        // Cuts never consume: take() still drains the full totals.
        let total = tracer.take();
        assert_eq!(total.histograms["stage.filter"].count(), 2);
        assert_eq!(total.counters["pipeline.windows"], 3);
    }

    #[test]
    fn clones_share_state() {
        let clock = clock();
        let tracer = Tracer::new(clock.clone(), &TelemetryConfig::metrics());
        let clone = tracer.clone();
        clone.count("shared", 1);
        assert_eq!(tracer.snapshot().counters["shared"], 1);
    }
}
