//! Calibrated latency cost model.
//!
//! The paper's performance concerns (§III, §V) are dominated by a handful of
//! mechanisms: secure monitor calls, full world switches, cross-world buffer
//! copies, secure-memory management and supplicant RPCs. The [`CostModel`]
//! assigns a latency to each of these; the default values are calibrated
//! against published OP-TEE / TrustZone measurements on Armv8 application
//! cores (Göttel et al. DAIS'19 report OP-TEE session open in the hundreds
//! of microseconds and command invocation round trips in the tens of
//! microseconds on comparable hardware; raw SMC round trips are single-digit
//! microseconds).
//!
//! The absolute values matter less than their *ratios*: experiments report
//! relative overheads (secure vs. normal-world pipelines), which is the
//! property the model is designed to preserve.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Latency parameters for the TrustZone machine model.
///
/// Construct with [`CostModel::jetson_agx_xavier`] (the paper's platform),
/// [`CostModel::constrained_mcu`] (a much weaker IoT node, used in
/// sensitivity experiments), or [`CostModel::builder`] for custom values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Raw SMC trap into the secure monitor and back (no OP-TEE work).
    pub smc_round_trip: SimDuration,
    /// A full world switch: bank registers, switch translation tables,
    /// signal the other world's scheduler.
    pub world_switch: SimDuration,
    /// Fixed overhead of dispatching a command to a pseudo TA once already
    /// in the secure world.
    pub pta_dispatch: SimDuration,
    /// Fixed overhead of dispatching a command to a user-mode TA (includes
    /// the secure user/kernel transition).
    pub ta_dispatch: SimDuration,
    /// Opening a TEE session (TA lookup, instance creation bookkeeping).
    pub session_open: SimDuration,
    /// A supplicant RPC round trip (secure world -> normal-world daemon ->
    /// secure world), excluding the world switches themselves which are
    /// charged separately.
    pub supplicant_rpc: SimDuration,
    /// Per-byte cost of copying data across the world boundary (shared
    /// memory staging plus cache maintenance).
    pub cross_world_copy_per_byte: SimDuration,
    /// Per-byte cost of an ordinary in-world memory copy.
    pub in_world_copy_per_byte: SimDuration,
    /// Allocating one secure page (TZASC bookkeeping + zeroing).
    pub secure_page_alloc: SimDuration,
    /// Taking an interrupt in the normal world.
    pub irq_entry: SimDuration,
    /// Taking a secure (FIQ-routed) interrupt in the secure world.
    pub secure_irq_entry: SimDuration,
    /// Per-byte cost of one multiply-accumulate-bound ML operation executed
    /// by the CPU in the normal world. Secure-world execution is scaled by
    /// [`CostModel::secure_compute_penalty`].
    pub compute_per_flop: SimDuration,
    /// Multiplier applied to compute executed inside the TEE (smaller
    /// caches available to the secure partition, no GPU offload).
    pub secure_compute_penalty: f64,
}

impl CostModel {
    /// Cost model calibrated for a Jetson-AGX-Xavier-class Armv8.2 platform,
    /// the development kit used by the paper's proof of concept.
    pub fn jetson_agx_xavier() -> Self {
        CostModel {
            smc_round_trip: SimDuration::from_nanos(2_500),
            world_switch: SimDuration::from_nanos(4_000),
            pta_dispatch: SimDuration::from_nanos(1_200),
            ta_dispatch: SimDuration::from_nanos(9_000),
            session_open: SimDuration::from_micros(350),
            supplicant_rpc: SimDuration::from_micros(18),
            cross_world_copy_per_byte: SimDuration::from_nanos(2),
            in_world_copy_per_byte: SimDuration::from_nanos(0),
            secure_page_alloc: SimDuration::from_micros(3),
            irq_entry: SimDuration::from_nanos(800),
            secure_irq_entry: SimDuration::from_nanos(1_500),
            compute_per_flop: SimDuration::from_nanos(1),
            secure_compute_penalty: 1.35,
        }
    }

    /// Cost model for a much weaker, microcontroller-class IoT node.
    ///
    /// Used by sensitivity experiments to show how the trade-offs shift when
    /// the platform is slower: every fixed cost grows and the secure compute
    /// penalty is steeper because the secure partition loses a larger share
    /// of an already small cache.
    pub fn constrained_mcu() -> Self {
        CostModel {
            smc_round_trip: SimDuration::from_micros(12),
            world_switch: SimDuration::from_micros(25),
            pta_dispatch: SimDuration::from_micros(6),
            ta_dispatch: SimDuration::from_micros(40),
            session_open: SimDuration::from_millis(2),
            supplicant_rpc: SimDuration::from_micros(120),
            cross_world_copy_per_byte: SimDuration::from_nanos(12),
            in_world_copy_per_byte: SimDuration::from_nanos(2),
            secure_page_alloc: SimDuration::from_micros(15),
            irq_entry: SimDuration::from_micros(3),
            secure_irq_entry: SimDuration::from_micros(6),
            compute_per_flop: SimDuration::from_nanos(8),
            secure_compute_penalty: 1.8,
        }
    }

    /// Cost model for the quad-core IoT gateway ([`iot_quad_node`]
    /// spec in the platform module): an Armv8 node several times slower
    /// than the Jetson but far ahead of the microcontroller class. Every
    /// fixed TEE cost sits between the two presets, which is exactly the
    /// regime where sharding TA sessions across secure cores starts to
    /// pay: one core is outrun by a high-fps sensor, two keep up.
    pub fn iot_quad_node() -> Self {
        CostModel {
            smc_round_trip: SimDuration::from_micros(6),
            world_switch: SimDuration::from_micros(12),
            pta_dispatch: SimDuration::from_micros(3),
            ta_dispatch: SimDuration::from_micros(20),
            session_open: SimDuration::from_micros(900),
            supplicant_rpc: SimDuration::from_micros(60),
            cross_world_copy_per_byte: SimDuration::from_nanos(6),
            in_world_copy_per_byte: SimDuration::from_nanos(1),
            secure_page_alloc: SimDuration::from_micros(8),
            irq_entry: SimDuration::from_nanos(1_500),
            secure_irq_entry: SimDuration::from_micros(3),
            compute_per_flop: SimDuration::from_nanos(5),
            secure_compute_penalty: 1.6,
        }
    }

    /// A zero-cost model, useful in unit tests that only care about
    /// functional behaviour.
    pub fn free() -> Self {
        CostModel {
            smc_round_trip: SimDuration::ZERO,
            world_switch: SimDuration::ZERO,
            pta_dispatch: SimDuration::ZERO,
            ta_dispatch: SimDuration::ZERO,
            session_open: SimDuration::ZERO,
            supplicant_rpc: SimDuration::ZERO,
            cross_world_copy_per_byte: SimDuration::ZERO,
            in_world_copy_per_byte: SimDuration::ZERO,
            secure_page_alloc: SimDuration::ZERO,
            irq_entry: SimDuration::ZERO,
            secure_irq_entry: SimDuration::ZERO,
            compute_per_flop: SimDuration::ZERO,
            secure_compute_penalty: 1.0,
        }
    }

    /// Starts building a custom cost model from the Jetson baseline.
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::jetson_agx_xavier(),
        }
    }

    /// Cost of copying `bytes` across the world boundary.
    pub fn cross_world_copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            self.cross_world_copy_per_byte
                .as_nanos()
                .saturating_mul(bytes as u64),
        )
    }

    /// Cost of copying `bytes` within one world.
    pub fn in_world_copy(&self, bytes: usize) -> SimDuration {
        SimDuration::from_nanos(
            self.in_world_copy_per_byte
                .as_nanos()
                .saturating_mul(bytes as u64),
        )
    }

    /// Cost of executing `flops` floating-point-equivalent operations in the
    /// given world.
    pub fn compute(&self, flops: u64, secure: bool) -> SimDuration {
        let base = SimDuration::from_nanos(self.compute_per_flop.as_nanos().saturating_mul(flops));
        if secure {
            base * self.secure_compute_penalty
        } else {
            base
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::jetson_agx_xavier()
    }
}

/// Builder for [`CostModel`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets the SMC round-trip latency.
    pub fn smc_round_trip(mut self, d: SimDuration) -> Self {
        self.model.smc_round_trip = d;
        self
    }

    /// Sets the world-switch latency.
    pub fn world_switch(mut self, d: SimDuration) -> Self {
        self.model.world_switch = d;
        self
    }

    /// Sets the PTA dispatch overhead.
    pub fn pta_dispatch(mut self, d: SimDuration) -> Self {
        self.model.pta_dispatch = d;
        self
    }

    /// Sets the TA dispatch overhead.
    pub fn ta_dispatch(mut self, d: SimDuration) -> Self {
        self.model.ta_dispatch = d;
        self
    }

    /// Sets the session-open cost.
    pub fn session_open(mut self, d: SimDuration) -> Self {
        self.model.session_open = d;
        self
    }

    /// Sets the supplicant RPC round-trip cost.
    pub fn supplicant_rpc(mut self, d: SimDuration) -> Self {
        self.model.supplicant_rpc = d;
        self
    }

    /// Sets the per-byte cross-world copy cost.
    pub fn cross_world_copy_per_byte(mut self, d: SimDuration) -> Self {
        self.model.cross_world_copy_per_byte = d;
        self
    }

    /// Sets the per-flop compute cost.
    pub fn compute_per_flop(mut self, d: SimDuration) -> Self {
        self.model.compute_per_flop = d;
        self
    }

    /// Sets the secure compute penalty multiplier.
    pub fn secure_compute_penalty(mut self, penalty: f64) -> Self {
        self.model.secure_compute_penalty = penalty.max(1.0);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_costs_have_expected_ordering() {
        let c = CostModel::jetson_agx_xavier();
        // A session open is the most expensive single operation; raw SMC the cheapest.
        assert!(c.session_open > c.ta_dispatch);
        assert!(c.ta_dispatch > c.pta_dispatch);
        assert!(c.world_switch > c.smc_round_trip / 2);
        assert!(c.secure_compute_penalty > 1.0);
    }

    #[test]
    fn constrained_platform_is_uniformly_slower() {
        let fast = CostModel::jetson_agx_xavier();
        let slow = CostModel::constrained_mcu();
        assert!(slow.smc_round_trip > fast.smc_round_trip);
        assert!(slow.world_switch > fast.world_switch);
        assert!(slow.supplicant_rpc > fast.supplicant_rpc);
        assert!(slow.compute_per_flop > fast.compute_per_flop);
    }

    #[test]
    fn copy_costs_scale_linearly() {
        let c = CostModel::jetson_agx_xavier();
        let one_kib = c.cross_world_copy(1024);
        let four_kib = c.cross_world_copy(4096);
        assert_eq!(four_kib.as_nanos(), one_kib.as_nanos() * 4);
    }

    #[test]
    fn secure_compute_is_penalized() {
        let c = CostModel::jetson_agx_xavier();
        let normal = c.compute(1_000_000, false);
        let secure = c.compute(1_000_000, true);
        assert!(secure > normal);
        let ratio = secure.as_secs_f64() / normal.as_secs_f64();
        assert!((ratio - c.secure_compute_penalty).abs() < 0.01);
    }

    #[test]
    fn builder_overrides_only_requested_fields() {
        let base = CostModel::jetson_agx_xavier();
        let custom = CostModel::builder()
            .world_switch(SimDuration::from_micros(50))
            .secure_compute_penalty(0.2) // clamped up to 1.0
            .build();
        assert_eq!(custom.world_switch, SimDuration::from_micros(50));
        assert_eq!(custom.smc_round_trip, base.smc_round_trip);
        assert_eq!(custom.secure_compute_penalty, 1.0);
    }

    #[test]
    fn free_model_charges_nothing() {
        let c = CostModel::free();
        assert!(c.cross_world_copy(1 << 20).is_zero());
        assert!(c.compute(1 << 20, true).is_zero());
    }
}
