//! Error types for the TrustZone machine model.

use std::error::Error;
use std::fmt;

use crate::world::World;

/// Errors raised by the TrustZone machine model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TzError {
    /// An access violated the TZASC security attributes of a region
    /// (e.g. the normal world touched secure memory).
    PermissionFault {
        /// Faulting physical address.
        addr: u64,
        /// World that performed the access.
        world: World,
        /// Whether the access was a write.
        write: bool,
    },
    /// The secure-RAM allocator could not satisfy a request.
    SecureRamExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes currently available.
        available: usize,
    },
    /// A memory region definition was invalid (zero-sized, overflowing, or
    /// overlapping an existing region).
    InvalidRegion {
        /// Human-readable reason.
        reason: String,
    },
    /// An address did not fall inside any configured region.
    UnmappedAddress {
        /// The faulting address.
        addr: u64,
    },
    /// An SMC was issued with a function identifier no handler is
    /// registered for.
    UnknownSmcFunction {
        /// The unknown function identifier.
        function_id: u32,
    },
    /// An operation was attempted from the wrong world (e.g. issuing an SMC
    /// from the secure world, or a secure-only operation from the normal
    /// world).
    WrongWorld {
        /// World the operation was attempted from.
        actual: World,
        /// World the operation requires.
        required: World,
    },
    /// A content-keyed shared reservation was requested with a size that
    /// disagrees with the live allocation under the same key — either a
    /// key collision or a stale size at the caller. Serving it silently
    /// would hand back a wrong-size buffer and corrupt the dedup
    /// accounting.
    SharedReservationMismatch {
        /// The content key.
        key: u64,
        /// Size of the live allocation under the key.
        existing: usize,
        /// Size the caller requested.
        requested: usize,
    },
}

impl fmt::Display for TzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TzError::PermissionFault { addr, world, write } => write!(
                f,
                "permission fault: {} {} access to {addr:#x} denied by TZASC",
                world,
                if *write { "write" } else { "read" }
            ),
            TzError::SecureRamExhausted {
                requested,
                available,
            } => write!(
                f,
                "secure RAM exhausted: requested {requested} bytes, {available} available"
            ),
            TzError::InvalidRegion { reason } => write!(f, "invalid memory region: {reason}"),
            TzError::UnmappedAddress { addr } => write!(f, "unmapped address {addr:#x}"),
            TzError::UnknownSmcFunction { function_id } => {
                write!(f, "no SMC handler registered for function {function_id:#x}")
            }
            TzError::WrongWorld { actual, required } => {
                write!(
                    f,
                    "operation requires {required} world but was issued from {actual} world"
                )
            }
            TzError::SharedReservationMismatch {
                key,
                existing,
                requested,
            } => write!(
                f,
                "shared reservation {key:#x} holds {existing} bytes but {requested} were requested"
            ),
        }
    }
}

impl Error for TzError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TzError::PermissionFault {
            addr: 0x8000_0000,
            world: World::Normal,
            write: true,
        };
        let msg = e.to_string();
        assert!(msg.contains("0x80000000"));
        assert!(msg.contains("write"));
        assert!(msg.starts_with(char::is_lowercase));

        let e = TzError::SecureRamExhausted {
            requested: 4096,
            available: 128,
        };
        assert!(e.to_string().contains("4096"));

        let e = TzError::UnknownSmcFunction {
            function_id: 0x3200_0007,
        };
        assert!(e.to_string().contains("0x32000007"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<TzError>();
    }
}
