//! # perisec-tz — TrustZone-class machine model
//!
//! This crate models the hardware substrate the paper assumes: an ARM
//! TrustZone platform (the NVIDIA Jetson AGX Xavier in the paper's
//! proof-of-concept) partitioned into a *normal world* running an untrusted
//! OS and a *secure world* running OP-TEE.
//!
//! The model is **behavioural, not cycle-accurate**: it reproduces the
//! quantities the paper's evaluation depends on —
//!
//! * the number of **secure monitor calls (SMCs)** and **world switches**
//!   a workload performs, and the time they cost ([`monitor`], [`cost`]);
//! * the **secure-RAM carve-out** created by the TrustZone address space
//!   controller and the pressure on it ([`tzasc`], [`secure_mem`]);
//! * the **energy** drawn by platform components over a run ([`power`]);
//! * a virtual **clock** shared by every simulated component ([`time`]).
//!
//! The central type is [`platform::Platform`], which bundles a clock, cost
//! model, TZASC, secure-RAM allocator, secure monitor, power meter and
//! statistics into one shareable handle. Higher layers (the OP-TEE
//! simulator, the kernel substrate, the device models) all charge their
//! costs against the same platform so that end-to-end experiments observe a
//! consistent timeline.
//!
//! ```
//! use perisec_tz::platform::Platform;
//! use perisec_tz::world::World;
//!
//! let platform = Platform::jetson_agx_xavier();
//! // A round trip into the secure world is accounted for on the shared clock.
//! let before = platform.clock().now();
//! platform.monitor().world_switch(World::Secure);
//! platform.monitor().world_switch(World::Normal);
//! assert!(platform.clock().now() > before);
//! assert_eq!(platform.stats().world_switches(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod monitor;
pub mod platform;
pub mod power;
pub mod secure_mem;
pub mod stats;
pub mod time;
pub mod tzasc;
pub mod world;

pub use cost::CostModel;
pub use error::TzError;
pub use monitor::{SecureMonitor, SmcCall, SmcResult};
pub use platform::{Platform, PlatformSpec};
pub use power::{Component, EnergyMeter, PowerModel};
pub use secure_mem::{SecureBuf, SecureRam};
pub use stats::TzStats;
pub use time::{SimClock, SimDuration, SimInstant};
pub use tzasc::{MemoryRegion, SecurityAttr, Tzasc};
pub use world::World;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TzError>;
