//! The secure monitor: SMC dispatch and world-switch accounting.
//!
//! On real hardware the secure monitor (EL3 firmware) is the only code that
//! transitions the CPU between the normal and secure worlds; every OP-TEE
//! interaction from Linux is funneled through an `SMC` instruction. The
//! model reproduces that funnel: the normal world issues [`SmcCall`]s, the
//! monitor charges the world-switch cost on the shared clock, bumps the
//! shared counters, and dispatches to whichever handler (the OP-TEE
//! simulator) registered for the function identifier.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::cost::CostModel;
use crate::error::TzError;
use crate::stats::TzStats;
use crate::time::SimClock;
use crate::world::World;
use crate::Result;

/// Well-known SMC function identifiers used by the OP-TEE simulator.
///
/// The values mirror the spirit of the OP-TEE SMC calling convention
/// (a "fast call" range for management and a "standard call" range for
/// invoking the TEE), without reproducing it bit-for-bit.
pub mod smc_func {
    /// Query monitor/TEE revision.
    pub const GET_REVISION: u32 = 0x3200_0000;
    /// Enter the TEE to process a queued message (open session, invoke
    /// command, close session).
    pub const STD_CALL_WITH_ARG: u32 = 0x3200_0004;
    /// Return from a foreign-interrupt or RPC exit back into the TEE.
    pub const RETURN_FROM_RPC: u32 = 0x3200_0003;
}

/// Arguments of one secure monitor call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmcCall {
    /// Function identifier (selects the handler).
    pub function_id: u32,
    /// General-purpose argument registers (x1..x6 in the real convention).
    pub args: [u64; 6],
}

impl SmcCall {
    /// Creates a call with the given function id and no arguments.
    pub fn new(function_id: u32) -> Self {
        SmcCall {
            function_id,
            args: [0; 6],
        }
    }

    /// Creates a call with arguments.
    pub fn with_args(function_id: u32, args: [u64; 6]) -> Self {
        SmcCall { function_id, args }
    }
}

/// Result registers of one secure monitor call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmcResult {
    /// Return registers (x0..x3 in the real convention).
    pub regs: [u64; 4],
}

impl SmcResult {
    /// A result whose first register carries `value` and the rest zero.
    pub fn value(value: u64) -> Self {
        SmcResult {
            regs: [value, 0, 0, 0],
        }
    }
}

/// Handler invoked by the monitor when its function id is called.
///
/// The OP-TEE simulator registers one handler per function id it serves.
pub trait SmcHandler: Send + Sync {
    /// Processes the call. The handler runs "in the secure world": the
    /// monitor has already charged the entry switch and will charge the
    /// exit switch after the handler returns.
    fn handle(&self, call: &SmcCall) -> SmcResult;
}

impl<F> SmcHandler for F
where
    F: Fn(&SmcCall) -> SmcResult + Send + Sync,
{
    fn handle(&self, call: &SmcCall) -> SmcResult {
        self(call)
    }
}

/// The secure monitor.
///
/// Shared (via `Arc`) between the normal-world kernel substrate (which
/// issues SMCs) and the OP-TEE simulator (which registers handlers).
pub struct SecureMonitor {
    clock: SimClock,
    cost: CostModel,
    stats: TzStats,
    current_world: RwLock<World>,
    handlers: Mutex<HashMap<u32, Arc<dyn SmcHandler>>>,
}

impl fmt::Debug for SecureMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureMonitor")
            .field("current_world", &*self.current_world.read())
            .field("handlers", &self.handlers.lock().len())
            .finish()
    }
}

impl SecureMonitor {
    /// Creates a monitor bound to the platform's clock, cost model and
    /// statistics. The machine starts in the normal world.
    pub fn new(clock: SimClock, cost: CostModel, stats: TzStats) -> Self {
        SecureMonitor {
            clock,
            cost,
            stats,
            current_world: RwLock::new(World::Normal),
            handlers: Mutex::new(HashMap::new()),
        }
    }

    /// World currently executing.
    pub fn current_world(&self) -> World {
        *self.current_world.read()
    }

    /// Registers `handler` for `function_id`, replacing any previous
    /// handler and returning it.
    pub fn register_handler(
        &self,
        function_id: u32,
        handler: Arc<dyn SmcHandler>,
    ) -> Option<Arc<dyn SmcHandler>> {
        self.handlers.lock().insert(function_id, handler)
    }

    /// Performs an explicit world switch, charging its cost.
    ///
    /// Used by components that model asynchronous entries into the secure
    /// world (e.g. a secure interrupt routed to the TEE).
    pub fn world_switch(&self, to: World) -> World {
        let mut current = self.current_world.write();
        let from = *current;
        if from != to {
            *current = to;
            self.clock.advance(self.cost.world_switch);
            self.stats.record_world_switch();
        }
        from
    }

    /// Issues an SMC from the normal world.
    ///
    /// Charges the SMC trap plus two world switches (entry and exit),
    /// dispatches to the registered handler, and returns its result.
    ///
    /// # Errors
    ///
    /// * [`TzError::WrongWorld`] if issued while the machine is already in
    ///   the secure world (nested SMCs are not part of the model).
    /// * [`TzError::UnknownSmcFunction`] if no handler is registered.
    pub fn smc(&self, call: SmcCall) -> Result<SmcResult> {
        if self.current_world() != World::Normal {
            return Err(TzError::WrongWorld {
                actual: self.current_world(),
                required: World::Normal,
            });
        }
        let handler = {
            let handlers = self.handlers.lock();
            handlers.get(&call.function_id).cloned()
        }
        .ok_or(TzError::UnknownSmcFunction {
            function_id: call.function_id,
        })?;

        self.stats.record_smc();
        self.clock.advance(self.cost.smc_round_trip);
        self.world_switch(World::Secure);
        let result = handler.handle(&call);
        self.world_switch(World::Normal);
        Ok(result)
    }

    /// Charges the cost of copying `bytes` across the world boundary and
    /// records the direction in the statistics.
    pub fn charge_cross_world_copy(&self, bytes: usize, to: World) {
        self.clock.advance(self.cost.cross_world_copy(bytes));
        match to {
            World::Secure => self.stats.record_copy_to_secure(bytes as u64),
            World::Normal => self.stats.record_copy_to_normal(bytes as u64),
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cost model in force.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The shared statistics.
    pub fn stats(&self) -> &TzStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn monitor() -> SecureMonitor {
        SecureMonitor::new(
            SimClock::new(),
            CostModel::jetson_agx_xavier(),
            TzStats::new(),
        )
    }

    #[test]
    fn starts_in_normal_world() {
        assert_eq!(monitor().current_world(), World::Normal);
    }

    #[test]
    fn smc_dispatches_and_accounts() {
        let m = monitor();
        m.register_handler(
            smc_func::GET_REVISION,
            Arc::new(|call: &SmcCall| SmcResult::value(call.args[0] + 41)),
        );
        let before = m.clock().now();
        let res = m
            .smc(SmcCall::with_args(
                smc_func::GET_REVISION,
                [1, 0, 0, 0, 0, 0],
            ))
            .unwrap();
        assert_eq!(res.regs[0], 42);
        assert_eq!(m.stats().smc_calls(), 1);
        assert_eq!(m.stats().world_switches(), 2);
        // Time advanced by at least smc + 2 * world switch.
        let expected = m.cost().smc_round_trip + m.cost().world_switch + m.cost().world_switch;
        assert!(m.clock().elapsed_since(before) >= expected);
        // We returned to the normal world.
        assert_eq!(m.current_world(), World::Normal);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let m = monitor();
        assert!(matches!(
            m.smc(SmcCall::new(0xdead_beef)),
            Err(TzError::UnknownSmcFunction {
                function_id: 0xdead_beef
            })
        ));
        // No accounting happened for the rejected call.
        assert_eq!(m.stats().smc_calls(), 0);
    }

    #[test]
    fn smc_from_secure_world_is_rejected() {
        let m = monitor();
        m.register_handler(
            smc_func::GET_REVISION,
            Arc::new(|_: &SmcCall| SmcResult::default()),
        );
        m.world_switch(World::Secure);
        assert!(matches!(
            m.smc(SmcCall::new(smc_func::GET_REVISION)),
            Err(TzError::WrongWorld { .. })
        ));
    }

    #[test]
    fn redundant_world_switch_is_free() {
        let m = monitor();
        let before = m.clock().now();
        m.world_switch(World::Normal);
        assert_eq!(m.clock().now(), before);
        assert_eq!(m.stats().world_switches(), 0);
    }

    #[test]
    fn cross_world_copy_charges_time_and_counts_bytes() {
        let m = SecureMonitor::new(
            SimClock::new(),
            CostModel::builder()
                .cross_world_copy_per_byte(SimDuration::from_nanos(3))
                .build(),
            TzStats::new(),
        );
        m.charge_cross_world_copy(1000, World::Secure);
        assert_eq!(m.clock().now().as_nanos(), 3000);
        assert_eq!(m.stats().snapshot().bytes_to_secure, 1000);
    }

    #[test]
    fn handler_replacement_returns_previous() {
        let m = monitor();
        let first: Arc<dyn SmcHandler> = Arc::new(|_: &SmcCall| SmcResult::value(1));
        let second: Arc<dyn SmcHandler> = Arc::new(|_: &SmcCall| SmcResult::value(2));
        assert!(m.register_handler(7, first).is_none());
        assert!(m.register_handler(7, second).is_some());
        let res = m.smc(SmcCall::new(7)).unwrap();
        assert_eq!(res.regs[0], 2);
    }
}
