//! The assembled platform: clock, costs, TZASC, secure RAM, monitor, power.
//!
//! [`Platform`] is the single handle every other crate takes a clone of. It
//! corresponds to the paper's development board (the NVIDIA Jetson AGX
//! Xavier) but can be instantiated with different specs to explore how the
//! trade-offs move on weaker hardware.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::monitor::SecureMonitor;
use crate::power::{Component, EnergyMeter, PowerModel};
use crate::secure_mem::SecureRam;
use crate::stats::TzStats;
use crate::time::{SimClock, SimDuration, SimInstant};
use crate::tzasc::{SecurityAttr, Tzasc};
use crate::world::World;
use crate::Result;

/// Static description of a platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Marketing / board name.
    pub name: String,
    /// Number of application cores.
    pub cpu_cores: u32,
    /// Nominal CPU frequency in MHz.
    pub cpu_freq_mhz: u32,
    /// Total DRAM in MiB.
    pub dram_mib: u64,
    /// Size of the TrustZone secure carve-out in KiB.
    pub secure_ram_kib: u64,
    /// Physical base address of DRAM.
    pub dram_base: u64,
    /// Physical base address of the secure carve-out.
    pub secure_base: u64,
}

impl PlatformSpec {
    /// The paper's proof-of-concept board: NVIDIA Jetson AGX Xavier
    /// (8 Carmel cores, 32 GiB LPDDR4x, TrustZone-enabled ARMv8.2). The
    /// secure carve-out follows typical OP-TEE configurations (32 MiB of
    /// TZDRAM).
    pub fn jetson_agx_xavier() -> Self {
        PlatformSpec {
            name: "nvidia-jetson-agx-xavier".to_owned(),
            cpu_cores: 8,
            cpu_freq_mhz: 2_265,
            dram_mib: 32 * 1024,
            secure_ram_kib: 32 * 1024,
            dram_base: 0x8000_0000,
            secure_base: 0xF000_0000,
        }
    }

    /// A much weaker single-core IoT node with a 2 MiB secure carve-out.
    pub fn constrained_mcu() -> Self {
        PlatformSpec {
            name: "constrained-iot-node".to_owned(),
            cpu_cores: 1,
            cpu_freq_mhz: 600,
            dram_mib: 512,
            secure_ram_kib: 2 * 1024,
            dram_base: 0x4000_0000,
            secure_base: 0x5F00_0000,
        }
    }

    /// A mid-tier quad-core IoT gateway (Raspberry-Pi-class Armv8 with
    /// TrustZone, 8 MiB TZDRAM) — the platform the multi-core TEE
    /// scheduler experiments target: enough cores to shard TA sessions
    /// across, but slow enough that a single vision TA is outrun by a
    /// high-fps frame stream.
    pub fn iot_quad_node() -> Self {
        PlatformSpec {
            name: "iot-quad-node".to_owned(),
            cpu_cores: 4,
            cpu_freq_mhz: 1_500,
            dram_mib: 2 * 1024,
            secure_ram_kib: 8 * 1024,
            dram_base: 0x4000_0000,
            secure_base: 0x7000_0000,
        }
    }

    /// Secure carve-out size in bytes.
    pub fn secure_ram_bytes(&self) -> usize {
        (self.secure_ram_kib * 1024) as usize
    }
}

/// Builder for a [`Platform`] with custom spec, cost model and power model.
#[derive(Debug, Clone)]
pub struct PlatformBuilder {
    spec: PlatformSpec,
    cost: CostModel,
    power: PowerModel,
    shared_secure_ram: Option<SecureRam>,
}

impl PlatformBuilder {
    /// Starts from the Jetson defaults.
    pub fn new() -> Self {
        PlatformBuilder {
            spec: PlatformSpec::jetson_agx_xavier(),
            cost: CostModel::jetson_agx_xavier(),
            power: PowerModel::jetson_agx_xavier(),
            shared_secure_ram: None,
        }
    }

    /// Uses the given spec.
    pub fn spec(mut self, spec: PlatformSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Uses the given cost model.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Uses the given power model.
    pub fn power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Overrides only the secure carve-out size (KiB), keeping the rest of
    /// the spec. Convenient for the E5/E10 memory-pressure sweeps.
    pub fn secure_ram_kib(mut self, kib: u64) -> Self {
        self.spec.secure_ram_kib = kib;
        self
    }

    /// Uses an existing secure-RAM pool instead of creating a fresh one.
    ///
    /// This is how a multi-core TEE is modeled: each secure core gets its
    /// own [`Platform`] (its own clock, monitor and counters — cores run
    /// concurrently) while every core's allocations are charged against
    /// the **one** physical TZDRAM carve-out they share, which is what
    /// makes cross-core model deduplication
    /// ([`SecureRam::reserve_shared`]) observable. The pool's capacity
    /// should match the spec's carve-out size; the builder does not
    /// resize it.
    pub fn shared_secure_ram(mut self, ram: SecureRam) -> Self {
        self.shared_secure_ram = Some(ram);
        self
    }

    /// Builds the platform.
    pub fn build(self) -> Platform {
        Platform::from_parts(self.spec, self.cost, self.power, self.shared_secure_ram)
    }
}

impl Default for PlatformBuilder {
    fn default() -> Self {
        PlatformBuilder::new()
    }
}

/// A fully assembled TrustZone platform model.
///
/// Cheap to clone; all clones share the same clock, counters, memory map and
/// secure pool.
#[derive(Debug, Clone)]
pub struct Platform {
    spec: PlatformSpec,
    clock: SimClock,
    cost: CostModel,
    stats: TzStats,
    tzasc: Arc<Tzasc>,
    secure_ram: SecureRam,
    monitor: Arc<SecureMonitor>,
    energy: EnergyMeter,
}

impl Platform {
    /// Builds the paper's platform (Jetson AGX Xavier).
    pub fn jetson_agx_xavier() -> Self {
        PlatformBuilder::new().build()
    }

    /// Builds the weak IoT node variant.
    pub fn constrained_mcu() -> Self {
        PlatformBuilder::new()
            .spec(PlatformSpec::constrained_mcu())
            .cost_model(CostModel::constrained_mcu())
            .power_model(PowerModel::constrained_mcu())
            .build()
    }

    /// Starts a builder for a custom platform.
    pub fn builder() -> PlatformBuilder {
        PlatformBuilder::new()
    }

    /// Builds the quad-core IoT gateway variant (the multi-core TEE
    /// scheduler's target platform).
    pub fn iot_quad_node() -> Self {
        PlatformBuilder::new()
            .spec(PlatformSpec::iot_quad_node())
            .cost_model(CostModel::iot_quad_node())
            .power_model(PowerModel::iot_quad_node())
            .build()
    }

    fn from_parts(
        spec: PlatformSpec,
        cost: CostModel,
        power: PowerModel,
        shared_secure_ram: Option<SecureRam>,
    ) -> Self {
        let clock = SimClock::new();
        let stats = TzStats::new();
        let tzasc = Arc::new(Tzasc::new(stats.clone()));
        // The secure carve-out is taken out of DRAM, as on the real board:
        // non-secure DRAM covers [dram_base, secure_base) and, if the
        // carve-out does not reach the end of DRAM, a second non-secure
        // region covers the remainder above it.
        let dram_bytes = spec.dram_mib * 1024 * 1024;
        let dram_end = spec.dram_base + dram_bytes;
        let secure_bytes = spec.secure_ram_bytes() as u64;
        let secure_end = spec.secure_base + secure_bytes;
        let low_dram = spec
            .secure_base
            .saturating_sub(spec.dram_base)
            .min(dram_bytes);
        if low_dram > 0 {
            tzasc
                .add_region(spec.dram_base, low_dram, SecurityAttr::NonSecure, "dram")
                .expect("default DRAM region is valid");
        }
        tzasc
            .add_region(
                spec.secure_base,
                secure_bytes,
                SecurityAttr::Secure,
                "tzdram",
            )
            .expect("default secure region is valid");
        if dram_end > secure_end {
            tzasc
                .add_region(
                    secure_end,
                    dram_end - secure_end,
                    SecurityAttr::NonSecure,
                    "dram-high",
                )
                .expect("default high DRAM region is valid");
        }
        let secure_ram = shared_secure_ram.unwrap_or_else(|| {
            SecureRam::new(spec.secure_base, spec.secure_ram_bytes(), stats.clone())
        });
        let monitor = Arc::new(SecureMonitor::new(
            clock.clone(),
            cost.clone(),
            stats.clone(),
        ));
        let energy = EnergyMeter::new(power, clock.now());
        Platform {
            spec,
            clock,
            cost,
            stats,
            tzasc,
            secure_ram,
            monitor,
            energy,
        }
    }

    /// The static platform description.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The latency cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// The shared counters.
    pub fn stats(&self) -> &TzStats {
        &self.stats
    }

    /// The address space controller.
    pub fn tzasc(&self) -> &Tzasc {
        &self.tzasc
    }

    /// The secure-RAM allocator.
    pub fn secure_ram(&self) -> &SecureRam {
        &self.secure_ram
    }

    /// The secure monitor.
    pub fn monitor(&self) -> &Arc<SecureMonitor> {
        &self.monitor
    }

    /// The energy meter.
    pub fn energy(&self) -> &EnergyMeter {
        &self.energy
    }

    /// Charges `duration` of CPU activity in the given world: advances the
    /// clock and attributes the busy time to the corresponding power
    /// component.
    pub fn charge_cpu(&self, world: World, duration: SimDuration) {
        if duration.is_zero() {
            return;
        }
        self.clock.advance(duration);
        let component = match world {
            World::Normal => Component::CpuNormalWorld,
            World::Secure => Component::CpuSecureWorld,
        };
        self.energy.record_busy(component, duration);
    }

    /// Charges `flops` of compute in the given world using the cost model.
    /// Returns the time charged.
    pub fn charge_compute(&self, world: World, flops: u64) -> SimDuration {
        let d = self.cost.compute(flops, world.is_secure());
        self.charge_cpu(world, d);
        d
    }

    /// Records activity of a non-CPU component (device, DMA, network)
    /// without advancing the clock — the component is busy concurrently
    /// with the CPU.
    pub fn record_device_busy(&self, component: Component, duration: SimDuration) {
        self.energy.record_busy(component, duration);
    }

    /// Verifies that the given world may access `[addr, addr+len)`.
    ///
    /// # Errors
    ///
    /// Propagates the TZASC fault (see [`Tzasc::check_range`]).
    pub fn check_access(&self, addr: u64, len: u64, world: World, write: bool) -> Result<()> {
        self.tzasc.check_range(addr, len, world, write)
    }

    /// Produces the energy report from platform construction until "now".
    pub fn energy_report(&self) -> crate::power::EnergyReport {
        self.energy.report_until(self.clock.now())
    }

    /// Instant the platform was created (the epoch of its clock).
    pub fn epoch(&self) -> SimInstant {
        SimInstant::EPOCH
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jetson_platform_has_expected_memory_map() {
        let p = Platform::jetson_agx_xavier();
        assert_eq!(p.spec().cpu_cores, 8);
        assert_eq!(p.tzasc().regions().len(), 3);
        assert_eq!(p.tzasc().secure_bytes(), 32 * 1024 * 1024);
        assert_eq!(p.secure_ram().capacity(), 32 * 1024 * 1024);
    }

    #[test]
    fn normal_world_cannot_access_secure_carveout() {
        let p = Platform::jetson_agx_xavier();
        let secure_addr = p.spec().secure_base + 0x100;
        assert!(p
            .check_access(secure_addr, 64, World::Normal, false)
            .is_err());
        assert!(p
            .check_access(secure_addr, 64, World::Secure, false)
            .is_ok());
        assert!(p
            .check_access(p.spec().dram_base + 0x1000, 64, World::Normal, true)
            .is_ok());
    }

    #[test]
    fn charge_cpu_advances_clock_and_energy() {
        let p = Platform::jetson_agx_xavier();
        p.charge_cpu(World::Secure, SimDuration::from_millis(10));
        assert_eq!(p.clock().now().as_nanos(), 10_000_000);
        let report = p.energy_report();
        assert!(report.component_mj(Component::CpuSecureWorld) > 0.0);
    }

    #[test]
    fn charge_compute_is_more_expensive_in_secure_world() {
        let p = Platform::jetson_agx_xavier();
        let n = p.charge_compute(World::Normal, 1_000_000);
        let s = p.charge_compute(World::Secure, 1_000_000);
        assert!(s > n);
    }

    #[test]
    fn constrained_platform_has_smaller_secure_ram() {
        let small = Platform::constrained_mcu();
        let big = Platform::jetson_agx_xavier();
        assert!(small.secure_ram().capacity() < big.secure_ram().capacity());
    }

    #[test]
    fn builder_overrides_secure_ram_size() {
        let p = Platform::builder().secure_ram_kib(256).build();
        assert_eq!(p.secure_ram().capacity(), 256 * 1024);
        // Allocating more than the carve-out fails.
        assert!(p.secure_ram().alloc(512 * 1024).is_err());
    }

    #[test]
    fn iot_quad_node_sits_between_mcu_and_jetson() {
        let quad = Platform::iot_quad_node();
        assert_eq!(quad.spec().cpu_cores, 4);
        assert_eq!(quad.secure_ram().capacity(), 8 * 1024 * 1024);
        let mcu = Platform::constrained_mcu();
        let jetson = Platform::jetson_agx_xavier();
        assert!(quad.cost().world_switch > jetson.cost().world_switch);
        assert!(quad.cost().world_switch < mcu.cost().world_switch);
        assert!(quad.cost().compute_per_flop > jetson.cost().compute_per_flop);
        assert!(quad.cost().compute_per_flop < mcu.cost().compute_per_flop);
    }

    #[test]
    fn sibling_platforms_share_one_secure_carveout() {
        // Two "cores": independent clocks and counters, one TZDRAM pool.
        let spec = PlatformSpec::iot_quad_node();
        let pool = SecureRam::new(
            spec.secure_base,
            spec.secure_ram_bytes(),
            crate::stats::TzStats::new(),
        );
        let core0 = Platform::builder()
            .spec(spec.clone())
            .shared_secure_ram(pool.clone())
            .build();
        let core1 = Platform::builder()
            .spec(spec)
            .shared_secure_ram(pool.clone())
            .build();
        let _buf = core0.secure_ram().alloc(4096).unwrap();
        assert!(core1.secure_ram().bytes_in_use() >= 4096);
        assert!(pool.bytes_in_use() >= 4096);
        // Clocks and switch counters stay per-core.
        core0.charge_cpu(World::Secure, SimDuration::from_micros(7));
        assert_eq!(core1.clock().now().as_nanos(), 0);
        core0.monitor().world_switch(World::Secure);
        assert_eq!(core1.stats().world_switches(), 0);
    }

    #[test]
    fn clones_share_state() {
        let p = Platform::jetson_agx_xavier();
        let q = p.clone();
        p.charge_cpu(World::Normal, SimDuration::from_micros(5));
        assert_eq!(q.clock().now().as_nanos(), 5_000);
        let _buf = q.secure_ram().alloc(1024).unwrap();
        assert!(p.secure_ram().bytes_in_use() >= 1024);
    }
}
