//! Platform power and energy model.
//!
//! The paper expects the secure pipeline to come "at a cost of decreased
//! performance, and increased power consumption" (§III). This module models
//! that claim: each platform component has an idle draw and an active draw;
//! components report busy intervals against the shared virtual clock, and
//! the [`EnergyMeter`] integrates draw over time to yield per-component and
//! total energy.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimInstant};

/// A platform component tracked by the power model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Component {
    /// CPU cycles spent in the normal world (Linux kernel + user space).
    CpuNormalWorld,
    /// CPU cycles spent in the secure world (OP-TEE core, PTAs, TAs).
    CpuSecureWorld,
    /// DRAM refresh/activity.
    Dram,
    /// The I2S controller block.
    I2sController,
    /// The external MEMS microphone.
    Microphone,
    /// The camera sensor and its interface.
    Camera,
    /// The DMA engine.
    DmaEngine,
    /// The network interface (Wi-Fi/Ethernet) used by the relay.
    Network,
    /// Always-on platform overhead (PMIC, rails, fixed leakage).
    Baseline,
}

impl Component {
    /// All components, in reporting order.
    pub const ALL: [Component; 9] = [
        Component::Baseline,
        Component::CpuNormalWorld,
        Component::CpuSecureWorld,
        Component::Dram,
        Component::I2sController,
        Component::Microphone,
        Component::Camera,
        Component::DmaEngine,
        Component::Network,
    ];
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Component::CpuNormalWorld => "cpu-normal-world",
            Component::CpuSecureWorld => "cpu-secure-world",
            Component::Dram => "dram",
            Component::I2sController => "i2s-controller",
            Component::Microphone => "microphone",
            Component::Camera => "camera",
            Component::DmaEngine => "dma-engine",
            Component::Network => "network",
            Component::Baseline => "baseline",
        };
        write!(f, "{name}")
    }
}

/// Per-component draw in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Draw {
    /// Draw while idle (mW).
    pub idle_mw: f64,
    /// Draw while active (mW).
    pub active_mw: f64,
}

/// Power parameters of the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    draws: BTreeMap<Component, Draw>,
}

impl PowerModel {
    /// Power model loosely calibrated against a Jetson-AGX-Xavier-class
    /// module in its 30 W envelope. Absolute numbers are representative;
    /// what experiments rely on is the *relative* increase when the secure
    /// world is busy more of the time.
    pub fn jetson_agx_xavier() -> Self {
        let mut draws = BTreeMap::new();
        draws.insert(
            Component::Baseline,
            Draw {
                idle_mw: 2_500.0,
                active_mw: 2_500.0,
            },
        );
        draws.insert(
            Component::CpuNormalWorld,
            Draw {
                idle_mw: 350.0,
                active_mw: 4_500.0,
            },
        );
        // The secure partition runs at the same DVFS point but without the
        // shared-cache benefits, so active draw per unit of useful work is
        // slightly higher.
        draws.insert(
            Component::CpuSecureWorld,
            Draw {
                idle_mw: 50.0,
                active_mw: 5_000.0,
            },
        );
        draws.insert(
            Component::Dram,
            Draw {
                idle_mw: 600.0,
                active_mw: 1_800.0,
            },
        );
        draws.insert(
            Component::I2sController,
            Draw {
                idle_mw: 5.0,
                active_mw: 35.0,
            },
        );
        draws.insert(
            Component::Microphone,
            Draw {
                idle_mw: 0.5,
                active_mw: 3.5,
            },
        );
        draws.insert(
            Component::Camera,
            Draw {
                idle_mw: 10.0,
                active_mw: 950.0,
            },
        );
        draws.insert(
            Component::DmaEngine,
            Draw {
                idle_mw: 2.0,
                active_mw: 120.0,
            },
        );
        draws.insert(
            Component::Network,
            Draw {
                idle_mw: 90.0,
                active_mw: 1_100.0,
            },
        );
        PowerModel { draws }
    }

    /// Power model for a small battery-powered IoT node.
    pub fn constrained_mcu() -> Self {
        let mut draws = BTreeMap::new();
        draws.insert(
            Component::Baseline,
            Draw {
                idle_mw: 30.0,
                active_mw: 30.0,
            },
        );
        draws.insert(
            Component::CpuNormalWorld,
            Draw {
                idle_mw: 4.0,
                active_mw: 180.0,
            },
        );
        draws.insert(
            Component::CpuSecureWorld,
            Draw {
                idle_mw: 1.0,
                active_mw: 210.0,
            },
        );
        draws.insert(
            Component::Dram,
            Draw {
                idle_mw: 8.0,
                active_mw: 45.0,
            },
        );
        draws.insert(
            Component::I2sController,
            Draw {
                idle_mw: 1.0,
                active_mw: 12.0,
            },
        );
        draws.insert(
            Component::Microphone,
            Draw {
                idle_mw: 0.3,
                active_mw: 2.0,
            },
        );
        draws.insert(
            Component::Camera,
            Draw {
                idle_mw: 2.0,
                active_mw: 300.0,
            },
        );
        draws.insert(
            Component::DmaEngine,
            Draw {
                idle_mw: 0.5,
                active_mw: 25.0,
            },
        );
        draws.insert(
            Component::Network,
            Draw {
                idle_mw: 15.0,
                active_mw: 400.0,
            },
        );
        PowerModel { draws }
    }

    /// Power model for the quad-core IoT gateway — a Raspberry-Pi-class
    /// node in a ~6 W envelope, between the microcontroller and the
    /// Jetson presets.
    pub fn iot_quad_node() -> Self {
        let mut draws = BTreeMap::new();
        draws.insert(
            Component::Baseline,
            Draw {
                idle_mw: 600.0,
                active_mw: 600.0,
            },
        );
        draws.insert(
            Component::CpuNormalWorld,
            Draw {
                idle_mw: 80.0,
                active_mw: 1_400.0,
            },
        );
        draws.insert(
            Component::CpuSecureWorld,
            Draw {
                idle_mw: 12.0,
                active_mw: 1_550.0,
            },
        );
        draws.insert(
            Component::Dram,
            Draw {
                idle_mw: 120.0,
                active_mw: 450.0,
            },
        );
        draws.insert(
            Component::I2sController,
            Draw {
                idle_mw: 2.0,
                active_mw: 20.0,
            },
        );
        draws.insert(
            Component::Microphone,
            Draw {
                idle_mw: 0.4,
                active_mw: 3.0,
            },
        );
        draws.insert(
            Component::Camera,
            Draw {
                idle_mw: 5.0,
                active_mw: 600.0,
            },
        );
        draws.insert(
            Component::DmaEngine,
            Draw {
                idle_mw: 1.0,
                active_mw: 60.0,
            },
        );
        draws.insert(
            Component::Network,
            Draw {
                idle_mw: 45.0,
                active_mw: 750.0,
            },
        );
        PowerModel { draws }
    }

    /// Draw parameters for one component.
    ///
    /// Unknown components (possible because the enum is non-exhaustive)
    /// report zero draw.
    pub fn draw(&self, component: Component) -> Draw {
        self.draws.get(&component).copied().unwrap_or(Draw {
            idle_mw: 0.0,
            active_mw: 0.0,
        })
    }

    /// Overrides the draw of one component (used in ablations).
    pub fn set_draw(&mut self, component: Component, draw: Draw) {
        self.draws.insert(component, draw);
    }
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel::jetson_agx_xavier()
    }
}

/// Accumulated busy time per component plus the window over which it was
/// observed; converts to energy via the [`PowerModel`].
#[derive(Debug, Clone, Default)]
struct MeterInner {
    busy: BTreeMap<Component, SimDuration>,
    window_start: SimInstant,
}

/// Energy accounting for one experiment run.
///
/// Components call [`EnergyMeter::record_busy`] with the duration they were
/// active; the harness calls [`EnergyMeter::finish`] (or
/// [`EnergyMeter::report_until`]) to integrate idle draw over the rest of
/// the observation window.
#[derive(Debug, Clone)]
pub struct EnergyMeter {
    model: PowerModel,
    inner: Arc<Mutex<MeterInner>>,
}

impl EnergyMeter {
    /// Creates a meter whose observation window starts at `start`.
    pub fn new(model: PowerModel, start: SimInstant) -> Self {
        EnergyMeter {
            model,
            inner: Arc::new(Mutex::new(MeterInner {
                busy: BTreeMap::new(),
                window_start: start,
            })),
        }
    }

    /// Records that `component` was active for `duration`.
    pub fn record_busy(&self, component: Component, duration: SimDuration) {
        if duration.is_zero() {
            return;
        }
        let mut inner = self.inner.lock();
        *inner.busy.entry(component).or_insert(SimDuration::ZERO) += duration;
    }

    /// Produces the energy report for the window ending at `end`.
    pub fn report_until(&self, end: SimInstant) -> EnergyReport {
        let inner = self.inner.lock();
        let window = end.duration_since(inner.window_start);
        let mut per_component = BTreeMap::new();
        let mut total_mj = 0.0;
        for &component in Component::ALL.iter() {
            let draw = self.model.draw(component);
            let busy = inner
                .busy
                .get(&component)
                .copied()
                .unwrap_or(SimDuration::ZERO);
            // Busy time cannot exceed the window in a well-formed run, but a
            // component may legitimately be busy on overlapping operations;
            // clamp so idle time never goes negative.
            let busy_clamped = busy.min(window);
            let idle = window - busy_clamped;
            let energy_mj =
                draw.active_mw * busy_clamped.as_secs_f64() + draw.idle_mw * idle.as_secs_f64();
            total_mj += energy_mj;
            per_component.insert(component, ComponentEnergy { busy, energy_mj });
        }
        EnergyReport {
            window,
            total_mj,
            per_component,
        }
    }

    /// The power model backing this meter.
    pub fn model(&self) -> &PowerModel {
        &self.model
    }
}

/// Energy attributed to one component over the observation window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentEnergy {
    /// Active time recorded for the component.
    pub busy: SimDuration,
    /// Energy in millijoules (active + idle over the window).
    pub energy_mj: f64,
}

/// Energy report for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Length of the observation window.
    pub window: SimDuration,
    /// Total energy over the window, in millijoules.
    pub total_mj: f64,
    /// Per-component breakdown.
    pub per_component: BTreeMap<Component, ComponentEnergy>,
}

impl EnergyReport {
    /// Average power over the window, in milliwatts.
    pub fn average_power_mw(&self) -> f64 {
        let secs = self.window.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.total_mj / secs
        }
    }

    /// Energy of one component in millijoules.
    pub fn component_mj(&self, component: Component) -> f64 {
        self.per_component
            .get(&component)
            .map(|c| c.energy_mj)
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_platform_still_draws_baseline_power() {
        let meter = EnergyMeter::new(PowerModel::jetson_agx_xavier(), SimInstant::EPOCH);
        let report = meter.report_until(SimInstant::EPOCH + SimDuration::from_secs(10));
        // Baseline alone over 10 s at 2.5 W = 25 J = 25_000 mJ.
        assert!(report.component_mj(Component::Baseline) > 24_000.0);
        assert!(report.total_mj > report.component_mj(Component::Baseline));
        assert!(report.average_power_mw() > 2_500.0);
    }

    #[test]
    fn activity_increases_energy() {
        let model = PowerModel::jetson_agx_xavier();
        let idle_meter = EnergyMeter::new(model.clone(), SimInstant::EPOCH);
        let busy_meter = EnergyMeter::new(model, SimInstant::EPOCH);
        busy_meter.record_busy(Component::CpuSecureWorld, SimDuration::from_secs(5));
        let end = SimInstant::EPOCH + SimDuration::from_secs(10);
        let idle = idle_meter.report_until(end);
        let busy = busy_meter.report_until(end);
        assert!(busy.total_mj > idle.total_mj);
        assert!(
            busy.component_mj(Component::CpuSecureWorld)
                > idle.component_mj(Component::CpuSecureWorld)
        );
    }

    #[test]
    fn busy_time_is_clamped_to_window() {
        let meter = EnergyMeter::new(PowerModel::jetson_agx_xavier(), SimInstant::EPOCH);
        meter.record_busy(Component::Network, SimDuration::from_secs(100));
        let report = meter.report_until(SimInstant::EPOCH + SimDuration::from_secs(1));
        let draw = meter.model().draw(Component::Network);
        // Energy must not exceed active draw over the whole window.
        assert!(report.component_mj(Component::Network) <= draw.active_mw * 1.05);
    }

    #[test]
    fn zero_window_reports_zero_power() {
        let meter = EnergyMeter::new(PowerModel::default(), SimInstant::EPOCH);
        let report = meter.report_until(SimInstant::EPOCH);
        assert_eq!(report.average_power_mw(), 0.0);
        assert_eq!(report.total_mj, 0.0);
    }

    #[test]
    fn constrained_platform_draws_less() {
        let big = PowerModel::jetson_agx_xavier();
        let small = PowerModel::constrained_mcu();
        for &c in Component::ALL.iter() {
            assert!(small.draw(c).active_mw <= big.draw(c).active_mw);
        }
    }

    #[test]
    fn set_draw_overrides_component() {
        let mut model = PowerModel::default();
        model.set_draw(
            Component::Camera,
            Draw {
                idle_mw: 0.0,
                active_mw: 1.0,
            },
        );
        assert_eq!(model.draw(Component::Camera).active_mw, 1.0);
    }
}
