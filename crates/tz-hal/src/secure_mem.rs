//! Secure-RAM allocator.
//!
//! TrustZone platforms dedicate a small carve-out of DRAM (tens of MiB on
//! the Jetson class, far less on weaker SoCs) to the secure world. The
//! paper's §V names this as a core limitation: *"TEE technologies like
//! TrustZone provide relatively small memory resources for applications"*.
//!
//! [`SecureRam`] models that carve-out as a first-fit free-list allocator.
//! Allocations return a [`SecureBuf`] — an owned byte buffer tagged with its
//! simulated physical address — and are automatically returned to the pool
//! when the buffer is dropped. Exhaustion is a first-class, observable
//! failure so experiments can report when a model or driver no longer fits.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use crate::error::TzError;
use crate::stats::TzStats;
use crate::Result;

/// Default allocation alignment (one cache line).
const DEFAULT_ALIGN: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FreeBlock {
    offset: usize,
    size: usize,
}

#[derive(Debug)]
struct SecureRamInner {
    base_addr: u64,
    capacity: usize,
    free_list: Vec<FreeBlock>,
    in_use: usize,
    allocation_count: u64,
    failed_allocations: u64,
}

impl SecureRamInner {
    fn available(&self) -> usize {
        self.capacity - self.in_use
    }

    fn alloc(&mut self, size: usize) -> Option<usize> {
        let size = round_up(size.max(1), DEFAULT_ALIGN);
        let idx = self.free_list.iter().position(|b| b.size >= size)?;
        let block = self.free_list[idx];
        let offset = block.offset;
        if block.size == size {
            self.free_list.remove(idx);
        } else {
            self.free_list[idx] = FreeBlock {
                offset: block.offset + size,
                size: block.size - size,
            };
        }
        self.in_use += size;
        self.allocation_count += 1;
        Some(offset)
    }

    fn free(&mut self, offset: usize, size: usize) {
        let size = round_up(size.max(1), DEFAULT_ALIGN);
        self.in_use -= size;
        self.free_list.push(FreeBlock { offset, size });
        self.free_list.sort_by_key(|b| b.offset);
        // Coalesce adjacent blocks to fight fragmentation.
        let mut merged: Vec<FreeBlock> = Vec::with_capacity(self.free_list.len());
        for block in self.free_list.drain(..) {
            match merged.last_mut() {
                Some(last) if last.offset + last.size == block.offset => {
                    last.size += block.size;
                }
                _ => merged.push(block),
            }
        }
        self.free_list = merged;
    }
}

fn round_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// The secure-RAM carve-out allocator.
///
/// Cloning yields another handle onto the same pool.
///
/// ```
/// use perisec_tz::secure_mem::SecureRam;
/// use perisec_tz::stats::TzStats;
///
/// let ram = SecureRam::new(0xF000_0000, 64 * 1024, TzStats::new());
/// let buf = ram.alloc(4096).expect("fits");
/// assert!(ram.bytes_in_use() >= 4096);
/// drop(buf);
/// assert_eq!(ram.bytes_in_use(), 0);
/// ```
#[derive(Clone)]
pub struct SecureRam {
    inner: Arc<Mutex<SecureRamInner>>,
    shared: Arc<Mutex<SharedRegistry>>,
    stats: TzStats,
}

/// Registry of content-keyed shared reservations (see
/// [`SecureRam::reserve_shared`]). Entries are weak so the underlying
/// buffer is freed when the last [`SharedReservation`] drops.
#[derive(Default)]
struct SharedRegistry {
    entries: HashMap<u64, Weak<SharedEntry>>,
    /// Cumulative bytes that were *not* allocated because an identical
    /// reservation already existed — the model-dedup saving.
    deduped_bytes: u64,
    /// Number of reservations that were served from an existing entry.
    dedup_hits: u64,
}

struct SharedEntry {
    key: u64,
    buf: SecureBuf,
}

impl fmt::Debug for SecureRam {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("SecureRam")
            .field("base_addr", &format_args!("{:#x}", inner.base_addr))
            .field("capacity", &inner.capacity)
            .field("in_use", &inner.in_use)
            .finish()
    }
}

impl SecureRam {
    /// Creates a pool of `capacity` bytes whose first byte has simulated
    /// physical address `base_addr`.
    pub fn new(base_addr: u64, capacity: usize, stats: TzStats) -> Self {
        SecureRam {
            inner: Arc::new(Mutex::new(SecureRamInner {
                base_addr,
                capacity,
                free_list: vec![FreeBlock {
                    offset: 0,
                    size: capacity,
                }],
                in_use: 0,
                allocation_count: 0,
                failed_allocations: 0,
            })),
            shared: Arc::new(Mutex::new(SharedRegistry::default())),
            stats,
        }
    }

    /// Reserves `size` bytes under a shared content `key` — the
    /// model-dedup path. The first reservation for a key allocates from
    /// the carve-out; every later reservation for the same key (while any
    /// earlier one is still alive) charges **nothing** and hands back a
    /// handle onto the same allocation. This models co-resident TAs
    /// hosting the same read-only model weights: the paper's "smaller ML
    /// models" mitigation generalized to model *sharing* — N sessions,
    /// one copy of the weights in secure RAM.
    ///
    /// The saving is observable through [`SecureRam::dedup_saved_bytes`]
    /// and [`SecureRam::dedup_hits`]. When the last handle for a key
    /// drops, the allocation is returned to the pool; a later reservation
    /// for the key allocates afresh.
    ///
    /// # Errors
    ///
    /// Returns [`TzError::SecureRamExhausted`] if the first reservation
    /// for the key does not fit, and [`TzError::SharedReservationMismatch`]
    /// if a later reservation requests a different size than the live
    /// allocation under the key holds — serving that silently would hand
    /// back a wrong-size buffer and credit phantom dedup savings.
    pub fn reserve_shared(&self, key: u64, size: usize) -> Result<SharedReservation> {
        let mut shared = self.shared.lock();
        if let Some(entry) = shared.entries.get(&key).and_then(Weak::upgrade) {
            if entry.buf.len() != size {
                return Err(TzError::SharedReservationMismatch {
                    key,
                    existing: entry.buf.len(),
                    requested: size,
                });
            }
            shared.deduped_bytes += round_up(size.max(1), DEFAULT_ALIGN) as u64;
            shared.dedup_hits += 1;
            return Ok(SharedReservation { entry });
        }
        let buf = self.alloc(size)?;
        let entry = Arc::new(SharedEntry { key, buf });
        shared.entries.retain(|_, e| e.strong_count() > 0);
        shared.entries.insert(key, Arc::downgrade(&entry));
        Ok(SharedReservation { entry })
    }

    /// Cumulative bytes saved by shared reservations: what co-resident
    /// sessions *would* have allocated without dedup, minus what they did.
    pub fn dedup_saved_bytes(&self) -> u64 {
        self.shared.lock().deduped_bytes
    }

    /// Number of shared reservations that were served from an existing
    /// allocation instead of allocating again.
    pub fn dedup_hits(&self) -> u64 {
        self.shared.lock().dedup_hits
    }

    /// Number of distinct live shared allocations.
    pub fn shared_reservation_count(&self) -> usize {
        self.shared
            .lock()
            .entries
            .values()
            .filter(|e| e.strong_count() > 0)
            .count()
    }

    /// Allocates a zeroed secure buffer of `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`TzError::SecureRamExhausted`] if no free block is large
    /// enough (either genuinely out of memory, or fragmented).
    pub fn alloc(&self, size: usize) -> Result<SecureBuf> {
        let mut inner = self.inner.lock();
        match inner.alloc(size) {
            Some(offset) => {
                let addr = inner.base_addr + offset as u64;
                let in_use = inner.in_use as u64;
                drop(inner);
                self.stats.record_secure_ram_usage(in_use);
                Ok(SecureBuf {
                    addr,
                    offset,
                    data: vec![0u8; size],
                    pool: Arc::downgrade(&self.inner),
                })
            }
            None => {
                inner.failed_allocations += 1;
                let available = inner.available();
                Err(TzError::SecureRamExhausted {
                    requested: size,
                    available,
                })
            }
        }
    }

    /// Total pool capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Bytes currently allocated (after alignment rounding).
    pub fn bytes_in_use(&self) -> usize {
        self.inner.lock().in_use
    }

    /// Bytes currently free.
    pub fn bytes_available(&self) -> usize {
        self.inner.lock().available()
    }

    /// Number of successful allocations over the pool's lifetime.
    pub fn allocation_count(&self) -> u64 {
        self.inner.lock().allocation_count
    }

    /// Number of failed allocations over the pool's lifetime.
    pub fn failed_allocations(&self) -> u64 {
        self.inner.lock().failed_allocations
    }

    /// Simulated physical base address of the pool.
    pub fn base_addr(&self) -> u64 {
        self.inner.lock().base_addr
    }

    /// Returns `true` if a buffer of `size` bytes would currently fit.
    pub fn would_fit(&self, size: usize) -> bool {
        let size = round_up(size.max(1), DEFAULT_ALIGN);
        self.inner.lock().free_list.iter().any(|b| b.size >= size)
    }
}

/// An owned buffer allocated from secure RAM.
///
/// The buffer's bytes live on the host heap (this is a simulation), but the
/// allocation is accounted against the secure carve-out and freed back to it
/// on drop. The simulated physical address is stable for the lifetime of the
/// buffer and lies inside the TZASC secure region, so passing it to
/// [`crate::tzasc::Tzasc::check_access`] from the normal world faults —
/// exactly the protection the paper relies on.
pub struct SecureBuf {
    addr: u64,
    offset: usize,
    data: Vec<u8>,
    pool: std::sync::Weak<Mutex<SecureRamInner>>,
}

impl SecureBuf {
    /// Simulated physical address of the first byte.
    pub fn addr(&self) -> u64 {
        self.addr
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Copies `src` into the buffer starting at `offset`, returning the
    /// number of bytes copied (truncated at the end of the buffer).
    pub fn write_at(&mut self, offset: usize, src: &[u8]) -> usize {
        if offset >= self.data.len() {
            return 0;
        }
        let n = src.len().min(self.data.len() - offset);
        self.data[offset..offset + n].copy_from_slice(&src[..n]);
        n
    }
}

impl fmt::Debug for SecureBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecureBuf")
            .field("addr", &format_args!("{:#x}", self.addr))
            .field("len", &self.data.len())
            .finish()
    }
}

impl Drop for SecureBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.lock().free(self.offset, self.data.len());
        }
    }
}

impl AsRef<[u8]> for SecureBuf {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl AsMut<[u8]> for SecureBuf {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// A handle onto a content-keyed shared secure-RAM reservation (see
/// [`SecureRam::reserve_shared`]). All handles for one key refer to the
/// **same** allocation; the allocation is freed when the last handle
/// drops. Handles are read-only: shared reservations model read-only
/// model weights, which is what makes charging them once sound.
#[derive(Clone)]
pub struct SharedReservation {
    entry: Arc<SharedEntry>,
}

impl SharedReservation {
    /// The content key the reservation was made under.
    pub fn key(&self) -> u64 {
        self.entry.key
    }

    /// Simulated physical address of the shared allocation.
    pub fn addr(&self) -> u64 {
        self.entry.buf.addr()
    }

    /// Size of the shared allocation in bytes.
    pub fn len(&self) -> usize {
        self.entry.buf.len()
    }

    /// Whether the reservation is empty.
    pub fn is_empty(&self) -> bool {
        self.entry.buf.is_empty()
    }

    /// Number of live handles onto this allocation (co-resident users).
    pub fn handle_count(&self) -> usize {
        Arc::strong_count(&self.entry)
    }
}

impl fmt::Debug for SharedReservation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedReservation")
            .field("key", &format_args!("{:#x}", self.entry.key))
            .field("addr", &format_args!("{:#x}", self.entry.buf.addr()))
            .field("len", &self.entry.buf.len())
            .field("handles", &Arc::strong_count(&self.entry))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> SecureRam {
        SecureRam::new(0xF000_0000, capacity, TzStats::new())
    }

    #[test]
    fn alloc_and_drop_returns_memory() {
        let ram = pool(16 * 1024);
        let a = ram.alloc(1000).unwrap();
        let b = ram.alloc(2000).unwrap();
        assert!(ram.bytes_in_use() >= 3000);
        assert_ne!(a.addr(), b.addr());
        drop(a);
        drop(b);
        assert_eq!(ram.bytes_in_use(), 0);
        assert_eq!(ram.allocation_count(), 2);
    }

    #[test]
    fn exhaustion_is_reported_not_panicked() {
        let ram = pool(4 * 1024);
        let _a = ram.alloc(3 * 1024).unwrap();
        let err = ram.alloc(2 * 1024).unwrap_err();
        assert!(matches!(err, TzError::SecureRamExhausted { .. }));
        assert_eq!(ram.failed_allocations(), 1);
    }

    #[test]
    fn freed_blocks_coalesce() {
        let ram = pool(8 * 1024);
        let a = ram.alloc(2 * 1024).unwrap();
        let b = ram.alloc(2 * 1024).unwrap();
        let c = ram.alloc(2 * 1024).unwrap();
        drop(a);
        drop(b);
        drop(c);
        // After everything is freed a single 8 KiB allocation must succeed
        // again, which requires the free blocks to have been merged.
        let big = ram.alloc(8 * 1024 - DEFAULT_ALIGN).unwrap();
        assert!(!big.is_empty());
    }

    #[test]
    fn addresses_fall_inside_the_carveout() {
        let ram = pool(64 * 1024);
        let buf = ram.alloc(128).unwrap();
        assert!(buf.addr() >= ram.base_addr());
        assert!(buf.addr() < ram.base_addr() + ram.capacity() as u64);
    }

    #[test]
    fn buffers_are_zeroed_and_writable() {
        let ram = pool(4 * 1024);
        let mut buf = ram.alloc(64).unwrap();
        assert!(buf.as_slice().iter().all(|&b| b == 0));
        let written = buf.write_at(60, &[1, 2, 3, 4, 5, 6]);
        assert_eq!(written, 4);
        assert_eq!(&buf.as_slice()[60..64], &[1, 2, 3, 4]);
        assert_eq!(buf.write_at(64, &[9]), 0);
    }

    #[test]
    fn peak_usage_is_recorded_in_stats() {
        let stats = TzStats::new();
        let ram = SecureRam::new(0xF000_0000, 32 * 1024, stats.clone());
        let a = ram.alloc(10_000).unwrap();
        let b = ram.alloc(10_000).unwrap();
        drop(a);
        drop(b);
        assert!(stats.snapshot().secure_ram_peak_bytes >= 20_000);
    }

    #[test]
    fn shared_reservations_charge_once_per_key() {
        let ram = pool(64 * 1024);
        let a = ram.reserve_shared(0x0DE1, 10_000).unwrap();
        let used_after_first = ram.bytes_in_use();
        assert!(used_after_first >= 10_000);
        // A second co-resident session with the same weights: no new bytes.
        let b = ram.reserve_shared(a.key(), 10_000).unwrap();
        assert_eq!(ram.bytes_in_use(), used_after_first);
        assert_eq!(a.addr(), b.addr());
        assert_eq!(b.handle_count(), 2);
        assert!(ram.dedup_saved_bytes() >= 10_000);
        assert_eq!(ram.dedup_hits(), 1);
        assert_eq!(ram.shared_reservation_count(), 1);
        // A different key is a different allocation.
        let c = ram.reserve_shared(0x07E2, 4_000).unwrap();
        assert_ne!(c.addr(), a.addr());
        assert_eq!(ram.shared_reservation_count(), 2);
        let used_after_c = ram.bytes_in_use();
        // Dropping one handle keeps the shared allocation alive...
        drop(a);
        assert_eq!(ram.bytes_in_use(), used_after_c);
        // ...dropping the last frees it.
        drop(b);
        assert_eq!(ram.bytes_in_use(), used_after_c - used_after_first);
        // A fresh key allocates afresh.
        let again = ram.reserve_shared(0x0DE1, 8_000).unwrap();
        assert!(!again.is_empty());
        drop(c);
        drop(again);
        assert_eq!(ram.bytes_in_use(), 0);
    }

    #[test]
    fn shared_reservation_exhaustion_is_reported() {
        let ram = pool(8 * 1024);
        let _a = ram.reserve_shared(1, 6 * 1024).unwrap();
        let err = ram.reserve_shared(2, 6 * 1024).unwrap_err();
        assert!(matches!(err, TzError::SecureRamExhausted { .. }));
        // The same key still dedups even under pressure.
        let b = ram.reserve_shared(1, 6 * 1024).unwrap();
        assert_eq!(b.handle_count(), 2);
    }

    #[test]
    fn shared_reservation_size_mismatch_is_rejected() {
        let ram = pool(64 * 1024);
        let a = ram.reserve_shared(9, 10_000).unwrap();
        let err = ram.reserve_shared(9, 12_000).unwrap_err();
        assert!(matches!(
            err,
            TzError::SharedReservationMismatch {
                key: 9,
                existing: 10_000,
                requested: 12_000,
            }
        ));
        // Nothing was credited for the rejected request.
        assert_eq!(ram.dedup_hits(), 0);
        assert_eq!(ram.dedup_saved_bytes(), 0);
        // A matching size still dedups.
        assert!(ram.reserve_shared(9, 10_000).is_ok());
        drop(a);
    }

    #[test]
    fn would_fit_predicts_alloc_success() {
        let ram = pool(4 * 1024);
        assert!(ram.would_fit(4 * 1024 - DEFAULT_ALIGN));
        let _hold = ram.alloc(3 * 1024).unwrap();
        assert!(!ram.would_fit(2 * 1024));
        assert!(ram.would_fit(512));
    }
}
