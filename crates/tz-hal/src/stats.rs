//! Shared counters for the machine model.
//!
//! Every layer of the stack increments the same [`TzStats`] instance, so an
//! experiment can ask "how many world switches / SMCs / cross-world bytes
//! did this end-to-end run cost?" — the quantities the paper identifies as
//! the dominant TEE overheads (§V).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A snapshot of the machine-model counters, suitable for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TzStatsSnapshot {
    /// Number of secure monitor calls issued.
    pub smc_calls: u64,
    /// Number of world switches (each direction counts once).
    pub world_switches: u64,
    /// Bytes copied from the normal world into the secure world.
    pub bytes_to_secure: u64,
    /// Bytes copied from the secure world into the normal world.
    pub bytes_to_normal: u64,
    /// Supplicant RPC round trips.
    pub supplicant_rpcs: u64,
    /// Normal-world interrupts taken.
    pub irqs: u64,
    /// Secure-world (FIQ-routed) interrupts taken.
    pub secure_irqs: u64,
    /// Peak bytes allocated from secure RAM.
    pub secure_ram_peak_bytes: u64,
    /// TZASC permission faults observed (and rejected).
    pub permission_faults: u64,
}

/// Thread-safe counters shared by all components of one simulated platform.
///
/// Cloning yields another handle to the same counters.
#[derive(Debug, Clone, Default)]
pub struct TzStats {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    smc_calls: AtomicU64,
    world_switches: AtomicU64,
    bytes_to_secure: AtomicU64,
    bytes_to_normal: AtomicU64,
    supplicant_rpcs: AtomicU64,
    irqs: AtomicU64,
    secure_irqs: AtomicU64,
    secure_ram_peak_bytes: AtomicU64,
    permission_faults: AtomicU64,
}

impl TzStats {
    /// Creates a fresh set of counters, all zero.
    pub fn new() -> Self {
        TzStats::default()
    }

    /// Records one SMC.
    pub fn record_smc(&self) {
        self.inner.smc_calls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one world switch.
    pub fn record_world_switch(&self) {
        self.inner.world_switches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a copy of `bytes` into the secure world.
    pub fn record_copy_to_secure(&self, bytes: u64) {
        self.inner
            .bytes_to_secure
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a copy of `bytes` into the normal world.
    pub fn record_copy_to_normal(&self, bytes: u64) {
        self.inner
            .bytes_to_normal
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one supplicant RPC round trip.
    pub fn record_supplicant_rpc(&self) {
        self.inner.supplicant_rpcs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a normal-world interrupt.
    pub fn record_irq(&self) {
        self.inner.irqs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a secure interrupt.
    pub fn record_secure_irq(&self) {
        self.inner.secure_irqs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the current secure-RAM usage, updating the peak if needed.
    pub fn record_secure_ram_usage(&self, bytes_in_use: u64) {
        self.inner
            .secure_ram_peak_bytes
            .fetch_max(bytes_in_use, Ordering::Relaxed);
    }

    /// Records a rejected TZASC access.
    pub fn record_permission_fault(&self) {
        self.inner.permission_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of SMCs so far.
    pub fn smc_calls(&self) -> u64 {
        self.inner.smc_calls.load(Ordering::Relaxed)
    }

    /// Number of world switches so far.
    pub fn world_switches(&self) -> u64 {
        self.inner.world_switches.load(Ordering::Relaxed)
    }

    /// Number of supplicant RPCs so far.
    pub fn supplicant_rpcs(&self) -> u64 {
        self.inner.supplicant_rpcs.load(Ordering::Relaxed)
    }

    /// Number of TZASC permission faults so far.
    pub fn permission_faults(&self) -> u64 {
        self.inner.permission_faults.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot of all counters for reporting.
    pub fn snapshot(&self) -> TzStatsSnapshot {
        TzStatsSnapshot {
            smc_calls: self.inner.smc_calls.load(Ordering::Relaxed),
            world_switches: self.inner.world_switches.load(Ordering::Relaxed),
            bytes_to_secure: self.inner.bytes_to_secure.load(Ordering::Relaxed),
            bytes_to_normal: self.inner.bytes_to_normal.load(Ordering::Relaxed),
            supplicant_rpcs: self.inner.supplicant_rpcs.load(Ordering::Relaxed),
            irqs: self.inner.irqs.load(Ordering::Relaxed),
            secure_irqs: self.inner.secure_irqs.load(Ordering::Relaxed),
            secure_ram_peak_bytes: self.inner.secure_ram_peak_bytes.load(Ordering::Relaxed),
            permission_faults: self.inner.permission_faults.load(Ordering::Relaxed),
        }
    }
}

impl TzStatsSnapshot {
    /// Difference between two snapshots (`self` taken after `earlier`).
    ///
    /// Peak values are not differenced; the later peak is kept.
    #[must_use]
    pub fn delta_since(&self, earlier: &TzStatsSnapshot) -> TzStatsSnapshot {
        TzStatsSnapshot {
            smc_calls: self.smc_calls - earlier.smc_calls,
            world_switches: self.world_switches - earlier.world_switches,
            bytes_to_secure: self.bytes_to_secure - earlier.bytes_to_secure,
            bytes_to_normal: self.bytes_to_normal - earlier.bytes_to_normal,
            supplicant_rpcs: self.supplicant_rpcs - earlier.supplicant_rpcs,
            irqs: self.irqs - earlier.irqs,
            secure_irqs: self.secure_irqs - earlier.secure_irqs,
            secure_ram_peak_bytes: self.secure_ram_peak_bytes,
            permission_faults: self.permission_faults - earlier.permission_faults,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_are_shared() {
        let stats = TzStats::new();
        let other = stats.clone();
        stats.record_smc();
        other.record_smc();
        stats.record_world_switch();
        stats.record_copy_to_secure(100);
        other.record_copy_to_normal(50);
        stats.record_supplicant_rpc();

        let snap = other.snapshot();
        assert_eq!(snap.smc_calls, 2);
        assert_eq!(snap.world_switches, 1);
        assert_eq!(snap.bytes_to_secure, 100);
        assert_eq!(snap.bytes_to_normal, 50);
        assert_eq!(snap.supplicant_rpcs, 1);
    }

    #[test]
    fn peak_secure_ram_tracks_maximum() {
        let stats = TzStats::new();
        stats.record_secure_ram_usage(1_000);
        stats.record_secure_ram_usage(5_000);
        stats.record_secure_ram_usage(2_000);
        assert_eq!(stats.snapshot().secure_ram_peak_bytes, 5_000);
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let stats = TzStats::new();
        stats.record_smc();
        let before = stats.snapshot();
        stats.record_smc();
        stats.record_smc();
        stats.record_irq();
        let after = stats.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.smc_calls, 2);
        assert_eq!(delta.irqs, 1);
        assert_eq!(delta.world_switches, 0);
    }

    #[test]
    fn stats_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TzStats>();
    }
}
