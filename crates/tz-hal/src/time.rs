//! Virtual time: a deterministic, shareable simulation clock.
//!
//! Every simulated component charges its latency against a single
//! [`SimClock`]. This keeps end-to-end experiments deterministic and lets
//! the power model integrate component activity over a consistent timeline.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A span of virtual time, with nanosecond resolution.
///
/// `SimDuration` is a thin newtype over a nanosecond count; it exists so
/// that durations cannot be confused with instants or raw cycle counts
/// (C-NEWTYPE).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a floating-point number of seconds.
    ///
    /// Negative or non-finite inputs are clamped to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Total nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Total microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Total milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration expressed as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration expressed as floating-point milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration expressed as floating-point microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// Returns `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// A point on the virtual timeline, measured in nanoseconds since the
/// platform was constructed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The origin of the timeline.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Creates an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since an earlier instant (saturating at zero).
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

/// A shareable, monotonically advancing virtual clock.
///
/// Cloning a `SimClock` yields a handle onto the same timeline; advancing
/// time through any handle is visible through all of them. The clock never
/// goes backwards.
///
/// ```
/// use perisec_tz::time::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let c2 = clock.clone();
/// clock.advance(SimDuration::from_micros(5));
/// assert_eq!(c2.now().as_nanos(), 5_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            now_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimInstant {
        SimInstant(self.now_ns.load(Ordering::SeqCst))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimInstant {
        let prev = self.now_ns.fetch_add(d.as_nanos(), Ordering::SeqCst);
        SimInstant(prev + d.as_nanos())
    }

    /// Advances the clock so that it reads at least `target`.
    ///
    /// Used by device models that deliver samples at fixed wall-clock rates:
    /// if the pipeline finished its work before the next sample period, the
    /// device "waits" until the period has elapsed.
    pub fn advance_to(&self, target: SimInstant) -> SimInstant {
        let mut current = self.now_ns.load(Ordering::SeqCst);
        while current < target.as_nanos() {
            match self.now_ns.compare_exchange(
                current,
                target.as_nanos(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return target,
                Err(actual) => current = actual,
            }
        }
        SimInstant(current)
    }

    /// Time elapsed since `earlier`.
    pub fn elapsed_since(&self, earlier: SimInstant) -> SimDuration {
        self.now().duration_since(earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!((a + b).as_micros(), 13);
        assert_eq!((a - b).as_micros(), 7);
        assert_eq!((b - a), SimDuration::ZERO);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(a / 0, a); // division clamps the divisor to 1
    }

    #[test]
    fn duration_sum_and_display() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn clock_is_shared_and_monotonic() {
        let clock = SimClock::new();
        let other = clock.clone();
        assert_eq!(clock.now(), SimInstant::EPOCH);
        clock.advance(SimDuration::from_nanos(100));
        other.advance(SimDuration::from_nanos(50));
        assert_eq!(clock.now().as_nanos(), 150);
        assert_eq!(other.now().as_nanos(), 150);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_micros(10));
        let early = SimInstant::from_nanos(1_000);
        clock.advance_to(early);
        assert_eq!(clock.now().as_nanos(), 10_000);
        clock.advance_to(SimInstant::from_nanos(20_000));
        assert_eq!(clock.now().as_nanos(), 20_000);
    }

    #[test]
    fn instant_arithmetic() {
        let t0 = SimInstant::from_nanos(1_000);
        let t1 = t0 + SimDuration::from_nanos(500);
        assert_eq!(t1.as_nanos(), 1_500);
        assert_eq!((t1 - t0).as_nanos(), 500);
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }
}
