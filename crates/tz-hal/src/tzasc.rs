//! TrustZone Address Space Controller (TZASC) model.
//!
//! The paper relies on the TZASC to "carve out secure RAM memory from which
//! a secure driver's I/O buffers are allocated" (§II). This module models a
//! physical address space partitioned into regions, each tagged secure or
//! non-secure, and enforces the TrustZone access rule: the normal world may
//! only touch non-secure regions, while the secure world may touch both.

use std::fmt;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::TzError;
use crate::stats::TzStats;
use crate::world::World;
use crate::Result;

/// Security attribute of a physical memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityAttr {
    /// Accessible from both worlds.
    NonSecure,
    /// Accessible from the secure world only.
    Secure,
}

impl fmt::Display for SecurityAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityAttr::NonSecure => write!(f, "non-secure"),
            SecurityAttr::Secure => write!(f, "secure"),
        }
    }
}

/// A contiguous physical region with a security attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRegion {
    /// Base physical address.
    pub base: u64,
    /// Region size in bytes.
    pub size: u64,
    /// Security attribute enforced by the TZASC.
    pub attr: SecurityAttr,
    /// Human-readable name (for reports).
    pub name: String,
}

impl MemoryRegion {
    /// Exclusive end address of the region.
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Whether this region overlaps `other`.
    pub fn overlaps(&self, other: &MemoryRegion) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

/// The address space controller: an ordered set of non-overlapping regions
/// plus the access-check logic.
///
/// ```
/// use perisec_tz::tzasc::{Tzasc, SecurityAttr};
/// use perisec_tz::world::World;
/// use perisec_tz::stats::TzStats;
///
/// # fn main() -> Result<(), perisec_tz::TzError> {
/// let tzasc = Tzasc::new(TzStats::new());
/// tzasc.add_region(0x8000_0000, 0x4000_0000, SecurityAttr::NonSecure, "dram")?;
/// tzasc.add_region(0xC000_0000, 32 * 1024 * 1024, SecurityAttr::Secure, "secure-carveout")?;
///
/// assert!(tzasc.check_access(0x8000_1000, World::Normal, false).is_ok());
/// assert!(tzasc.check_access(0xC000_1000, World::Normal, true).is_err());
/// assert!(tzasc.check_access(0xC000_1000, World::Secure, true).is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Tzasc {
    regions: RwLock<Vec<MemoryRegion>>,
    stats: TzStats,
}

impl Tzasc {
    /// Creates an empty controller that records faults into `stats`.
    pub fn new(stats: TzStats) -> Self {
        Tzasc {
            regions: RwLock::new(Vec::new()),
            stats,
        }
    }

    /// Adds a region to the map.
    ///
    /// # Errors
    ///
    /// Returns [`TzError::InvalidRegion`] if the region is zero-sized, wraps
    /// the address space, or overlaps an existing region.
    pub fn add_region(&self, base: u64, size: u64, attr: SecurityAttr, name: &str) -> Result<()> {
        if size == 0 {
            return Err(TzError::InvalidRegion {
                reason: format!("region '{name}' has zero size"),
            });
        }
        if base.checked_add(size).is_none() {
            return Err(TzError::InvalidRegion {
                reason: format!("region '{name}' wraps the physical address space"),
            });
        }
        let candidate = MemoryRegion {
            base,
            size,
            attr,
            name: name.to_owned(),
        };
        let mut regions = self.regions.write();
        if let Some(existing) = regions.iter().find(|r| r.overlaps(&candidate)) {
            return Err(TzError::InvalidRegion {
                reason: format!(
                    "region '{name}' [{:#x}, {:#x}) overlaps existing region '{}'",
                    base,
                    candidate.end(),
                    existing.name
                ),
            });
        }
        regions.push(candidate);
        regions.sort_by_key(|r| r.base);
        Ok(())
    }

    /// Re-tags an existing region (e.g. converting a DRAM range into a
    /// secure carve-out at boot). The region is looked up by name.
    ///
    /// # Errors
    ///
    /// Returns [`TzError::InvalidRegion`] if no region has that name.
    pub fn set_region_attr(&self, name: &str, attr: SecurityAttr) -> Result<()> {
        let mut regions = self.regions.write();
        match regions.iter_mut().find(|r| r.name == name) {
            Some(region) => {
                region.attr = attr;
                Ok(())
            }
            None => Err(TzError::InvalidRegion {
                reason: format!("no region named '{name}'"),
            }),
        }
    }

    /// Checks whether `world` may access `addr`.
    ///
    /// # Errors
    ///
    /// * [`TzError::UnmappedAddress`] if no region contains `addr`.
    /// * [`TzError::PermissionFault`] if the normal world touches a secure
    ///   region. The fault is also counted in the shared statistics.
    pub fn check_access(&self, addr: u64, world: World, write: bool) -> Result<()> {
        let regions = self.regions.read();
        let region = regions
            .iter()
            .find(|r| r.contains(addr))
            .ok_or(TzError::UnmappedAddress { addr })?;
        match (region.attr, world) {
            (SecurityAttr::Secure, World::Normal) => {
                self.stats.record_permission_fault();
                Err(TzError::PermissionFault { addr, world, write })
            }
            _ => Ok(()),
        }
    }

    /// Checks a whole buffer `[addr, addr+len)`.
    ///
    /// # Errors
    ///
    /// Same as [`Tzasc::check_access`]; the first failing byte wins. An
    /// empty buffer is always allowed.
    pub fn check_range(&self, addr: u64, len: u64, world: World, write: bool) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        // Both endpoints plus region boundaries in between would be exact;
        // since regions are at least page-sized in practice, checking the
        // first and last byte is sufficient for the model.
        self.check_access(addr, world, write)?;
        self.check_access(addr + len - 1, world, write)
    }

    /// Returns the region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<MemoryRegion> {
        self.regions
            .read()
            .iter()
            .find(|r| r.contains(addr))
            .cloned()
    }

    /// Returns all configured regions, ordered by base address.
    pub fn regions(&self) -> Vec<MemoryRegion> {
        self.regions.read().clone()
    }

    /// Total bytes tagged secure.
    pub fn secure_bytes(&self) -> u64 {
        self.regions
            .read()
            .iter()
            .filter(|r| r.attr == SecurityAttr::Secure)
            .map(|r| r.size)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tzasc_with_default_map() -> Tzasc {
        let t = Tzasc::new(TzStats::new());
        t.add_region(0x8000_0000, 0x1000_0000, SecurityAttr::NonSecure, "dram")
            .unwrap();
        t.add_region(0xF000_0000, 0x0100_0000, SecurityAttr::Secure, "secure")
            .unwrap();
        t
    }

    #[test]
    fn rejects_zero_sized_and_wrapping_regions() {
        let t = Tzasc::new(TzStats::new());
        assert!(matches!(
            t.add_region(0x1000, 0, SecurityAttr::Secure, "zero"),
            Err(TzError::InvalidRegion { .. })
        ));
        assert!(matches!(
            t.add_region(u64::MAX - 10, 100, SecurityAttr::Secure, "wrap"),
            Err(TzError::InvalidRegion { .. })
        ));
    }

    #[test]
    fn rejects_overlapping_regions() {
        let t = tzasc_with_default_map();
        let err = t
            .add_region(0x8800_0000, 0x1000_0000, SecurityAttr::Secure, "overlap")
            .unwrap_err();
        match err {
            TzError::InvalidRegion { reason } => assert!(reason.contains("overlaps")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn normal_world_cannot_touch_secure_memory() {
        let t = tzasc_with_default_map();
        assert!(t.check_access(0xF000_0010, World::Secure, true).is_ok());
        let err = t
            .check_access(0xF000_0010, World::Normal, false)
            .unwrap_err();
        assert!(matches!(err, TzError::PermissionFault { .. }));
        // the fault was recorded
        assert_eq!(t.stats.permission_faults(), 1);
    }

    #[test]
    fn secure_world_can_touch_both() {
        let t = tzasc_with_default_map();
        assert!(t.check_access(0x8000_0010, World::Secure, true).is_ok());
        assert!(t.check_access(0xF000_0010, World::Secure, false).is_ok());
    }

    #[test]
    fn unmapped_addresses_fault() {
        let t = tzasc_with_default_map();
        assert!(matches!(
            t.check_access(0x1000, World::Secure, false),
            Err(TzError::UnmappedAddress { addr: 0x1000 })
        ));
    }

    #[test]
    fn range_check_covers_both_ends() {
        let t = tzasc_with_default_map();
        // Range starting in DRAM but ending beyond it is rejected.
        assert!(t
            .check_range(0x8FFF_FFF0, 0x40, World::Normal, false)
            .is_err());
        assert!(t
            .check_range(0x8000_0000, 0x1000, World::Normal, false)
            .is_ok());
        assert!(t.check_range(0x8000_0000, 0, World::Normal, false).is_ok());
    }

    #[test]
    fn retagging_a_region_changes_enforcement() {
        let t = tzasc_with_default_map();
        t.set_region_attr("dram", SecurityAttr::Secure).unwrap();
        assert!(t.check_access(0x8000_0010, World::Normal, false).is_err());
        assert!(t
            .set_region_attr("nonexistent", SecurityAttr::Secure)
            .is_err());
    }

    #[test]
    fn secure_bytes_sums_only_secure_regions() {
        let t = tzasc_with_default_map();
        assert_eq!(t.secure_bytes(), 0x0100_0000);
    }
}
