//! The two TrustZone worlds.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The execution world of a TrustZone-capable processor.
///
/// TrustZone partitions the system into a *normal world* (the rich,
/// untrusted OS — Linux in the paper's design) and a *secure world*
/// (OP-TEE and its trusted applications). The distinction drives both the
/// TZASC access checks and the cost accounting for world switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum World {
    /// The untrusted, rich-OS world (Linux kernel, user space, TEE
    /// supplicant).
    Normal,
    /// The trusted world (OP-TEE core, PTAs, TAs, the ported driver).
    Secure,
}

impl World {
    /// The opposite world.
    #[must_use]
    pub fn other(self) -> World {
        match self {
            World::Normal => World::Secure,
            World::Secure => World::Normal,
        }
    }

    /// Returns `true` for [`World::Secure`].
    pub fn is_secure(self) -> bool {
        matches!(self, World::Secure)
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            World::Normal => write!(f, "normal"),
            World::Secure => write!(f, "secure"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_an_involution() {
        assert_eq!(World::Normal.other(), World::Secure);
        assert_eq!(World::Secure.other(), World::Normal);
        assert_eq!(World::Normal.other().other(), World::Normal);
    }

    #[test]
    fn secure_predicate() {
        assert!(World::Secure.is_secure());
        assert!(!World::Normal.is_secure());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(World::Normal.to_string(), "normal");
        assert_eq!(World::Secure.to_string(), "secure");
    }
}
