//! Labelled utterance corpus generation.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::vocab::{Vocabulary, WordCategory};

/// One labelled utterance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utterance {
    /// The words, in order.
    pub words: Vec<String>,
    /// Token ids of the words (vocabulary order).
    pub tokens: Vec<usize>,
    /// Ground-truth sensitivity (does the utterance reveal private
    /// information?).
    pub sensitive: bool,
    /// The dominant category of the utterance.
    pub category: WordCategory,
}

impl Utterance {
    /// The utterance as a space-separated string.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the utterance has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

/// Deterministic generator of labelled utterances.
#[derive(Debug, Clone)]
pub struct CorpusGenerator {
    vocabulary: Vocabulary,
    rng: SmallRng,
    sensitive_fraction: f64,
}

impl CorpusGenerator {
    /// Creates a generator over the given vocabulary.
    pub fn new(vocabulary: Vocabulary, sensitive_fraction: f64, seed: u64) -> Self {
        CorpusGenerator {
            vocabulary,
            rng: SmallRng::seed_from_u64(seed),
            sensitive_fraction: sensitive_fraction.clamp(0.0, 1.0),
        }
    }

    /// Generator with the default vocabulary and a balanced corpus.
    pub fn smart_home(seed: u64) -> Self {
        CorpusGenerator::new(Vocabulary::smart_home(), 0.5, seed)
    }

    /// The vocabulary in use.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// Generates one utterance.
    ///
    /// Sensitive utterances mix neutral carrier words with 1–3 words from a
    /// sensitive category; non-sensitive ones use only command / smalltalk
    /// words. Lengths are 4–10 words.
    pub fn utterance(&mut self) -> Utterance {
        let sensitive = self.rng.gen_bool(self.sensitive_fraction);
        let length = self.rng.gen_range(4..=10);
        let neutral: Vec<usize> = [WordCategory::Command, WordCategory::Smalltalk]
            .iter()
            .flat_map(|&c| self.vocabulary.tokens_in(c))
            .collect();
        let category = if sensitive {
            *[
                WordCategory::Health,
                WordCategory::Finance,
                WordCategory::Credentials,
                WordCategory::Presence,
            ]
            .choose(&mut self.rng)
            .expect("non-empty category list")
        } else if self.rng.gen_bool(0.5) {
            WordCategory::Command
        } else {
            WordCategory::Smalltalk
        };
        let mut tokens: Vec<usize> = (0..length)
            .map(|_| *neutral.choose(&mut self.rng).expect("neutral words exist"))
            .collect();
        if sensitive {
            let pool = self.vocabulary.tokens_in(category);
            let inserts = self.rng.gen_range(1..=3usize.min(length));
            for _ in 0..inserts {
                let pos = self.rng.gen_range(0..tokens.len());
                tokens[pos] = *pool.choose(&mut self.rng).expect("sensitive words exist");
            }
        }
        let words = tokens
            .iter()
            .map(|&t| {
                self.vocabulary
                    .word(t)
                    .expect("token in range")
                    .text
                    .clone()
            })
            .collect();
        Utterance {
            words,
            tokens,
            sensitive,
            category,
        }
    }

    /// Generates `n` utterances.
    pub fn generate(&mut self, n: usize) -> Vec<Utterance> {
        (0..n).map(|_| self.utterance()).collect()
    }

    /// Generates a train/test split for classifier experiments.
    pub fn train_test_split(
        &mut self,
        train: usize,
        test: usize,
    ) -> (Vec<Utterance>, Vec<Utterance>) {
        (self.generate(train), self.generate(test))
    }
}

/// Converts utterances into the `(tokens, label)` pairs the classifier
/// trainer consumes.
pub fn to_training_examples(utterances: &[Utterance]) -> Vec<(Vec<usize>, bool)> {
    utterances
        .iter()
        .map(|u| (u.tokens.clone(), u.sensitive))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = CorpusGenerator::smart_home(7);
        let mut b = CorpusGenerator::smart_home(7);
        assert_eq!(a.generate(20), b.generate(20));
        let mut c = CorpusGenerator::smart_home(8);
        assert_ne!(a.generate(20), c.generate(20));
    }

    #[test]
    fn labels_match_token_content() {
        let mut generator = CorpusGenerator::smart_home(42);
        let utterances = generator.generate(200);
        for u in &utterances {
            assert_eq!(
                u.sensitive,
                generator.vocabulary().contains_sensitive(&u.tokens),
                "label disagrees with content for '{}'",
                u.text()
            );
            assert!((4..=10).contains(&u.len()));
            assert_eq!(u.tokens.len(), u.words.len());
        }
        let sensitive = utterances.iter().filter(|u| u.sensitive).count();
        assert!(
            (60..=140).contains(&sensitive),
            "sensitive count {sensitive}"
        );
    }

    #[test]
    fn sensitive_fraction_is_respected() {
        let mut none = CorpusGenerator::new(Vocabulary::smart_home(), 0.0, 1);
        assert!(none.generate(50).iter().all(|u| !u.sensitive));
        let mut all = CorpusGenerator::new(Vocabulary::smart_home(), 1.0, 1);
        assert!(all.generate(50).iter().all(|u| u.sensitive));
    }

    #[test]
    fn training_examples_preserve_labels() {
        let mut generator = CorpusGenerator::smart_home(3);
        let utterances = generator.generate(10);
        let examples = to_training_examples(&utterances);
        assert_eq!(examples.len(), 10);
        for (example, utterance) in examples.iter().zip(utterances.iter()) {
            assert_eq!(example.0, utterance.tokens);
            assert_eq!(example.1, utterance.sensitive);
        }
    }

    #[test]
    fn sensitive_utterances_name_their_category() {
        let mut generator = CorpusGenerator::new(Vocabulary::smart_home(), 1.0, 9);
        for u in generator.generate(50) {
            assert!(u.category.is_sensitive());
            // At least one token of the named category is present.
            let vocab = Vocabulary::smart_home();
            assert!(u
                .tokens
                .iter()
                .any(|&t| vocab.word(t).unwrap().category == u.category));
        }
    }
}
