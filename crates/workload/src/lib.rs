//! # perisec-workload — synthetic labelled speech and smart-home scenarios
//!
//! The paper's motivating data — smart-speaker recordings that sometimes
//! contain sensitive content (the 2019 Google Assistant leak) — is not
//! available, so this crate generates a deterministic substitute:
//!
//! * [`vocab`] — a smart-home vocabulary whose words carry a privacy
//!   category (health, finance, credentials, presence vs. neutral
//!   command/smalltalk words);
//! * [`synth`] — a per-word waveform synthesizer: every word renders to a
//!   distinct dual-tone signature, so the in-repo keyword STT can actually
//!   recover the words from PCM;
//! * [`corpus`] — labelled utterance generation (token sequences + ground
//!   truth sensitivity) with train/test splits for classifier training;
//! * [`scenario`] — timed end-to-end scenarios (a morning at home, an
//!   office day, parameterized mixes) used by the pipeline experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod scenario;
pub mod synth;
pub mod vocab;

pub use corpus::{CorpusGenerator, Utterance};
pub use scenario::{Scenario, ScenarioEvent};
pub use synth::SpeechSynthesizer;
pub use vocab::{Vocabulary, WordCategory};
