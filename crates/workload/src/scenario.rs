//! Timed end-to-end scenarios.
//!
//! A scenario is what the full pipeline experiments replay: a sequence of
//! utterances spoken at known (virtual) times, with ground-truth labels, so
//! that latency, energy and privacy leakage can all be attributed.

use serde::{Deserialize, Serialize};

use perisec_tz::time::SimDuration;

use crate::corpus::{CorpusGenerator, Utterance};
use crate::vocab::Vocabulary;

/// One event of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Index of the event (doubles as the AVS dialog id).
    pub id: u64,
    /// Time offset from the start of the scenario at which the utterance
    /// begins.
    pub at: SimDuration,
    /// The utterance spoken.
    pub utterance: Utterance,
}

/// A named, timed sequence of utterances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Events in chronological order.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Builds a scenario from utterances spaced `spacing` apart.
    pub fn from_utterances(
        name: impl Into<String>,
        utterances: Vec<Utterance>,
        spacing: SimDuration,
    ) -> Self {
        let events = utterances
            .into_iter()
            .enumerate()
            .map(|(i, utterance)| ScenarioEvent {
                id: i as u64,
                at: spacing * i as u64,
                utterance,
            })
            .collect();
        Scenario {
            name: name.into(),
            events,
        }
    }

    /// A morning at home: `n` mixed utterances (roughly 40 % sensitive),
    /// one every 20 seconds.
    pub fn smart_speaker_morning(n: usize) -> Self {
        let mut generator = CorpusGenerator::new(Vocabulary::smart_home(), 0.4, 0xA110);
        Scenario::from_utterances(
            "smart-speaker-morning",
            generator.generate(n),
            SimDuration::from_secs(20),
        )
    }

    /// A fully parameterized mix, for sweeps.
    pub fn mixed(n: usize, sensitive_fraction: f64, spacing: SimDuration, seed: u64) -> Self {
        let mut generator =
            CorpusGenerator::new(Vocabulary::smart_home(), sensitive_fraction, seed);
        Scenario::from_utterances(
            format!("mixed-{n}x{:.0}pct", sensitive_fraction * 100.0),
            generator.generate(n),
            spacing,
        )
    }

    /// Fan-out for a device fleet: `devices` scenarios of `n` utterances
    /// each, with per-device corpora derived from `seed` so every device
    /// replays distinct (but reproducible) traffic.
    pub fn fleet(
        devices: usize,
        n: usize,
        sensitive_fraction: f64,
        spacing: SimDuration,
        seed: u64,
    ) -> Vec<Scenario> {
        (0..devices)
            .map(|device| {
                let mut generator = CorpusGenerator::new(
                    Vocabulary::smart_home(),
                    sensitive_fraction,
                    seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                Scenario::from_utterances(
                    format!("fleet-device-{device}"),
                    generator.generate(n),
                    spacing,
                )
            })
            .collect()
    }

    /// A command-heavy, privacy-light evening (10 % sensitive).
    pub fn home_automation_evening(n: usize) -> Self {
        let mut generator = CorpusGenerator::new(Vocabulary::smart_home(), 0.1, 0xEE11);
        Scenario::from_utterances(
            "home-automation-evening",
            generator.generate(n),
            SimDuration::from_secs(12),
        )
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of ground-truth sensitive utterances.
    pub fn sensitive_count(&self) -> usize {
        self.events.iter().filter(|e| e.utterance.sensitive).count()
    }

    /// Ids of the ground-truth sensitive events.
    pub fn sensitive_ids(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.utterance.sensitive)
            .map(|e| e.id)
            .collect()
    }

    /// Total scenario duration (time of the last event).
    pub fn duration(&self) -> SimDuration {
        self.events
            .last()
            .map(|e| e.at)
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_timed() {
        let a = Scenario::smart_speaker_morning(10);
        let b = Scenario::smart_speaker_morning(10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.events[3].at, SimDuration::from_secs(60));
        assert_eq!(a.events[3].id, 3);
        assert_eq!(a.duration(), SimDuration::from_secs(180));
    }

    #[test]
    fn sensitive_accounting_matches_ground_truth() {
        let s = Scenario::mixed(40, 0.5, SimDuration::from_secs(5), 3);
        assert_eq!(s.sensitive_count(), s.sensitive_ids().len());
        for id in s.sensitive_ids() {
            assert!(s.events[id as usize].utterance.sensitive);
        }
        let none = Scenario::mixed(10, 0.0, SimDuration::from_secs(1), 3);
        assert_eq!(none.sensitive_count(), 0);
    }

    #[test]
    fn preset_scenarios_have_expected_privacy_profiles() {
        let morning = Scenario::smart_speaker_morning(50);
        let evening = Scenario::home_automation_evening(50);
        assert!(morning.sensitive_count() > evening.sensitive_count());
        assert!(!morning.is_empty());
    }
}
