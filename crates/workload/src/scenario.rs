//! Timed end-to-end scenarios.
//!
//! A scenario is what the full pipeline experiments replay: a sequence of
//! utterances spoken at known (virtual) times, with ground-truth labels, so
//! that latency, energy and privacy leakage can all be attributed.

use serde::{Deserialize, Serialize};

use perisec_devices::camera::SceneKind;
use perisec_tz::time::SimDuration;

use crate::corpus::{CorpusGenerator, Utterance};
use crate::vocab::Vocabulary;

/// One event of a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioEvent {
    /// Index of the event (doubles as the AVS dialog id).
    pub id: u64,
    /// Time offset from the start of the scenario at which the utterance
    /// begins.
    pub at: SimDuration,
    /// The utterance spoken.
    pub utterance: Utterance,
}

/// A named, timed sequence of utterances.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Events in chronological order.
    pub events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// Builds a scenario from utterances spaced `spacing` apart.
    pub fn from_utterances(
        name: impl Into<String>,
        utterances: Vec<Utterance>,
        spacing: SimDuration,
    ) -> Self {
        let events = utterances
            .into_iter()
            .enumerate()
            .map(|(i, utterance)| ScenarioEvent {
                id: i as u64,
                at: spacing * i as u64,
                utterance,
            })
            .collect();
        Scenario {
            name: name.into(),
            events,
        }
    }

    /// A morning at home: `n` mixed utterances (roughly 40 % sensitive),
    /// one every 20 seconds.
    pub fn smart_speaker_morning(n: usize) -> Self {
        let mut generator = CorpusGenerator::new(Vocabulary::smart_home(), 0.4, 0xA110);
        Scenario::from_utterances(
            "smart-speaker-morning",
            generator.generate(n),
            SimDuration::from_secs(20),
        )
    }

    /// A fully parameterized mix, for sweeps.
    pub fn mixed(n: usize, sensitive_fraction: f64, spacing: SimDuration, seed: u64) -> Self {
        let mut generator =
            CorpusGenerator::new(Vocabulary::smart_home(), sensitive_fraction, seed);
        Scenario::from_utterances(
            format!("mixed-{n}x{:.0}pct", sensitive_fraction * 100.0),
            generator.generate(n),
            spacing,
        )
    }

    /// Fan-out for a device fleet: `devices` scenarios of `n` utterances
    /// each, with per-device corpora derived from `seed` so every device
    /// replays distinct (but reproducible) traffic.
    pub fn fleet(
        devices: usize,
        n: usize,
        sensitive_fraction: f64,
        spacing: SimDuration,
        seed: u64,
    ) -> Vec<Scenario> {
        (0..devices)
            .map(|device| {
                let mut generator = CorpusGenerator::new(
                    Vocabulary::smart_home(),
                    sensitive_fraction,
                    seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                Scenario::from_utterances(
                    format!("fleet-device-{device}"),
                    generator.generate(n),
                    spacing,
                )
            })
            .collect()
    }

    /// Fan-out for a **mega** fleet: like [`Scenario::fleet`], but built
    /// for the 10k-device scale the bounded fleet executor runs at — one
    /// vocabulary and one corpus generator are shared across all devices
    /// (building a fresh vocabulary per device dominates generation cost
    /// at that scale), with each device's traffic drawn sequentially from
    /// the seeded stream, so the fan-out stays distinct-but-reproducible.
    pub fn mega_fleet(
        devices: usize,
        n: usize,
        sensitive_fraction: f64,
        spacing: SimDuration,
        seed: u64,
    ) -> Vec<Scenario> {
        let mut generator =
            CorpusGenerator::new(Vocabulary::smart_home(), sensitive_fraction, seed);
        (0..devices)
            .map(|device| {
                Scenario::from_utterances(
                    format!("mega-device-{device}"),
                    generator.generate(n),
                    spacing,
                )
            })
            .collect()
    }

    /// A command-heavy, privacy-light evening (10 % sensitive).
    pub fn home_automation_evening(n: usize) -> Self {
        let mut generator = CorpusGenerator::new(Vocabulary::smart_home(), 0.1, 0xEE11);
        Scenario::from_utterances(
            "home-automation-evening",
            generator.generate(n),
            SimDuration::from_secs(12),
        )
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of ground-truth sensitive utterances.
    pub fn sensitive_count(&self) -> usize {
        self.events.iter().filter(|e| e.utterance.sensitive).count()
    }

    /// Ids of the ground-truth sensitive events.
    pub fn sensitive_ids(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.utterance.sensitive)
            .map(|e| e.id)
            .collect()
    }

    /// Total scenario duration (time of the last event).
    pub fn duration(&self) -> SimDuration {
        self.events
            .last()
            .map(|e| e.at)
            .unwrap_or(SimDuration::ZERO)
    }
}

/// One event of a camera scenario: a scene appearing in front of the
/// camera for a number of frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CameraScenarioEvent {
    /// Index of the event (doubles as the AVS dialog id).
    pub id: u64,
    /// Time offset from the start of the scenario at which the scene
    /// appears.
    pub at: SimDuration,
    /// What the camera sees.
    pub scene: SceneKind,
    /// How many frames the pipeline captures of this scene.
    pub frames: usize,
}

/// A named, timed scene schedule — the camera modality's counterpart of
/// [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CameraScenario {
    /// Human-readable scenario name.
    pub name: String,
    /// Events in chronological order.
    pub events: Vec<CameraScenarioEvent>,
}

impl CameraScenario {
    /// Builds a scenario from scenes spaced `spacing` apart, `frames`
    /// frames each.
    pub fn from_scenes(
        name: impl Into<String>,
        scenes: Vec<SceneKind>,
        frames: usize,
        spacing: SimDuration,
    ) -> Self {
        let events = scenes
            .into_iter()
            .enumerate()
            .map(|(i, scene)| CameraScenarioEvent {
                id: i as u64,
                at: spacing * i as u64,
                scene,
                frames: frames.max(1),
            })
            .collect();
        CameraScenario {
            name: name.into(),
            events,
        }
    }

    /// A fully parameterized scene mix, for sweeps: roughly
    /// `sensitive_fraction` of the events show a person or a document.
    pub fn mixed_scenes(
        n: usize,
        sensitive_fraction: f64,
        spacing: SimDuration,
        seed: u64,
    ) -> Self {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let scenes = (0..n)
            .map(|_| {
                if rng.gen_bool(sensitive_fraction.clamp(0.0, 1.0)) {
                    if rng.gen_bool(0.5) {
                        SceneKind::Person
                    } else {
                        SceneKind::Document
                    }
                } else if rng.gen_bool(0.5) {
                    SceneKind::EmptyRoom
                } else {
                    SceneKind::Pet
                }
            })
            .collect();
        CameraScenario::from_scenes(
            format!("scenes-{n}x{:.0}pct", sensitive_fraction * 100.0),
            scenes,
            2,
            spacing,
        )
    }

    /// A high-fps capture stream: the camera delivers `frames_per_event`
    /// frames per window at a sustained `fps`, so consecutive windows
    /// arrive `frames_per_event / fps` apart. The sensor's frame interval
    /// **is** the pipeline's frame budget: a vision TA keeps up only if it
    /// classifies a window faster than the next one arrives. High-speed
    /// sensors (slow-motion capture, machine-vision line cameras) outrun
    /// a single TA session long before microphones do — the workload the
    /// multi-core TEE scheduler shards across sessions.
    ///
    /// The scene mix matches [`CameraScenario::mixed_scenes`] for the same
    /// seed, so sharded and unsharded runs of a high-fps scenario face
    /// identical content.
    pub fn high_fps(
        n: usize,
        frames_per_event: usize,
        fps: u32,
        sensitive_fraction: f64,
        seed: u64,
    ) -> Self {
        let frames_per_event = frames_per_event.max(1);
        let fps = fps.max(1);
        let spacing =
            SimDuration::from_nanos(frames_per_event as u64 * 1_000_000_000 / u64::from(fps));
        let mut scenario = CameraScenario::mixed_scenes(n, sensitive_fraction, spacing, seed);
        for event in &mut scenario.events {
            event.frames = frames_per_event;
        }
        scenario.name = format!("high-fps-{fps}x{frames_per_event}");
        scenario
    }

    /// Fan-out for a high-fps camera fleet: `devices` schedules derived
    /// from `seed`, each distinct but reproducible, all at the same rate.
    pub fn fleet_high_fps(
        devices: usize,
        n: usize,
        frames_per_event: usize,
        fps: u32,
        sensitive_fraction: f64,
        seed: u64,
    ) -> Vec<CameraScenario> {
        (0..devices)
            .map(|device| {
                let mut scenario = CameraScenario::high_fps(
                    n,
                    frames_per_event,
                    fps,
                    sensitive_fraction,
                    seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                scenario.name = format!("{}-device-{device}", scenario.name);
                scenario
            })
            .collect()
    }

    /// A **ragged** high-fps stream: windows arrive at a sustained
    /// average rate like [`CameraScenario::high_fps`], but each window
    /// carries a seeded-random frame count in `[min_frames, max_frames]`
    /// — bursty sensors (motion-triggered capture, variable-rate
    /// encoders) rather than a fixed cadence. Ragged mixes are what
    /// defeat greedy least-loaded placement: one heavy window lands on an
    /// already-loaded session and the tail latency blows up, which is
    /// precisely the workload the scheduler's work-stealing pass exists
    /// for.
    pub fn ragged_high_fps(
        n: usize,
        min_frames: usize,
        max_frames: usize,
        fps: u32,
        sensitive_fraction: f64,
        seed: u64,
    ) -> Self {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let min_frames = min_frames.max(1);
        let max_frames = max_frames.max(min_frames);
        let fps = fps.max(1);
        let mean_frames = (min_frames + max_frames).div_ceil(2);
        let spacing = SimDuration::from_nanos(mean_frames as u64 * 1_000_000_000 / u64::from(fps));
        let mut scenario = CameraScenario::mixed_scenes(n, sensitive_fraction, spacing, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4A66_ED00);
        for event in &mut scenario.events {
            event.frames = rng.gen_range(min_frames..=max_frames);
        }
        scenario.name = format!("ragged-fps-{fps}x{min_frames}-{max_frames}");
        scenario
    }

    /// Spacing between consecutive events (zero for fewer than two
    /// events). For uniformly spaced scenarios this is the per-event frame
    /// budget the capture source imposes.
    pub fn event_spacing(&self) -> SimDuration {
        match self.events.as_slice() {
            [first, second, ..] => second.at - first.at,
            _ => SimDuration::ZERO,
        }
    }

    /// Fan-out for a camera fleet: `devices` scene schedules derived from
    /// `seed`, each distinct but reproducible.
    pub fn fleet_cameras(
        devices: usize,
        n: usize,
        sensitive_fraction: f64,
        spacing: SimDuration,
        seed: u64,
    ) -> Vec<CameraScenario> {
        (0..devices)
            .map(|device| {
                let mut scenario = CameraScenario::mixed_scenes(
                    n,
                    sensitive_fraction,
                    spacing,
                    seed ^ (device as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                scenario.name = format!("camera-device-{device}");
                scenario
            })
            .collect()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the scenario has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total frames across all events.
    pub fn total_frames(&self) -> usize {
        self.events.iter().map(|e| e.frames).sum()
    }

    /// Number of ground-truth sensitive scenes.
    pub fn sensitive_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.scene.is_sensitive())
            .count()
    }

    /// Ids of the ground-truth sensitive events.
    pub fn sensitive_ids(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.scene.is_sensitive())
            .map(|e| e.id)
            .collect()
    }

    /// Total scenario duration (time of the last event).
    pub fn duration(&self) -> SimDuration {
        self.events
            .last()
            .map(|e| e.at)
            .unwrap_or(SimDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_timed() {
        let a = Scenario::smart_speaker_morning(10);
        let b = Scenario::smart_speaker_morning(10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        assert_eq!(a.events[3].at, SimDuration::from_secs(60));
        assert_eq!(a.events[3].id, 3);
        assert_eq!(a.duration(), SimDuration::from_secs(180));
    }

    #[test]
    fn sensitive_accounting_matches_ground_truth() {
        let s = Scenario::mixed(40, 0.5, SimDuration::from_secs(5), 3);
        assert_eq!(s.sensitive_count(), s.sensitive_ids().len());
        for id in s.sensitive_ids() {
            assert!(s.events[id as usize].utterance.sensitive);
        }
        let none = Scenario::mixed(10, 0.0, SimDuration::from_secs(1), 3);
        assert_eq!(none.sensitive_count(), 0);
    }

    #[test]
    fn camera_scenarios_are_deterministic_and_labelled() {
        let a = CameraScenario::mixed_scenes(20, 0.5, SimDuration::from_secs(4), 7);
        let b = CameraScenario::mixed_scenes(20, 0.5, SimDuration::from_secs(4), 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 20);
        assert_eq!(a.events[5].at, SimDuration::from_secs(20));
        assert_eq!(a.total_frames(), 40);
        assert_eq!(a.sensitive_count(), a.sensitive_ids().len());
        for id in a.sensitive_ids() {
            assert!(a.events[id as usize].scene.is_sensitive());
        }
        let none = CameraScenario::mixed_scenes(10, 0.0, SimDuration::from_secs(1), 7);
        assert_eq!(none.sensitive_count(), 0);
        assert!(!none.is_empty());
    }

    #[test]
    fn camera_fleet_fanout_gives_each_device_distinct_scenes() {
        let scenarios = CameraScenario::fleet_cameras(3, 8, 0.5, SimDuration::from_secs(2), 99);
        assert_eq!(scenarios.len(), 3);
        assert_eq!(scenarios[0].name, "camera-device-0");
        assert_ne!(scenarios[0].events, scenarios[1].events);
        assert_eq!(scenarios[2].len(), 8);
    }

    #[test]
    fn high_fps_scenarios_pin_frames_and_spacing_to_the_rate() {
        let s = CameraScenario::high_fps(12, 4, 2_000, 0.5, 0xFA57);
        assert_eq!(s.len(), 12);
        assert!(s.events.iter().all(|e| e.frames == 4));
        // 4 frames at 2000 fps: windows arrive every 2 ms.
        assert_eq!(s.event_spacing(), SimDuration::from_millis(2));
        assert_eq!(s.total_frames(), 48);
        assert!(s.name.contains("2000"));
        // Same seed, same scene content as the mixed generator: sharded
        // and unsharded runs compare like for like.
        let mixed = CameraScenario::mixed_scenes(12, 0.5, SimDuration::from_millis(2), 0xFA57);
        let scenes: Vec<_> = s.events.iter().map(|e| e.scene).collect();
        let mixed_scenes: Vec<_> = mixed.events.iter().map(|e| e.scene).collect();
        assert_eq!(scenes, mixed_scenes);
        // Degenerate inputs clamp instead of panicking.
        let tiny = CameraScenario::high_fps(1, 0, 0, 0.0, 1);
        assert_eq!(tiny.events[0].frames, 1);
        assert_eq!(tiny.event_spacing(), SimDuration::ZERO);
    }

    #[test]
    fn high_fps_fleet_fanout_gives_each_device_distinct_scenes() {
        let schedules = CameraScenario::fleet_high_fps(3, 8, 2, 960, 0.4, 0xF1);
        assert_eq!(schedules.len(), 3);
        assert!(schedules[0].name.ends_with("device-0"));
        assert_ne!(schedules[0].events, schedules[1].events);
        for s in &schedules {
            assert_eq!(s.event_spacing(), schedules[0].event_spacing());
        }
    }

    #[test]
    fn mega_fleet_fanout_is_distinct_and_reproducible() {
        let a = Scenario::mega_fleet(4, 3, 0.5, SimDuration::from_secs(1), 0x3E6A);
        let b = Scenario::mega_fleet(4, 3, 0.5, SimDuration::from_secs(1), 0x3E6A);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].name, "mega-device-0");
        assert_eq!(a[3].len(), 3);
        // Devices draw from one sequential stream: traffic differs.
        assert_ne!(a[0].events, a[1].events);
        // A different seed reshuffles everything.
        let c = Scenario::mega_fleet(4, 3, 0.5, SimDuration::from_secs(1), 0x3E6B);
        assert_ne!(a[0].events, c[0].events);
    }

    #[test]
    fn ragged_high_fps_varies_frames_within_bounds() {
        let s = CameraScenario::ragged_high_fps(32, 1, 24, 960, 0.4, 0x4A66);
        assert_eq!(s.len(), 32);
        assert!(s.events.iter().all(|e| (1..=24).contains(&e.frames)));
        // Really ragged: not every window carries the same frame count.
        let first = s.events[0].frames;
        assert!(s.events.iter().any(|e| e.frames != first));
        // Spacing follows the mean frame count at the requested rate:
        // ceil((1+24)/2) = 13 frames at 960 fps.
        assert_eq!(
            s.event_spacing(),
            SimDuration::from_nanos(13 * 1_000_000_000 / 960)
        );
        // Deterministic, and distinct from the uniform high-fps stream.
        assert_eq!(
            s,
            CameraScenario::ragged_high_fps(32, 1, 24, 960, 0.4, 0x4A66)
        );
        // Degenerate bounds clamp instead of panicking.
        let tiny = CameraScenario::ragged_high_fps(2, 0, 0, 0, 0.0, 1);
        assert!(tiny.events.iter().all(|e| e.frames == 1));
    }

    #[test]
    fn preset_scenarios_have_expected_privacy_profiles() {
        let morning = Scenario::smart_speaker_morning(50);
        let evening = Scenario::home_automation_evening(50);
        assert!(morning.sensitive_count() > evening.sensitive_count());
        assert!(!morning.is_empty());
    }
}
