//! Per-word waveform synthesis.
//!
//! Each vocabulary word renders to a distinct, deterministic dual-tone
//! signature with a smooth amplitude envelope; utterances are words
//! separated by short silences. The signatures are chosen so that the MFCC
//! template matcher in `perisec-ml` can recover the word sequence from the
//! PCM stream — giving the repository an end-to-end audio → transcript →
//! classification path without real recordings.

use serde::{Deserialize, Serialize};

use perisec_devices::audio::{AudioBuffer, AudioFormat};

use crate::vocab::Vocabulary;

/// Synthesis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Output sample rate.
    pub sample_rate_hz: u32,
    /// Duration of one word, in milliseconds.
    pub word_ms: u64,
    /// Silence between words, in milliseconds.
    pub gap_ms: u64,
    /// Peak amplitude as a fraction of full scale.
    pub amplitude: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            sample_rate_hz: 16_000,
            word_ms: 250,
            gap_ms: 120,
            amplitude: 0.8,
        }
    }
}

/// The deterministic speech synthesizer.
#[derive(Debug, Clone)]
pub struct SpeechSynthesizer {
    vocabulary: Vocabulary,
    config: SynthConfig,
}

impl SpeechSynthesizer {
    /// Creates a synthesizer over `vocabulary`.
    pub fn new(vocabulary: Vocabulary, config: SynthConfig) -> Self {
        SpeechSynthesizer { vocabulary, config }
    }

    /// Synthesizer with the default smart-home vocabulary and parameters.
    pub fn smart_home() -> Self {
        SpeechSynthesizer::new(Vocabulary::smart_home(), SynthConfig::default())
    }

    /// The vocabulary in use.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }

    /// The synthesis configuration.
    pub fn config(&self) -> SynthConfig {
        self.config
    }

    /// Output audio format.
    pub fn format(&self) -> AudioFormat {
        AudioFormat {
            sample_rate_hz: self.config.sample_rate_hz,
            channels: 1,
            bits_per_sample: 16,
        }
    }

    fn word_samples(&self) -> usize {
        (self.config.sample_rate_hz as u64 * self.config.word_ms / 1000) as usize
    }

    fn gap_samples(&self) -> usize {
        (self.config.sample_rate_hz as u64 * self.config.gap_ms / 1000) as usize
    }

    /// Renders a single word (by token id) to PCM.
    pub fn render_word(&self, token: usize) -> Vec<i16> {
        let rate = self.config.sample_rate_hz as f64;
        let n = self.word_samples();
        // Two formant-like tones derived from the token id; co-prime moduli
        // keep the (f1, f2) pairs distinct across the vocabulary. The
        // frequencies are spaced *geometrically*: the STT's mel filterbank
        // has log-frequency resolution, so linear spacing packs the upper
        // signatures into one mel channel and neighbouring tokens collide.
        let f1 = 280.0 * 1.17f64.powi((token % 13) as i32);
        let f2 = 1_150.0 * 1.14f64.powi((token % 7) as i32);
        let f3 = 2_600.0 + 90.0 * (token % 5) as f64;
        (0..n)
            .map(|i| {
                let t = i as f64 / rate;
                let envelope = (std::f64::consts::PI * i as f64 / n as f64).sin();
                let v = 0.45 * (2.0 * std::f64::consts::PI * f1 * t).sin()
                    + 0.35 * (2.0 * std::f64::consts::PI * f2 * t).sin()
                    + 0.10 * (2.0 * std::f64::consts::PI * f3 * t).sin();
                (v * envelope * self.config.amplitude * i16::MAX as f64) as i16
            })
            .collect()
    }

    /// Renders a token sequence to a full utterance (leading, inter-word
    /// and trailing silences included).
    pub fn render_tokens(&self, tokens: &[usize]) -> AudioBuffer {
        let mut samples = Vec::new();
        samples.extend(std::iter::repeat_n(0i16, self.gap_samples()));
        for &token in tokens {
            samples.extend(self.render_word(token));
            samples.extend(std::iter::repeat_n(0i16, self.gap_samples()));
        }
        AudioBuffer::new(self.format(), samples)
    }

    /// Renders an utterance given by its words.
    ///
    /// Unknown words are skipped.
    pub fn render_words(&self, words: &[&str]) -> AudioBuffer {
        let tokens: Vec<usize> = words
            .iter()
            .filter_map(|w| self.vocabulary.token_of(w))
            .collect();
        self.render_tokens(&tokens)
    }

    /// Reference renderings of every vocabulary word, in token order — the
    /// training set for the keyword STT.
    pub fn reference_renderings(&self) -> Vec<(String, Vec<i16>)> {
        self.vocabulary
            .words()
            .iter()
            .enumerate()
            .map(|(token, word)| (word.text.clone(), self.render_word(token)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic_and_word_specific() {
        let synth = SpeechSynthesizer::smart_home();
        let a = synth.render_word(3);
        let b = synth.render_word(3);
        let c = synth.render_word(4);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4_000);
    }

    #[test]
    fn utterance_length_matches_word_count() {
        let synth = SpeechSynthesizer::smart_home();
        let two = synth.render_tokens(&[1, 2]);
        let three = synth.render_tokens(&[1, 2, 3]);
        assert!(three.frames() > two.frames());
        // 2 words * 250 ms + 3 gaps * 120 ms = 860 ms
        assert_eq!(two.frames(), (0.86 * 16_000.0) as usize);
        assert!(two.rms() > 0.05);
    }

    #[test]
    fn render_words_skips_unknown_words() {
        let synth = SpeechSynthesizer::smart_home();
        let known = synth.render_words(&["lights", "kitchen"]);
        let with_unknown = synth.render_words(&["lights", "zzz-not-a-word", "kitchen"]);
        assert_eq!(known.frames(), with_unknown.frames());
    }

    #[test]
    fn reference_renderings_cover_the_vocabulary() {
        let synth = SpeechSynthesizer::smart_home();
        let refs = synth.reference_renderings();
        assert_eq!(refs.len(), synth.vocabulary().len());
        assert_eq!(refs[0].0, synth.vocabulary().word(0).unwrap().text);
    }

    #[test]
    fn stt_round_trip_recovers_most_words() {
        // End-to-end check: synthesize -> transcribe with the ml crate's STT.
        use perisec_ml::stt::{KeywordStt, SttConfig};
        let synth = SpeechSynthesizer::smart_home();
        let stt = KeywordStt::train(&synth.reference_renderings(), SttConfig::default()).unwrap();
        let tokens = vec![5usize, 20, 40, 10];
        let audio = synth.render_tokens(&tokens);
        let recovered = stt.transcribe_to_tokens(audio.samples());
        let matching = recovered.iter().filter(|t| tokens.contains(t)).count();
        assert!(
            matching >= 3,
            "only {matching}/4 words recovered: {recovered:?} vs {tokens:?}"
        );
    }
}
