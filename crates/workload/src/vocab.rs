//! The smart-home vocabulary and its privacy categories.

use serde::{Deserialize, Serialize};

/// Privacy category of a vocabulary word, following the paper's threat
/// model: what a user would not want forwarded to an untrusted cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WordCategory {
    /// Medical conditions, medication, symptoms.
    Health,
    /// Bank accounts, payments, amounts.
    Finance,
    /// Passwords, PINs, codes.
    Credentials,
    /// Who is home / away and when.
    Presence,
    /// Device commands (lights, thermostat, music).
    Command,
    /// Neutral small talk and filler words.
    Smalltalk,
}

impl WordCategory {
    /// Whether the category is considered sensitive by default.
    pub fn is_sensitive(self) -> bool {
        matches!(
            self,
            WordCategory::Health
                | WordCategory::Finance
                | WordCategory::Credentials
                | WordCategory::Presence
        )
    }

    /// All categories.
    pub const ALL: [WordCategory; 6] = [
        WordCategory::Health,
        WordCategory::Finance,
        WordCategory::Credentials,
        WordCategory::Presence,
        WordCategory::Command,
        WordCategory::Smalltalk,
    ];
}

impl std::fmt::Display for WordCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WordCategory::Health => "health",
            WordCategory::Finance => "finance",
            WordCategory::Credentials => "credentials",
            WordCategory::Presence => "presence",
            WordCategory::Command => "command",
            WordCategory::Smalltalk => "smalltalk",
        };
        write!(f, "{s}")
    }
}

/// One vocabulary entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Word {
    /// The word's text.
    pub text: String,
    /// Its privacy category.
    pub category: WordCategory,
}

/// The closed vocabulary used by the corpus, the synthesizer and the STT.
/// Word order defines the token ids used throughout the stack.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<Word>,
}

impl Vocabulary {
    /// The standard smart-home vocabulary (64 words across all categories).
    pub fn smart_home() -> Self {
        let mut words = Vec::new();
        let mut add = |texts: &[&str], category: WordCategory| {
            for t in texts {
                words.push(Word {
                    text: (*t).to_owned(),
                    category,
                });
            }
        };
        add(
            &[
                "doctor",
                "insulin",
                "migraine",
                "therapy",
                "prescription",
                "asthma",
                "allergy",
                "depression",
            ],
            WordCategory::Health,
        );
        add(
            &[
                "bank",
                "transfer",
                "salary",
                "mortgage",
                "overdraft",
                "dollars",
                "invoice",
                "savings",
            ],
            WordCategory::Finance,
        );
        add(
            &[
                "password", "pincode", "passcode", "keycode", "secret", "unlock",
            ],
            WordCategory::Credentials,
        );
        add(
            &[
                "vacation",
                "alone",
                "nobody",
                "travelling",
                "tonight",
                "returning",
            ],
            WordCategory::Presence,
        );
        add(
            &[
                "lights",
                "thermostat",
                "music",
                "volume",
                "alarm",
                "timer",
                "kitchen",
                "bedroom",
                "play",
                "stop",
                "warmer",
                "cooler",
                "open",
                "close",
                "start",
                "pause",
            ],
            WordCategory::Command,
        );
        add(
            &[
                "hello", "please", "thanks", "today", "tomorrow", "weather", "sunny", "recipe",
                "dinner", "morning", "evening", "okay", "what", "time", "news", "sports",
                "birthday", "movie", "shopping", "list",
            ],
            WordCategory::Smalltalk,
        );
        Vocabulary { words }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The word at token id `token`.
    pub fn word(&self, token: usize) -> Option<&Word> {
        self.words.get(token)
    }

    /// Token id of a word text.
    pub fn token_of(&self, text: &str) -> Option<usize> {
        self.words.iter().position(|w| w.text == text)
    }

    /// All words in token order.
    pub fn words(&self) -> &[Word] {
        &self.words
    }

    /// Token ids belonging to a category.
    pub fn tokens_in(&self, category: WordCategory) -> Vec<usize> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, w)| w.category == category)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether a token sequence contains a word from a sensitive category.
    pub fn contains_sensitive(&self, tokens: &[usize]) -> bool {
        tokens
            .iter()
            .filter_map(|&t| self.word(t))
            .any(|w| w.category.is_sensitive())
    }
}

impl Default for Vocabulary {
    fn default() -> Self {
        Vocabulary::smart_home()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_home_vocabulary_covers_all_categories() {
        let v = Vocabulary::smart_home();
        assert_eq!(v.len(), 64);
        for category in WordCategory::ALL {
            assert!(!v.tokens_in(category).is_empty(), "no words in {category}");
        }
    }

    #[test]
    fn token_lookup_round_trips() {
        let v = Vocabulary::smart_home();
        let token = v.token_of("password").unwrap();
        assert_eq!(v.word(token).unwrap().text, "password");
        assert_eq!(v.word(token).unwrap().category, WordCategory::Credentials);
        assert!(v.token_of("nonexistentword").is_none());
        assert!(v.word(10_000).is_none());
    }

    #[test]
    fn sensitivity_classification_of_categories() {
        assert!(WordCategory::Health.is_sensitive());
        assert!(WordCategory::Credentials.is_sensitive());
        assert!(!WordCategory::Command.is_sensitive());
        assert!(!WordCategory::Smalltalk.is_sensitive());
        let v = Vocabulary::smart_home();
        let sensitive_token = v.token_of("insulin").unwrap();
        let neutral_token = v.token_of("weather").unwrap();
        assert!(v.contains_sensitive(&[neutral_token, sensitive_token]));
        assert!(!v.contains_sensitive(&[neutral_token]));
        assert!(!v.contains_sensitive(&[]));
    }
}
