//! Compare the three classifier architectures the paper proposes (CNN,
//! Transformer, hybrid CNN-Transformer) on the synthetic sensitive-speech
//! corpus, before and after 8-bit quantization.
//!
//! ```text
//! cargo run --example model_comparison
//! ```

use perisec::ml::classifier::{Architecture, SensitiveClassifier, TrainConfig};
use perisec::ml::quant::quantize_classifier;
use perisec::workload::corpus::{to_training_examples, CorpusGenerator};
use perisec::workload::vocab::Vocabulary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocabulary = Vocabulary::smart_home();
    let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 42);
    let (train, test) = generator.train_test_split(300, 120);
    let train = to_training_examples(&train);
    let test = to_training_examples(&test);

    println!(
        "{:<12} {:>9} {:>9} {:>9} {:>11} {:>11} {:>12}",
        "architecture", "accuracy", "recall", "f1", "f32 KiB", "int8 KiB", "int8 accuracy"
    );
    for arch in Architecture::ALL {
        let mut classifier = SensitiveClassifier::new(arch, TrainConfig::small(vocabulary.len()));
        classifier.fit(&train)?;
        let metrics = classifier.evaluate(&test)?;
        let f32_kib = classifier.memory_bytes_f32() / 1024;
        let (quantized, report) = quantize_classifier(classifier);
        let metrics_q = quantized.evaluate(&test)?;
        println!(
            "{:<12} {:>9.3} {:>9.3} {:>9.3} {:>11} {:>11} {:>12.3}",
            arch.to_string(),
            metrics.accuracy(),
            metrics.recall(),
            metrics.f1(),
            f32_kib,
            report.int8_bytes / 1024,
            metrics_q.accuracy()
        );
    }
    Ok(())
}
