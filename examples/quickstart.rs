//! Quickstart: run the paper's secure pipeline on a small smart-home
//! scenario and print what (if anything) leaked to the cloud.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use perisec::core::pipeline::{PipelineConfig, SecurePipeline};
use perisec::workload::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A morning at home: 10 utterances, roughly 40 % of them sensitive.
    let scenario = Scenario::smart_speaker_morning(10);
    println!(
        "scenario '{}': {} utterances, {} sensitive",
        scenario.name,
        scenario.len(),
        scenario.sensitive_count()
    );

    // Build the full secure stack (TrustZone platform, OP-TEE, secure I2S
    // driver PTA, in-TA STT + CNN classifier, relay, mock cloud) and replay
    // the scenario through it.
    let mut pipeline = SecurePipeline::new(PipelineConfig::default())?;
    let report = pipeline.run_scenario(&scenario)?;

    println!("\n== privacy ==");
    println!(
        "utterances that reached the cloud : {}",
        report.cloud.received_utterances()
    );
    println!(
        "sensitive utterances leaked       : {} (rate {:.0}%)",
        report.cloud.leaked_sensitive_utterances(),
        100.0 * report.cloud.leakage_rate()
    );

    println!("\n== cost ==");
    println!(
        "mean processing latency per utterance : {}",
        report.latency.mean_end_to_end()
    );
    println!("world switches        : {}", report.tz.world_switches);
    println!("supplicant RPCs       : {}", report.tz.supplicant_rpcs);
    println!(
        "energy per utterance  : {:.0} mJ",
        report.energy_per_utterance_mj()
    );
    Ok(())
}
