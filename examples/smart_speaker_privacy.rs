//! Smart-speaker privacy comparison: the same scenario replayed through the
//! unprotected baseline (driver in the untrusted kernel, no filtering) and
//! through the paper's secure design under several privacy policies.
//!
//! ```text
//! cargo run --example smart_speaker_privacy
//! ```

use perisec::core::pipeline::{BaselinePipeline, PipelineConfig, SecurePipeline};
use perisec::core::policy::{FilterMode, PrivacyPolicy};
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::mixed(16, 0.5, SimDuration::from_secs(8), 2024);
    println!(
        "{} utterances, {} sensitive\n",
        scenario.len(),
        scenario.sensitive_count()
    );
    println!(
        "{:<34} {:>14} {:>10} {:>16}",
        "pipeline / policy", "reached cloud", "leaked", "mean latency"
    );

    let mut baseline = BaselinePipeline::new(PipelineConfig::default())?;
    let report = baseline.run_scenario(&scenario)?;
    println!(
        "{:<34} {:>14} {:>10} {:>16}",
        "baseline (untrusted kernel)",
        report.cloud.received_utterances(),
        report.cloud.leaked_sensitive_utterances(),
        report.latency.mean_end_to_end().to_string()
    );

    for (label, policy) in [
        (
            "perisec / block-sensitive",
            PrivacyPolicy::block_sensitive(),
        ),
        (
            "perisec / redact-sensitive",
            PrivacyPolicy::redact_sensitive(),
        ),
        (
            "perisec / allow-all (ablation)",
            PrivacyPolicy {
                mode: FilterMode::AllowAll,
                threshold: 0.5,
                lexical_guard: false,
            },
        ),
    ] {
        let mut secure = SecurePipeline::new(PipelineConfig {
            policy,
            ..PipelineConfig::default()
        })?;
        let report = secure.run_scenario(&scenario)?;
        println!(
            "{:<34} {:>14} {:>10} {:>16}",
            label,
            report.cloud.received_utterances(),
            report.cloud.leaked_sensitive_utterances(),
            report.latency.mean_end_to_end().to_string()
        );
    }
    Ok(())
}
