//! TCB minimization walkthrough (the paper's plan item 2): trace the full
//! in-kernel audio driver while it performs different tasks, compute the
//! minimal function set for "record a sound", and size the resulting
//! OP-TEE image against porting the full driver.
//!
//! ```text
//! cargo run --example tcb_minimization
//! ```

use perisec::devices::mic::Microphone;
use perisec::devices::signal::SineSource;
use perisec::kernel::catalog::DriverCatalog;
use perisec::kernel::i2s_driver::BaselineI2sDriver;
use perisec::kernel::pcm::PcmHwParams;
use perisec::kernel::trace::FunctionTracer;
use perisec::secure_driver::PORTED_FUNCTIONS;
use perisec::tcb::analysis::TcbAnalysis;
use perisec::tcb::prune::{PruneStrategy, PrunedImage};
use perisec::tz::platform::Platform;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Run the driver under the kernel function tracer, one task at a time.
    let mic = Microphone::speech_mic("mic0", Box::new(SineSource::new(440.0, 16_000, 0.6)))?;
    let tracer = FunctionTracer::new();
    tracer.enable();
    let mut driver = BaselineI2sDriver::new(Platform::jetson_agx_xavier(), mic, tracer.clone());
    driver.probe()?;

    tracer.begin_task("record");
    driver.configure(PcmHwParams::voice_default())?;
    driver.start()?;
    driver.capture_periods(20)?;
    driver.stop();
    tracer.end_task();

    tracer.begin_task("playback");
    driver.run_playback_task();
    tracer.end_task();
    tracer.begin_task("mixer-controls");
    driver.run_mixer_task();
    tracer.end_task();

    // 2. Analyze the trace against the full driver catalog.
    let catalog = DriverCatalog::tegra_audio_stack();
    let analysis = TcbAnalysis::analyze(&catalog, &tracer.log());
    println!(
        "full driver: {} functions, {} lines of code",
        analysis.total_functions, analysis.total_loc
    );
    for task in &analysis.tasks {
        println!(
            "  task '{}': {} functions, {} loc ({:.1}% of the driver)",
            task.task,
            task.functions.len(),
            task.loc,
            100.0 * task.loc_fraction(analysis.total_loc)
        );
    }

    // 3. Build the pruned image for the record task and compare.
    let record = analysis.task("record").expect("record task was traced");
    let pruned = PrunedImage::build(
        &catalog,
        &PruneStrategy::TracedFunctions {
            functions: record.functions.clone(),
        },
    );
    let full = PrunedImage::build(&catalog, &PruneStrategy::KeepAll);
    println!(
        "\nOP-TEE image with full driver   : {} KiB",
        full.image_bytes / 1024
    );
    println!(
        "OP-TEE image with traced subset : {} KiB ({:.1}x smaller driver portion)",
        pruned.image_bytes / 1024,
        pruned.driver_reduction_vs(&full)
    );

    // 4. Check the actual secure-driver port against the trace.
    let gap = analysis.coverage_gap("record", PORTED_FUNCTIONS);
    if gap.is_empty() {
        println!("\nthe ported secure driver covers every traced record-task function");
    } else {
        println!("\nWARNING: the port is missing {gap:?}");
    }
    Ok(())
}
