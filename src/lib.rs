//! # perisec — TEE-protected peripheral data pipelines for IoT
//!
//! This facade crate re-exports the entire `perisec` workspace, a
//! reproduction of *"Enhancing IoT Security and Privacy with Trusted
//! Execution Environments and Machine Learning"* (DSN 2023 Doctoral Forum).
//!
//! The workspace models a TrustZone-class IoT platform in which hardware
//! peripheral drivers are ported into an OP-TEE-like trusted execution
//! environment, an in-TEE machine-learning stage transcribes and classifies
//! the peripheral data stream, and only non-sensitive content is relayed to
//! an untrusted cloud service.
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`tz`] | `perisec-tz` | TrustZone machine model: worlds, SMC monitor, TZASC, secure RAM, cost & power models |
//! | [`devices`] | `perisec-devices` | I2S bus, MEMS microphone, camera, DMA engine, codec |
//! | [`kernel`] | `perisec-kernel` | Normal-world kernel substrate, ALSA-like PCM, baseline I2S driver, ftrace-like tracer |
//! | [`optee`] | `perisec-optee` | OP-TEE simulator: sessions, TAs, PTAs, supplicant RPC, secure storage, crypto |
//! | [`secure_driver`] | `perisec-secure-driver` | The I2S driver ported into the TEE plus its PTA bridge |
//! | [`ml`] | `perisec-ml` | Tensors, layers, training, MFCC, keyword STT, CNN/Transformer/hybrid classifiers, quantization |
//! | [`workload`] | `perisec-workload` | Synthetic labelled speech corpus and scenario generators |
//! | [`relay`] | `perisec-relay` | TLS-like secure channel, AVS-style cloud API, mock cloud service |
//! | [`tcb`] | `perisec-tcb` | Trace analysis, call graphs, driver pruning, secure-memory accounting, TCB reports |
//! | [`core`] | `perisec-core` | The paper's contribution: policy engine, privacy filter, end-to-end pipelines, metrics |
//! | [`sched`] | `perisec-sched` | Multi-core TEE scheduler: secure-core pools, sharded TA sessions, adaptive batching, model dedup |
//! | [`telemetry`] | `perisec-telemetry` | Observability plane: virtual-time span tracer, bounded log-bucket histograms, order-invariant fleet fold, chrome-trace/flamegraph export |
//! | [`ingest`] | `perisec-ingest` | Sharded attested ingest plane: epoch-fenced sessions, append-only journals, deterministic crash/recovery, bounded backpressure |
//!
//! ## Quickstart
//!
//! ```
//! use perisec::core::pipeline::{SecurePipeline, PipelineConfig};
//! use perisec::workload::scenario::Scenario;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::smart_speaker_morning(7);
//! let mut pipeline = SecurePipeline::new(PipelineConfig::default())?;
//! let report = pipeline.run_scenario(&scenario)?;
//! assert!(report.cloud.leaked_sensitive_utterances() <= report.workload.sensitive_utterances);
//! # Ok(())
//! # }
//! ```

pub use perisec_core as core;
pub use perisec_devices as devices;
pub use perisec_ingest as ingest;
pub use perisec_kernel as kernel;
pub use perisec_ml as ml;
pub use perisec_optee as optee;
pub use perisec_relay as relay;
pub use perisec_sched as sched;
pub use perisec_secure_driver as secure_driver;
pub use perisec_tcb as tcb;
pub use perisec_telemetry as telemetry;
pub use perisec_tz as tz;
pub use perisec_workload as workload;
