//! Batched-vs-unbatched parity and transition-amortization acceptance.
//!
//! The staged pipeline may batch N capture windows per TEE crossing; these
//! tests pin down the contract: batching changes *cost*, never *outcome*.
//!
//! * identical cloud outcomes (same dialog ids received, same sensitive
//!   leaks) for every batch size;
//! * `TzStats::world_switches` strictly decreases as the batch grows;
//! * at batch >= 8 the secure pipeline pays at least 4x fewer world
//!   switches per utterance than at batch = 1.

use perisec::core::fleet::{FleetConfig, PipelineFleet};
use perisec::core::pipeline::{PipelineConfig, SecurePipeline, SharedModels};
use perisec::core::policy::{FilterMode, PrivacyPolicy};
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::Scenario;

fn parity_config(batch_windows: usize) -> PipelineConfig {
    PipelineConfig {
        // Blocking policy with the lexical guard carrying recall; the
        // high classifier threshold keeps precision up so neutral traffic
        // actually flows (and therefore exercises the relay path).
        policy: PrivacyPolicy {
            mode: FilterMode::BlockSensitive,
            threshold: 0.8,
            lexical_guard: true,
        },
        train_utterances: 160,
        batch_windows,
        ..PipelineConfig::default()
    }
}

#[test]
fn batching_amortizes_world_switches_without_changing_privacy_outcomes() {
    // One trained model set for every batch size, so outcomes can only
    // differ through the batching itself.
    let models = SharedModels::for_config(&parity_config(1)).expect("models train");
    // A mixed scenario: mostly forwarded traffic with some sensitive
    // utterances the filter must stop.
    let scenario = Scenario::mixed(16, 0.25, SimDuration::from_secs(2), 0xBA7C4);
    assert!(scenario.sensitive_count() > 0);

    let mut switches_per_utterance = Vec::new();
    let mut baseline_outcome = None;
    for batch in [1usize, 2, 4, 8] {
        let mut pipeline =
            SecurePipeline::with_models(parity_config(batch), &models).expect("pipeline builds");
        let report = pipeline.run_scenario(&scenario).expect("scenario runs");

        // The privacy outcome is identical at every batch size: the same
        // utterances reach the cloud and no sensitive utterance leaks.
        assert_eq!(
            report.cloud.leaked_sensitive_utterances(),
            0,
            "batch {batch} leaked sensitive content"
        );
        let outcome = (
            report.cloud.report.received_dialog_ids(),
            report.cloud.leaked_sensitive_utterances(),
        );
        match &baseline_outcome {
            None => baseline_outcome = Some(outcome),
            Some(expected) => assert_eq!(
                &outcome, expected,
                "cloud outcome diverged at batch {batch}"
            ),
        }

        // Every utterance was processed and the TEE was really crossed.
        assert_eq!(report.workload.utterances, scenario.len());
        assert!(report.tz.smc_calls >= scenario.len().div_ceil(batch) as u64);
        switches_per_utterance.push(report.tz.world_switches as f64 / scenario.len() as f64);
    }

    // World switches strictly decrease with the batch size...
    for pair in switches_per_utterance.windows(2) {
        assert!(
            pair[1] < pair[0],
            "world switches did not decrease: {switches_per_utterance:?}"
        );
    }
    // ...and batch >= 8 is at least 4x cheaper than batch = 1.
    let unbatched = switches_per_utterance[0];
    let batched = *switches_per_utterance.last().expect("swept batches");
    assert!(
        unbatched >= 4.0 * batched,
        "expected >= 4x fewer world switches per utterance at batch 8: \
         batch1 = {unbatched:.2}, batch8 = {batched:.2}"
    );
}

#[test]
fn fleet_runs_eight_devices_off_one_model_set() {
    let fleet = PipelineFleet::new(FleetConfig {
        devices: 8,
        pipeline: parity_config(8),
        ..FleetConfig::of(0)
    })
    .expect("fleet trains once");
    let scenarios = Scenario::fleet(8, 8, 0.25, SimDuration::from_secs(2), 0xF1EE7);
    let report = fleet.run(&scenarios).expect("fleet runs");

    assert_eq!(report.device_count(), 8);
    assert_eq!(report.total_utterances(), 64);
    assert!(report.total_sensitive_utterances() > 0);
    assert_eq!(report.leaked_sensitive_utterances(), 0);
    // Every device crossed its own TEE and reported energy and latency.
    assert!(report.total_smc_calls() >= 8);
    assert!(report.mean_end_to_end() > SimDuration::ZERO);
    assert!(report.total_energy_mj() > 0.0);
    // The batched fleet stays under 2 world switches per utterance — far
    // below the ~6 an unbatched pipeline pays on forwarded traffic.
    assert!(
        report.world_switches_per_utterance() < 2.0,
        "switches/utterance = {:.2}",
        report.world_switches_per_utterance()
    );
}
