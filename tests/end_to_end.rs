//! Cross-crate integration tests: the full secure pipeline against its
//! baseline, exercising every layer of the workspace together.

use perisec::core::pipeline::{BaselinePipeline, PipelineConfig, SecurePipeline};
use perisec::core::policy::PrivacyPolicy;
use perisec::ml::classifier::Architecture;
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::Scenario;

fn fast_config() -> PipelineConfig {
    PipelineConfig {
        train_utterances: 60,
        ..PipelineConfig::default()
    }
}

#[test]
fn secure_pipeline_reduces_leakage_versus_baseline() {
    let scenario = Scenario::mixed(14, 0.5, SimDuration::from_secs(6), 9001);
    let mut baseline = BaselinePipeline::new(fast_config()).unwrap();
    let baseline_report = baseline.run_scenario(&scenario).unwrap();
    let mut secure = SecurePipeline::new(fast_config()).unwrap();
    let secure_report = secure.run_scenario(&scenario).unwrap();

    // The baseline ships every utterance to the cloud.
    assert_eq!(
        baseline_report.cloud.received_utterances(),
        scenario.len(),
        "baseline must forward everything"
    );
    assert_eq!(
        baseline_report.cloud.leaked_sensitive_utterances(),
        scenario.sensitive_count()
    );

    // The secure pipeline leaks strictly less sensitive content.
    assert!(
        secure_report.cloud.leaked_sensitive_utterances()
            < baseline_report.cloud.leaked_sensitive_utterances(),
        "secure {} vs baseline {}",
        secure_report.cloud.leaked_sensitive_utterances(),
        baseline_report.cloud.leaked_sensitive_utterances()
    );
    // ... but still forwards some non-sensitive utility traffic.
    assert!(secure_report.cloud.received_utterances() > 0);
    // Everything the secure pipeline sends is encrypted.
    assert!(secure_report
        .cloud
        .report
        .events
        .iter()
        .all(|e| e.encrypted));
}

#[test]
fn secure_pipeline_pays_measurable_tee_overhead() {
    let scenario = Scenario::mixed(8, 0.5, SimDuration::from_secs(6), 9002);
    let mut baseline = BaselinePipeline::new(fast_config()).unwrap();
    let baseline_report = baseline.run_scenario(&scenario).unwrap();
    let mut secure = SecurePipeline::new(fast_config()).unwrap();
    let secure_report = secure.run_scenario(&scenario).unwrap();

    // The trade-off the paper expects: more latency and more energy in
    // exchange for the security property.
    assert!(secure_report.latency.mean_end_to_end() > baseline_report.latency.mean_end_to_end());
    assert!(secure_report.tz.world_switches > baseline_report.tz.world_switches);
    assert!(secure_report.tz.supplicant_rpcs > 0);
    assert_eq!(baseline_report.tz.smc_calls, 0);
    assert!(
        secure_report.energy.total_mj >= baseline_report.energy.total_mj,
        "secure energy {} vs baseline {}",
        secure_report.energy.total_mj,
        baseline_report.energy.total_mj
    );
}

#[test]
fn all_three_architectures_run_end_to_end() {
    let scenario = Scenario::mixed(6, 0.5, SimDuration::from_secs(6), 9003);
    for architecture in Architecture::ALL {
        let mut pipeline = SecurePipeline::new(PipelineConfig {
            architecture,
            train_utterances: 60,
            ..PipelineConfig::default()
        })
        .unwrap();
        let report = pipeline.run_scenario(&scenario).unwrap();
        assert_eq!(report.workload.utterances, scenario.len());
        assert!(
            report.latency.ml > SimDuration::ZERO,
            "{architecture} ran no ML"
        );
        assert!(report.cloud.leakage_rate() <= 1.0);
    }
}

#[test]
fn policy_changes_apply_at_runtime() {
    let scenario = Scenario::mixed(8, 1.0, SimDuration::from_secs(4), 9004);
    let mut pipeline = SecurePipeline::new(PipelineConfig {
        policy: PrivacyPolicy::allow_all(),
        train_utterances: 60,
        ..PipelineConfig::default()
    })
    .unwrap();
    let open = pipeline.run_scenario(&scenario).unwrap();
    pipeline
        .set_policy(PrivacyPolicy::block_sensitive())
        .unwrap();
    let closed = pipeline.run_scenario(&scenario).unwrap();
    assert!(closed.cloud.leaked_sensitive_utterances() <= open.cloud.leaked_sensitive_utterances());
    assert!(closed.cloud.received_utterances() <= open.cloud.received_utterances());
}

#[test]
fn normal_world_cannot_read_the_secure_io_buffers() {
    // The property the whole design rests on (§II): the driver's I/O
    // buffers live in the TZASC carve-out, so the untrusted OS cannot read
    // them even though it orchestrates the pipeline.
    use perisec::devices::mic::Microphone;
    use perisec::devices::signal::SineSource;
    use perisec::secure_driver::driver::SecureI2sDriver;
    use perisec::tz::platform::Platform;
    use perisec::tz::world::World;

    let platform = Platform::jetson_agx_xavier();
    let mic = Microphone::speech_mic("mic", Box::new(SineSource::new(440.0, 16_000, 0.5))).unwrap();
    let mut driver = SecureI2sDriver::new(platform.clone(), mic);
    driver
        .configure(160, perisec::devices::codec::AudioEncoding::PcmLe16)
        .unwrap();
    let addr = driver
        .io_buffer_addr()
        .expect("configured driver has buffers");
    assert!(platform
        .check_access(addr, 320, World::Normal, false)
        .is_err());
    assert!(platform
        .check_access(addr, 320, World::Secure, false)
        .is_ok());
    assert!(platform.stats().permission_faults() >= 1);
}
