//! The fleet executor's determinism contract — the executor's mirror of
//! `tests/shard_parity.rs`.
//!
//! Scheduling is a host-side concern: device runs are hermetic (each
//! device owns its platform, virtual clock, TEE core and cloud), so the
//! merged [`FleetReport`] must be **byte-identical** for
//!
//! * any worker count (1, 2, 8),
//! * any steal interleaving (seeded victim order),
//! * and the thread-per-device baseline harness,
//!
//! while the executor's host telemetry (steals, peak residency) is free
//! to vary. Peak residency itself is pinned: never more than one built
//! device stack per worker — the bounded-memory half of the contract.

use std::collections::BTreeSet;

use perisec::core::fleet::{FleetConfig, PipelineFleet};
use perisec::core::pipeline::{CameraPipelineConfig, DegradeSpec, PipelineConfig, SharedModels};
use perisec::ml::classifier::Architecture;
use perisec::telemetry::{HealthConfig, SloSpec, TelemetryConfig};
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::{CameraScenario, Scenario};

fn fleet_with_workers(workers: usize, models: &SharedModels) -> PipelineFleet {
    PipelineFleet::with_models(
        FleetConfig {
            devices: 2,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            camera_devices: 5,
            camera_pipeline: CameraPipelineConfig {
                batch_windows: 4,
                ..CameraPipelineConfig::default()
            },
            workers,
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
}

#[test]
fn same_seed_reproduces_byte_identical_reports_across_worker_counts() {
    let models =
        SharedModels::deferred(Architecture::Cnn, 60, 0xDE7E).with_vision_spec(120, 0xDE7E);
    let audio = Scenario::fleet(2, 4, 0.5, SimDuration::from_secs(1), 0xDE7E);
    let cameras = CameraScenario::fleet_cameras(5, 4, 0.4, SimDuration::from_secs(1), 0xDE7E);

    let mut jsons = Vec::new();
    for workers in [1usize, 2, 8] {
        let fleet = fleet_with_workers(workers, &models);
        let (report, stats) = fleet.run_mixed_stats(&audio, &cameras).unwrap();
        // The memory contract: at most one resident stack per worker.
        assert!(
            stats.peak_resident <= stats.workers,
            "{workers} workers: peak resident {} exceeded pool {}",
            stats.peak_resident,
            stats.workers
        );
        assert_eq!(stats.completed, 7);
        assert_eq!(report.device_count(), 7);
        jsons.push(report.to_json());
    }
    assert_eq!(jsons[0], jsons[1], "1 vs 2 workers diverged");
    assert_eq!(jsons[1], jsons[2], "2 vs 8 workers diverged");

    // The thread-per-device baseline produces the very same bytes: the
    // executor changes host cost, never outcomes — which is what makes
    // E15's executor-vs-threads comparison a pure performance experiment.
    let threaded = fleet_with_workers(4, &models)
        .run_mixed_threaded(&audio, &cameras)
        .unwrap()
        .to_json();
    assert_eq!(jsons[0], threaded, "executor diverged from baseline");
}

#[test]
fn executor_reports_are_stable_across_repeated_runs() {
    // Same fleet, run twice on the same worker count: steal interleavings
    // and queue timings differ run to run, the report must not.
    let models =
        SharedModels::deferred(Architecture::Cnn, 60, 0x2EAD).with_vision_spec(120, 0x2EAD);
    let cameras = CameraScenario::fleet_cameras(6, 4, 0.4, SimDuration::from_secs(1), 0x2EAD);
    let fleet = PipelineFleet::with_models(
        FleetConfig {
            workers: 3,
            camera_pipeline: CameraPipelineConfig {
                batch_windows: 2,
                ..CameraPipelineConfig::default()
            },
            ..FleetConfig::mixed(0, 6)
        },
        models,
    );
    let first = fleet.run_mixed(&[], &cameras).unwrap().to_json();
    let second = fleet.run_mixed(&[], &cameras).unwrap().to_json();
    assert_eq!(first, second);
}

fn observed_fleet(
    workers: usize,
    telemetry: TelemetryConfig,
    models: &SharedModels,
) -> PipelineFleet {
    PipelineFleet::with_models(
        FleetConfig {
            devices: 2,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 4,
                ..PipelineConfig::default()
            },
            camera_devices: 5,
            camera_pipeline: CameraPipelineConfig {
                batch_windows: 4,
                ..CameraPipelineConfig::default()
            },
            workers,
            telemetry,
            trace_devices: BTreeSet::from([3]),
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
}

#[test]
fn telemetry_plane_never_perturbs_the_report() {
    // The zero-perturbation half of the telemetry contract: with the
    // telemetry plane recording in every device (metrics everywhere,
    // full span capture on device 3), the functional `FleetReport` is
    // byte-for-byte the report of a silent run — at every worker count.
    // The other half is the fold's own determinism: the merged
    // `FleetTelemetry` must not notice worker counts or steal
    // interleavings either, because histogram/counter merging is
    // commutative and traces key on device ids.
    let models =
        SharedModels::deferred(Architecture::Cnn, 60, 0x7E1E).with_vision_spec(120, 0x7E1E);
    let audio = Scenario::fleet(2, 4, 0.5, SimDuration::from_secs(1), 0x7E1E);
    let cameras = CameraScenario::fleet_cameras(5, 4, 0.4, SimDuration::from_secs(1), 0x7E1E);

    let mut reference_fold = None;
    for workers in [1usize, 2, 8] {
        let silent = observed_fleet(workers, TelemetryConfig::default(), &models)
            .run_mixed(&audio, &cameras)
            .unwrap();
        let (observed, _, fold) = observed_fleet(workers, TelemetryConfig::metrics(), &models)
            .run_mixed_telemetry(&audio, &cameras)
            .unwrap();
        assert_eq!(
            silent.to_json(),
            observed.to_json(),
            "telemetry perturbed the report at {workers} workers"
        );
        // Every layer contributed to the fold, and only the designated
        // device retained spans.
        assert_eq!(fold.devices, 7);
        assert!(fold.histograms.contains_key("smc.call"));
        assert!(fold.histograms.contains_key("ta.classify"));
        assert!(fold.trace(3).is_some());
        assert!(fold.trace(0).is_none());
        match &reference_fold {
            None => reference_fold = Some(fold),
            Some(reference) => assert_eq!(
                &fold, reference,
                "telemetry fold diverged at {workers} workers"
            ),
        }
    }

    // Repeated runs at a steal-prone worker count: interleavings differ,
    // the fold must not.
    let fleet = observed_fleet(3, TelemetryConfig::metrics(), &models);
    let (_, _, first) = fleet.run_mixed_telemetry(&audio, &cameras).unwrap();
    let (_, _, second) = fleet.run_mixed_telemetry(&audio, &cameras).unwrap();
    assert_eq!(first, second, "fold varies across steal interleavings");
    assert_eq!(Some(first), reference_fold);
}

fn health_fleet(
    workers: usize,
    degrade: Option<DegradeSpec>,
    budget: SimDuration,
    models: &SharedModels,
) -> PipelineFleet {
    PipelineFleet::with_models(
        FleetConfig {
            devices: 3,
            pipeline: PipelineConfig {
                train_utterances: 60,
                batch_windows: 4,
                degrade,
                ..PipelineConfig::default()
            },
            workers,
            health: Some(HealthConfig {
                slos: vec![SloSpec::p95("tee-filter", budget)],
                stall_epochs: 8,
                ..HealthConfig::with_window(SimDuration::from_secs(1))
            }),
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
}

#[test]
fn health_alert_journal_is_byte_identical_across_worker_counts() {
    // The health plane lives in virtual time: every alert carries the
    // epoch boundary that produced it, every journal sorts on
    // `(epoch, device)` — so injected degradation fires the *same*
    // alerts at the *same* virtual timestamps no matter how many host
    // workers interleave the devices.
    let models = SharedModels::deferred(Architecture::Cnn, 60, 0xA1E7);
    models.audio().unwrap();
    let audio = Scenario::fleet(3, 6, 0.5, SimDuration::from_secs(1), 0xA1E7);
    let degrade = Some(DegradeSpec {
        after: SimDuration::from_secs(2),
        per_window: SimDuration::from_millis(10),
    });

    let mut journals = Vec::new();
    for workers in [1usize, 2, 8] {
        let fleet = health_fleet(workers, degrade, SimDuration::from_millis(5), &models);
        let (_, _, _, health) = fleet.run_mixed_health(&audio, &[]).unwrap();
        assert!(
            !health.alerts.is_empty(),
            "injected degradation fired no alerts at {workers} workers"
        );
        assert_eq!(health.healthy, 0, "{}", health.to_table());
        journals.push(health.alert_journal_json());
    }
    assert_eq!(journals[0], journals[1], "1 vs 2 workers diverged");
    assert_eq!(journals[1], journals[2], "2 vs 8 workers diverged");
}

#[test]
fn health_plane_never_perturbs_the_report() {
    // Pure observation: the functional report with the health plane on
    // is byte-for-byte the report of a run with no health (and no
    // telemetry) at all — even though health forces the metrics plane on
    // under the hood.
    let models = SharedModels::deferred(Architecture::Cnn, 60, 0x8EA7);
    models.audio().unwrap();
    let audio = Scenario::fleet(3, 5, 0.5, SimDuration::from_secs(1), 0x8EA7);

    let observed = health_fleet(2, None, SimDuration::from_secs(5), &models);
    let (report, _, _, health) = observed.run_mixed_health(&audio, &[]).unwrap();
    assert_eq!(health.devices, 3);
    assert!(health.alerts.is_empty(), "{}", health.to_table());

    let mut silent_config = observed.config().clone();
    silent_config.health = None;
    let silent = PipelineFleet::with_models(silent_config, models.clone());
    assert_eq!(
        silent.run_mixed(&audio, &[]).unwrap().to_json(),
        report.to_json(),
        "health plane perturbed the functional report"
    );
}
