//! Integration tests of the sharded attested ingest plane: the
//! attestation/epoch lifecycle on the wire, crash recovery from the
//! journal, backpressure surfacing, the end-of-scenario drain under a
//! shard outage, per-tenant accounting, and the byte-identity of cloud
//! decisions between the plane-routed and direct paths.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use perisec::core::fleet::{FleetConfig, PipelineFleet};
use perisec::core::pipeline::{PipelineConfig, SharedModels};
use perisec::core::FILTER_TA_NAME;
use perisec::ingest::{IngestPlane, IngestPlaneConfig, ShardFaultSpec};
use perisec::relay::attest::{
    encode_attest_request, encode_ingest_record, SessionIngest, ATTEST_SEQ_BASE,
};
use perisec::relay::avs::AvsEvent;
use perisec::relay::cloud::ReceivedEvent;
use perisec::relay::{measurement_of, IngestReply, SecureChannelClient, MEASUREMENT_LEN, PSK_LEN};
use perisec::telemetry::{HealthConfig, TelemetryConfig};
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::Scenario;

/// The plane's default PSK (matches the pipelines' `default_psk`).
const PSK: [u8; PSK_LEN] = [0x5a; PSK_LEN];

/// A hand-rolled device speaking the plane's wire protocol directly —
/// full control over sequence numbers, epochs, counters and virtual
/// time, which the in-pipeline channel deliberately hides.
struct WireSession {
    plane: Arc<IngestPlane>,
    session: u64,
    client: SecureChannelClient,
    now_ns: u64,
}

impl WireSession {
    fn connect(plane: &Arc<IngestPlane>, session: u64, now_ns: u64) -> Self {
        let mut client = SecureChannelClient::new(PSK, session + 1000);
        let hello = client.client_hello();
        let reply = plane.handle(session, now_ns, &hello);
        assert!(!reply.is_empty(), "handshake refused");
        client
            .process_server_hello(&reply)
            .expect("server hello authenticates");
        WireSession {
            plane: Arc::clone(plane),
            session,
            client,
            now_ns,
        }
    }

    fn attest(&mut self, measurement: [u8; MEASUREMENT_LEN], counter: u64) -> IngestReply {
        let seq = ATTEST_SEQ_BASE + counter;
        let wire = self
            .client
            .seal_at(seq, &encode_attest_request(&measurement, counter))
            .expect("seal");
        let reply = self.plane.handle(self.session, self.now_ns, &wire);
        assert!(!reply.is_empty(), "attest got no reply");
        let (reply_seq, plain) = self.client.open_explicit(&reply).expect("reply seals");
        assert_eq!(reply_seq, seq);
        IngestReply::decode(&plain).expect("typed reply")
    }

    /// Sends one record; `None` means the shard was down (empty reply).
    fn send(&mut self, seq: u64, epoch: u64, event: &AvsEvent) -> Option<IngestReply> {
        let wire = self
            .client
            .seal_at(seq, &encode_ingest_record(epoch, &event.encode()))
            .expect("seal");
        let reply = self.plane.handle(self.session, self.now_ns, &wire);
        if reply.is_empty() {
            return None;
        }
        let (_, plain) = self.client.open_explicit(&reply).expect("reply seals");
        IngestReply::decode(&plain)
    }
}

fn event(dialog_id: u64) -> AvsEvent {
    AvsEvent::TextMessage {
        dialog_id,
        text: format!("event {dialog_id}"),
    }
}

#[test]
fn attestation_gates_and_epoch_fences_records() {
    let ta = measurement_of("test-ta");
    let plane = IngestPlane::new(IngestPlaneConfig::new(1, 1).accepting(vec![ta]));
    let mut wire = WireSession::connect(&plane, 0, 0);

    // No attestation yet: records are refused with a typed NeedAttest.
    assert!(matches!(
        wire.send(0, 0, &event(1)),
        Some(IngestReply::NeedAttest)
    ));
    assert_eq!(plane.counters().stale_epoch_rejects, 1);

    // Wrong measurement and a zero counter are both rejected.
    let impostor = measurement_of("impostor-ta");
    assert!(matches!(
        wire.attest(impostor, 1),
        IngestReply::AttestReject
    ));
    assert!(matches!(wire.attest(ta, 0), IngestReply::AttestReject));

    // A valid attestation grants epoch 1 and opens the gate.
    assert!(matches!(
        wire.attest(ta, 1),
        IngestReply::AttestGrant { epoch: 1 }
    ));
    assert!(matches!(
        wire.send(0, 1, &event(1)),
        Some(IngestReply::Ack(_))
    ));
    assert_eq!(plane.session_report(0).committed_records, 1);

    // A record under a superseded epoch names the granted one.
    assert!(matches!(
        wire.send(1, 0, &event(2)),
        Some(IngestReply::StaleEpoch { granted: 1 })
    ));

    // Retrying the exact last counter re-issues the same epoch (a lost
    // grant being retried), while a fresh counter bumps it.
    assert!(matches!(
        wire.attest(ta, 1),
        IngestReply::AttestGrant { epoch: 1 }
    ));
    assert!(matches!(
        wire.attest(ta, 2),
        IngestReply::AttestGrant { epoch: 2 }
    ));
    assert!(matches!(
        wire.send(1, 2, &event(2)),
        Some(IngestReply::Ack(_))
    ));
    assert_eq!(plane.session_report(0).committed_records, 2);

    // Redelivery of a committed sequence re-acks without re-recording,
    // even under a stale epoch — the promise was already made.
    assert!(matches!(
        wire.send(0, 1, &event(1)),
        Some(IngestReply::Ack(_))
    ));
    let report = plane.session_report(0);
    assert_eq!(report.committed_records, 2);
    assert_eq!(report.redelivered_records, 1);
    assert_eq!(report.events.len(), 2);
}

#[test]
fn backpressure_is_typed_and_surfaces_in_shard_health() {
    let ta = measurement_of("test-ta");
    let plane = IngestPlane::new(
        IngestPlaneConfig::new(1, 1)
            .accepting(vec![ta])
            .with_queue_cap(1),
    );
    let mut wire = WireSession::connect(&plane, 0, 0);
    assert!(matches!(
        wire.attest(ta, 1),
        IngestReply::AttestGrant { epoch: 1 }
    ));

    // One out-of-order record fits the stash; the next gapped one is
    // refused with a typed depth instead of being dropped silently.
    assert!(matches!(
        wire.send(2, 1, &event(2)),
        Some(IngestReply::Ack(_))
    ));
    assert!(matches!(
        wire.send(3, 1, &event(3)),
        Some(IngestReply::Backpressure { depth: 1 })
    ));
    assert_eq!(plane.counters().backpressure_rejects, 1);

    // Filling the gap drains the stash in order.
    assert!(matches!(
        wire.send(0, 1, &event(0)),
        Some(IngestReply::Ack(_))
    ));
    assert!(matches!(
        wire.send(1, 1, &event(1)),
        Some(IngestReply::Ack(_))
    ));
    assert_eq!(plane.session_report(0).committed_records, 3);

    // The rejection rides the telemetry fold under its billing key and
    // trips the health detector.
    let telemetry = plane.shard_telemetry(0);
    assert_eq!(telemetry.counters.get("ingest.backpressure"), Some(&1));
    assert!(telemetry.counters.contains_key("ingest.committed"));
    let config = HealthConfig {
        backpressure_threshold: 1,
        ..HealthConfig::with_window(SimDuration::from_secs(1))
    };
    let health = plane.shard_health(0, &config);
    assert!(
        health.alerts_of("backpressure") > 0,
        "{}",
        health.to_table()
    );
}

#[test]
fn shard_health_journals_crash_windows() {
    let ta = measurement_of("test-ta");
    let plane = IngestPlane::new(
        IngestPlaneConfig::new(1, 1)
            .accepting(vec![ta])
            .with_faults(ShardFaultSpec::single(3, 1_000_000, 500_000)),
    );
    // Session traffic entirely before the crash window.
    let mut wire = WireSession::connect(&plane, 0, 0);
    assert!(matches!(
        wire.attest(ta, 1),
        IngestReply::AttestGrant { epoch: 1 }
    ));
    assert!(matches!(
        wire.send(0, 1, &event(0)),
        Some(IngestReply::Ack(_))
    ));
    let health = plane.shard_health(0, &HealthConfig::with_window(SimDuration::from_secs(1)));
    assert_eq!(health.alerts_of("shard_down"), 1);
    assert_eq!(health.alerts_of("shard_recovered"), 1);
}

proptest! {
    /// Satellite 3a: attestation replay and downgrade attempts — a
    /// reused or lower counter, a tampered measurement, a record sealed
    /// under a superseded epoch — are rejected for every seed, and a
    /// rejection never moves the session's epoch or commit stream.
    #[test]
    fn replayed_or_downgraded_attestations_never_accepted(seed in any::<u64>()) {
        let ta = measurement_of("prop-ta");
        let plane = IngestPlane::new(IngestPlaneConfig::new(1, 1).accepting(vec![ta]));
        let mut wire = WireSession::connect(&plane, 0, 0);

        // A grant at some counter > 1.
        let counter = 2 + seed % 64;
        prop_assert!(matches!(
            wire.attest(ta, counter),
            IngestReply::AttestGrant { epoch: 1 }
        ));
        prop_assert!(matches!(
            wire.send(0, 1, &event(0)),
            Some(IngestReply::Ack(_))
        ));

        // Replay fence: any strictly lower counter is refused.
        let lower = seed % counter; // in [0, counter)
        prop_assert!(matches!(
            wire.attest(ta, lower),
            IngestReply::AttestReject
        ));

        // Tamper fence: a corrupted measurement is refused at any
        // counter, and the session's epoch does not move.
        let mut tampered = ta;
        tampered[(seed % MEASUREMENT_LEN as u64) as usize] ^= 1 + (seed >> 32) as u8;
        prop_assert!(matches!(
            wire.attest(tampered, counter + 1),
            IngestReply::AttestReject
        ));
        prop_assert!(matches!(
            wire.send(1, 1, &event(1)),
            Some(IngestReply::Ack(_))
        ));

        // Downgrade fence: after a fresh grant bumps the epoch, records
        // sealed under any previous epoch are refused.
        prop_assert!(matches!(
            wire.attest(ta, counter + 2),
            IngestReply::AttestGrant { epoch: 2 }
        ));
        prop_assert!(matches!(
            wire.send(2, 1, &event(2)), // epoch 1, the superseded grant
            Some(IngestReply::StaleEpoch { granted: 2 })
        ));
        prop_assert_eq!(plane.counters().attest_rejects, 2);
        prop_assert_eq!(plane.session_report(0).committed_records, 2);
    }

    /// Satellite 3b: a shard crash beginning at any virtual instant,
    /// with any downtime, never loses or duplicates a committed record
    /// — the surviving stream is identical to the fault-free run.
    #[test]
    fn crash_at_any_virtual_instant_never_loses_or_duplicates_commits(seed in any::<u64>()) {
        const RECORDS: u64 = 12;
        const SPACING_NS: u64 = 10_000;
        let ta = measurement_of("prop-ta");
        let reference = fault_free_reference(ta, RECORDS);

        // A crash beginning at an arbitrary instant within the run.
        let crash_at = 1 + seed % (RECORDS * SPACING_NS);
        let downtime = 1 + (seed >> 32) % (4 * SPACING_NS);
        let plane = IngestPlane::new(
            IngestPlaneConfig::new(1, 1)
                .accepting(vec![ta])
                .with_faults(ShardFaultSpec::single(seed, crash_at, downtime)),
        );
        let mut wire = WireSession::connect(&plane, 0, 0);
        let mut counter = 1u64;
        let mut epoch = match wire.attest(ta, counter) {
            IngestReply::AttestGrant { epoch } => epoch,
            other => panic!("initial attest refused: {other:?}"),
        };
        for seq in 0..RECORDS {
            wire.now_ns = seq * SPACING_NS;
            // The device loop: retry through downtime, re-attest on a
            // fenced epoch, resend until acked. Redeliveries of records
            // whose ack was made while we were retrying are re-acked.
            let mut rounds = 0;
            loop {
                rounds += 1;
                prop_assert!(rounds < 64, "no ack after {rounds} rounds");
                match wire.send(seq, epoch, &event(seq)) {
                    Some(IngestReply::Ack(_)) => break,
                    Some(IngestReply::NeedAttest) | Some(IngestReply::StaleEpoch { .. }) => {
                        counter += 1;
                        match wire.attest(ta, counter) {
                            IngestReply::AttestGrant { epoch: granted } => epoch = granted,
                            other => panic!("re-attest refused: {other:?}"),
                        }
                    }
                    Some(other) => panic!("unexpected reply: {other:?}"),
                    // Shard down: wait out some virtual time and retry.
                    None => wire.now_ns += SPACING_NS,
                }
            }
        }
        // Exactly-once: the committed stream matches the fault-free
        // reference — nothing lost, nothing double-recorded.
        let report = plane.session_report(0);
        prop_assert_eq!(report.committed_records, RECORDS);
        prop_assert_eq!(&report.events, &reference);
    }
}

/// The decision stream of a fault-free single-session run, used as the
/// exactly-once reference by the crash property test.
fn fault_free_reference(ta: [u8; MEASUREMENT_LEN], records: u64) -> Vec<ReceivedEvent> {
    let plane = IngestPlane::new(IngestPlaneConfig::new(1, 1).accepting(vec![ta]));
    let mut wire = WireSession::connect(&plane, 0, 0);
    assert!(matches!(
        wire.attest(ta, 1),
        IngestReply::AttestGrant { .. }
    ));
    for seq in 0..records {
        assert!(matches!(
            wire.send(seq, 1, &event(seq)),
            Some(IngestReply::Ack(_))
        ));
    }
    plane.session_report(0).events
}

#[test]
fn throughput_scales_with_shard_count() {
    let ta = measurement_of("scale-ta");
    const SESSIONS: u64 = 8;
    const RECORDS: u64 = 50;
    let run = |shards: usize| {
        let plane =
            IngestPlane::new(IngestPlaneConfig::new(shards, SESSIONS as usize).accepting(vec![ta]));
        for session in 0..SESSIONS {
            let mut wire = WireSession::connect(&plane, session, 0);
            assert!(matches!(
                wire.attest(ta, 1),
                IngestReply::AttestGrant { .. }
            ));
            for seq in 0..RECORDS {
                assert!(matches!(
                    wire.send(seq, 1, &event(seq)),
                    Some(IngestReply::Ack(_))
                ));
            }
        }
        plane.modeled_throughput_rps()
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four / one >= 2.0,
        "4 shards only {:.2}x over 1 shard ({one:.0} vs {four:.0} rps)",
        four / one
    );
}

// ----- fleet-level (pipeline-routed) tests ---------------------------------

fn shared_models() -> &'static (PipelineConfig, SharedModels, Vec<Scenario>) {
    static SHARED: OnceLock<(PipelineConfig, SharedModels, Vec<Scenario>)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let pipeline = PipelineConfig {
            train_utterances: 60,
            batch_windows: 2,
            ..PipelineConfig::default()
        };
        let models = SharedModels::for_config(&pipeline).expect("models train");
        let scenarios = Scenario::fleet(4, 5, 0.5, SimDuration::from_secs(1), 0xE21);
        (pipeline, models, scenarios)
    })
}

fn routed_config(plane: &Arc<IngestPlane>, workers: usize) -> FleetConfig {
    let (pipeline, _, _) = shared_models();
    FleetConfig {
        devices: 4,
        pipeline: pipeline.clone(),
        workers,
        ingest: Some(Arc::clone(plane) as _),
        ..FleetConfig::of(0)
    }
}

fn filter_plane(shards: usize, faults: ShardFaultSpec) -> Arc<IngestPlane> {
    IngestPlane::new(
        IngestPlaneConfig::new(shards, 4)
            .accepting(vec![measurement_of(FILTER_TA_NAME)])
            .with_faults(faults),
    )
}

#[test]
fn fleet_decisions_identical_through_crashing_plane() {
    let (pipeline, models, scenarios) = shared_models();
    let direct = PipelineFleet::with_models(
        FleetConfig {
            devices: 4,
            pipeline: pipeline.clone(),
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
    .run(scenarios)
    .unwrap();

    // Two shards crash mid-run; the fleet re-attests and recovers, and
    // the decision stream is byte-identical at every worker count.
    let mut jsons = Vec::new();
    for workers in [1usize, 2, 8] {
        let plane = filter_plane(2, ShardFaultSpec::single(7, 1_500_000_000, 150_000_000));
        let routed = PipelineFleet::with_models(routed_config(&plane, workers), models.clone())
            .run(scenarios)
            .unwrap();
        let counters = plane.counters();
        assert!(
            counters.stale_epoch_rejects > 0,
            "crash did not fence any record: {counters:?}"
        );
        assert!(
            counters.attest_grants > 4,
            "no session re-attested: {counters:?}"
        );
        jsons.push(routed.cloud_decisions_json());
    }
    assert_eq!(direct.cloud_decisions_json(), jsons[0]);
    assert_eq!(jsons[0], jsons[1]);
    assert_eq!(jsons[1], jsons[2]);
}

#[test]
fn drain_during_shard_outage_strands_nothing() {
    let (pipeline, models, scenarios) = shared_models();
    let direct = PipelineFleet::with_models(
        FleetConfig {
            devices: 4,
            pipeline: pipeline.clone(),
            ..FleetConfig::of(0)
        },
        models.clone(),
    )
    .run(scenarios)
    .unwrap();

    // The outage covers the scenarios' tail (devices finish ~4.0s of
    // virtual time), so the end-of-scenario FLUSH_RELAY drain begins
    // against a dead shard and must ride retries through the restart.
    let plane = filter_plane(1, ShardFaultSpec::single(11, 3_850_000_000, 400_000_000));
    let fleet = PipelineFleet::with_models(
        FleetConfig {
            telemetry: TelemetryConfig::metrics(),
            ..routed_config(&plane, 2)
        },
        models.clone(),
    );
    let (routed, _, telemetry) = fleet.run_mixed_telemetry(scenarios, &[]).unwrap();

    // The drain really engaged: flushes deferred into retries while the
    // shard was down, and sessions re-attested to the new incarnation.
    assert!(
        telemetry.counters.get("relay.retries").copied() > Some(0),
        "outage injected no retries"
    );
    assert!(plane.counters().stale_epoch_rejects > 0);
    // Zero stranded records: every verdict converged after recovery.
    assert_eq!(direct.cloud_decisions_json(), routed.cloud_decisions_json());
}

#[test]
fn accounting_rows_itemize_tenants() {
    let (_, models, scenarios) = shared_models();
    let plane = filter_plane(2, ShardFaultSpec::none(0));
    let fleet = PipelineFleet::with_models(
        FleetConfig {
            telemetry: TelemetryConfig::metrics(),
            ..routed_config(&plane, 2)
        },
        models.clone(),
    );
    let (report, _, telemetry) = fleet.run_mixed_telemetry(scenarios, &[]).unwrap();
    let json = report.to_json_with_telemetry(&telemetry);
    assert!(json.contains("\"accounting\""));
    assert!(json.contains("\"billing_keys\""));
    assert!(json.contains("\"tenants\""));
    assert!(json.contains("\"session\""));
    assert!(json.contains("\"committed\""));
    assert!(json.contains("\"redelivered\""));
    // Span names double as billing keys.
    assert!(json.contains("tee-filter") || json.contains("smc.call"));
    // One row per device session.
    assert_eq!(json.matches("\"session\"").count(), 4);
}
