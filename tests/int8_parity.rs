//! Int8-vs-f32 deployment parity and residency acceptance.
//!
//! The int8 fast path may change *cost* — host wall-clock and secure-RAM
//! residency — but never *outcome*. These tests pin the contract on the
//! seed corpus:
//!
//! * an int8-mode fleet produces the **same cloud decisions and zero
//!   leaks** as the f32-mode fleet, for both modalities;
//! * the quantized resident model bytes are **strictly below** the f32
//!   residency, in the unsharded pipelines' carve-outs and in the sharded
//!   pool's deduplicated footprint (the E14 dedup gates still hold).

use perisec::core::fleet::{FleetConfig, PipelineFleet};
use perisec::core::pipeline::{
    CameraPipelineConfig, PipelineConfig, SecureCameraPipeline, SecurePipeline, SharedModels,
};
use perisec::ml::quant::QuantMode;
use perisec::sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
use perisec::sched::pool::TeePoolConfig;
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::{CameraScenario, Scenario};

fn audio_config(quant_mode: QuantMode) -> PipelineConfig {
    PipelineConfig {
        train_utterances: 120,
        batch_windows: 4,
        quant_mode,
        ..PipelineConfig::default()
    }
}

fn camera_config(quant_mode: QuantMode) -> CameraPipelineConfig {
    CameraPipelineConfig {
        batch_windows: 4,
        quant_mode,
        ..CameraPipelineConfig::default()
    }
}

#[test]
fn int8_mode_fleets_match_f32_cloud_decisions_with_zero_leaks() {
    // One trained model set for both modes: the int8 form is quantized
    // once from the same weights, so outcomes can only differ through the
    // integer arithmetic itself.
    let models = SharedModels::for_config(&audio_config(QuantMode::Int8)).expect("models train");
    models.vision().expect("frame classifier trains");

    let audio = Scenario::fleet(3, 8, 0.4, SimDuration::from_secs(2), 0x18A7);
    let cameras = CameraScenario::fleet_cameras(3, 8, 0.4, SimDuration::from_secs(2), 0x18A7);
    assert!(audio.iter().any(|s| s.sensitive_count() > 0));
    assert!(cameras.iter().any(|s| s.sensitive_count() > 0));

    let run = |mode: QuantMode| {
        let fleet = PipelineFleet::with_models(
            FleetConfig {
                devices: 3,
                pipeline: audio_config(mode),
                camera_devices: 3,
                camera_pipeline: camera_config(mode),
                ..FleetConfig::of(0)
            },
            models.clone(),
        );
        fleet.run_mixed(&audio, &cameras).expect("mixed fleet runs")
    };
    let int8 = run(QuantMode::Int8);
    let f32 = run(QuantMode::F32);

    // Zero leaks in both modes.
    assert_eq!(int8.leaked_sensitive_utterances(), 0);
    assert_eq!(f32.leaked_sensitive_utterances(), 0);
    // Identical cloud decisions, device by device.
    assert_eq!(int8.device_count(), f32.device_count());
    for (a, b) in int8.devices().iter().zip(f32.devices()) {
        assert_eq!(a.device, b.device);
        assert_eq!(
            a.report.cloud.report.received_dialog_ids(),
            b.report.cloud.report.received_dialog_ids(),
            "device {} diverged between int8 and f32 modes",
            a.device
        );
    }
    // Virtual-time accounting is mode-independent (both modes charge the
    // same MAC count), so the simulated figures agree too.
    assert_eq!(int8.total_world_switches(), f32.total_world_switches());
    assert_eq!(int8.mean_end_to_end(), f32.mean_end_to_end());
}

#[test]
fn int8_mode_shrinks_secure_ram_residency() {
    let models = SharedModels::for_config(&audio_config(QuantMode::Int8)).expect("models train");

    // Audio pipeline: the filter TA's declared data segment (and with it
    // the carve-out reservation) shrinks with the quantized weights.
    let int8 = SecurePipeline::with_models(audio_config(QuantMode::Int8), &models)
        .expect("int8 pipeline builds");
    let f32 = SecurePipeline::with_models(audio_config(QuantMode::F32), &models)
        .expect("f32 pipeline builds");
    let int8_ram = int8.platform().secure_ram().bytes_in_use();
    let f32_ram = f32.platform().secure_ram().bytes_in_use();
    assert!(
        int8_ram < f32_ram,
        "int8 residency {int8_ram} B not below f32 {f32_ram} B"
    );

    // Camera pipeline, same contract.
    let int8_cam = SecureCameraPipeline::with_models(camera_config(QuantMode::Int8), &models)
        .expect("int8 camera builds");
    let f32_cam = SecureCameraPipeline::with_models(camera_config(QuantMode::F32), &models)
        .expect("f32 camera builds");
    assert!(
        int8_cam.platform().secure_ram().bytes_in_use()
            < f32_cam.platform().secure_ram().bytes_in_use()
    );
}

#[test]
fn sharded_int8_pool_keeps_the_dedup_gates_and_shrinks_residency() {
    let models = SharedModels::deferred_for_config(&audio_config(QuantMode::Int8));
    let sharded = |mode: QuantMode, dedup: bool| {
        ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                camera: camera_config(mode),
                pool: TeePoolConfig::iot_quad_node(4),
                dedup_models: dedup,
                ..ShardedCameraConfig::default()
            },
            &models,
        )
        .expect("sharded pipeline builds")
    };

    // The quantized weights are what reserve_shared charges: int8 dedup
    // residency sits strictly below f32 dedup residency...
    let int8 = sharded(QuantMode::Int8, true);
    let f32 = sharded(QuantMode::F32, true);
    let int8_ram = int8.pool().secure_ram().bytes_in_use();
    let f32_ram = f32.pool().secure_ram().bytes_in_use();
    assert!(
        int8_ram < f32_ram,
        "sharded int8 residency {int8_ram} B not below f32 {f32_ram} B"
    );
    // ...and the E14 dedup invariant holds within int8 mode: dedup
    // strictly below duplicate residency, with real shared hits.
    let int8_dup = sharded(QuantMode::Int8, false);
    assert!(int8_ram < int8_dup.pool().secure_ram().bytes_in_use());
    assert_eq!(int8.pool().secure_ram().dedup_hits(), 3);
    assert!(int8.pool().secure_ram().dedup_saved_bytes() > 0);

    // And the sharded int8 run still filters identically to f32.
    let scenario = CameraScenario::mixed_scenes(12, 0.5, SimDuration::from_secs(2), 0x18A8);
    let mut int8 = int8;
    let mut f32 = f32;
    let a = int8.run_scenario(&scenario).expect("int8 run");
    let b = f32.run_scenario(&scenario).expect("f32 run");
    assert_eq!(a.report.cloud.leaked_sensitive_utterances(), 0);
    assert_eq!(
        a.report.cloud.report.received_dialog_ids(),
        b.report.cloud.report.received_dialog_ids()
    );
}
