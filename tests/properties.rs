//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use std::sync::OnceLock;

use perisec::core::policy::FilterDecision;
use perisec::core::stage::WindowVerdict;
use perisec::devices::codec::{bytes_to_pcm, mulaw_decode, mulaw_encode, pcm_to_bytes};
use perisec::ml::classifier::{Architecture, TrainConfig};
use perisec::ml::int8::{QuantFrameCnn, QuantSensitiveClassifier};
use perisec::ml::plan::FeaturePlan;
use perisec::ml::vision::{FrameCnn, VisionConfig};
use perisec::ml::SensitiveClassifier;
use perisec::optee::crypto::{aead_open, aead_seal, nonce_from_sequence};
use perisec::relay::avs::AvsEvent;
use perisec::relay::netsim::NetworkService;
use perisec::relay::{MockCloudService, SecureChannelClient, PSK_LEN};
use perisec::sched::scheduler::SessionScheduler;
use perisec::sched::stage::merge_verdicts;
use perisec::tz::secure_mem::SecureRam;
use perisec::tz::stats::TzStats;
use perisec::tz::time::SimDuration;
use perisec::workload::corpus::CorpusGenerator;
use perisec::workload::vocab::Vocabulary;

/// Decodes one drawn `u64` into a verdict (the vendored proptest has no
/// tuple/map strategies; deriving the fields from independent bit ranges
/// of one draw covers the same space).
fn verdict_from_seed(seed: u64) -> WindowVerdict {
    WindowVerdict {
        dialog_id: seed % 32,
        decision: match (seed >> 8) % 3 {
            0 => FilterDecision::Forward,
            1 => FilterDecision::ForwardRedacted,
            _ => FilterDecision::Drop,
        },
        probability_milli: ((seed >> 16) % 1001) as u16,
    }
}

/// One trained CNN classifier plus its int8 deployment form, shared by
/// every proptest case (training once keeps the property fast).
fn quant_pair() -> &'static (SensitiveClassifier, QuantSensitiveClassifier) {
    static PAIR: OnceLock<(SensitiveClassifier, QuantSensitiveClassifier)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let vocabulary = Vocabulary::smart_home();
        let mut generator = CorpusGenerator::new(vocabulary.clone(), 0.5, 0x18A7);
        let corpus = generator.generate(200);
        let examples: Vec<(Vec<usize>, bool)> = corpus
            .iter()
            .map(|u| (u.tokens.clone(), u.sensitive))
            .collect();
        let mut classifier =
            SensitiveClassifier::new(Architecture::Cnn, TrainConfig::small(vocabulary.len()));
        classifier.fit(&examples).expect("classifier trains");
        let int8 = QuantSensitiveClassifier::from_trained(&classifier).expect("cnn quantizes");
        (classifier, int8)
    })
}

/// One trained frame classifier plus its int8 form.
fn vision_quant_pair() -> &'static (FrameCnn, QuantFrameCnn) {
    static PAIR: OnceLock<(FrameCnn, QuantFrameCnn)> = OnceLock::new();
    PAIR.get_or_init(|| {
        let config = VisionConfig::smart_home();
        let examples: Vec<(Vec<u8>, bool)> = (0..80)
            .map(|i| {
                let sensitive = i % 2 == 0;
                let pixels: Vec<u8> = (0..config.width * config.height)
                    .map(|idx| {
                        let y = idx / config.width;
                        if sensitive {
                            if (y + i) % 4 < 2 {
                                225
                            } else {
                                45
                            }
                        } else {
                            115 + ((idx * 11 + i) % 12) as u8
                        }
                    })
                    .collect();
                (pixels, sensitive)
            })
            .collect();
        let mut cnn = FrameCnn::new(config);
        cnn.fit(&examples).expect("frame cnn trains");
        let int8 = QuantFrameCnn::from_trained(&cnn).expect("frame cnn quantizes");
        (cnn, int8)
    })
}

proptest! {
    /// PCM <-> little-endian byte encoding is lossless for any sample set.
    #[test]
    fn pcm_byte_round_trip(samples in proptest::collection::vec(any::<i16>(), 0..2048)) {
        prop_assert_eq!(bytes_to_pcm(&pcm_to_bytes(&samples)), samples);
    }

    /// µ-law companding bounds the relative error for every sample value.
    #[test]
    fn mulaw_error_is_bounded(samples in proptest::collection::vec(any::<i16>(), 1..512)) {
        let decoded = mulaw_decode(&mulaw_encode(&samples));
        for (&original, &restored) in samples.iter().zip(decoded.iter()) {
            let err = (original as i32 - restored as i32).abs();
            prop_assert!(err <= original.unsigned_abs() as i32 / 8 + 132,
                "sample {original} decoded to {restored}");
        }
    }

    /// The AEAD used by secure storage and the relay round-trips any
    /// payload and any associated data.
    #[test]
    fn aead_round_trip(
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        key_byte in any::<u8>(),
        sequence in any::<u64>(),
    ) {
        let key = [key_byte; 32];
        let nonce = nonce_from_sequence(sequence);
        let sealed = aead_seal(&key, &nonce, &aad, &payload);
        prop_assert_eq!(aead_open(&key, &nonce, &aad, &sealed).unwrap(), payload);
    }

    /// The secure-RAM allocator never leaks: after dropping every buffer the
    /// pool is back to empty, and it never hands out overlapping addresses.
    #[test]
    fn secure_ram_alloc_free_invariants(sizes in proptest::collection::vec(1usize..8192, 1..32)) {
        let ram = SecureRam::new(0xF000_0000, 1 << 20, TzStats::new());
        let mut buffers = Vec::new();
        for &size in &sizes {
            if let Ok(buf) = ram.alloc(size) {
                buffers.push(buf);
            }
        }
        // No two live buffers overlap.
        for (i, a) in buffers.iter().enumerate() {
            for b in buffers.iter().skip(i + 1) {
                let a_end = a.addr() + a.len() as u64;
                let b_end = b.addr() + b.len() as u64;
                prop_assert!(a_end <= b.addr() || b_end <= a.addr(),
                    "buffers overlap: {:#x}+{} and {:#x}+{}", a.addr(), a.len(), b.addr(), b.len());
            }
        }
        drop(buffers);
        prop_assert_eq!(ram.bytes_in_use(), 0);
    }

    /// Corpus labels always agree with the vocabulary's notion of
    /// sensitivity, for any seed and sensitive fraction.
    #[test]
    fn corpus_labels_are_consistent(seed in any::<u64>(), fraction in 0.0f64..1.0) {
        let vocabulary = Vocabulary::smart_home();
        let mut generator = CorpusGenerator::new(vocabulary.clone(), fraction, seed);
        for utterance in generator.generate(20) {
            prop_assert_eq!(utterance.sensitive, vocabulary.contains_sensitive(&utterance.tokens));
        }
    }

    /// Depth-limited decoding of batched image AVS events: a frame-verdict
    /// record wrapped in up to `MAX_BATCH_DEPTH` batch layers round-trips,
    /// while any crafted nesting beyond the cap is rejected with a codec
    /// error instead of recursing — the same guard the audio batch records
    /// rely on, so untrusted input can never choose the recursion depth.
    #[test]
    fn image_batch_nesting_is_depth_limited(
        dialog_id in any::<u64>(),
        frames in 1u32..64,
        probability_milli in 0u16..=1000,
        depth in 0usize..40,
    ) {
        let leaf = AvsEvent::FrameVerdict { dialog_id, frames, probability_milli };
        let mut event = leaf.clone();
        for _ in 0..depth {
            event = AvsEvent::Batch(vec![event]);
        }
        let decoded = AvsEvent::decode(&event.encode());
        if depth <= AvsEvent::MAX_BATCH_DEPTH {
            // In-cap nesting round-trips exactly, leaf intact.
            let mut inner = decoded.expect("in-cap nesting decodes");
            prop_assert_eq!(&inner, &event);
            for _ in 0..depth {
                inner = match inner {
                    AvsEvent::Batch(mut events) => {
                        prop_assert_eq!(events.len(), 1);
                        events.remove(0)
                    }
                    other => other,
                };
            }
            prop_assert_eq!(inner, leaf);
        } else {
            prop_assert!(decoded.is_err(), "nesting depth {} must be rejected", depth);
        }
    }

    /// Any strict prefix of an encoded batched AVS event fails to decode —
    /// a record truncated in flight can never mis-decode into a shorter
    /// but plausible decision stream (the length-prefixed entries make
    /// every cut detectable).
    #[test]
    fn truncated_batch_records_never_misdecode(
        dialog_ids in proptest::collection::vec(any::<u64>(), 1..8),
        cut in any::<u64>(),
    ) {
        let events: Vec<AvsEvent> = dialog_ids
            .iter()
            .map(|&id| AvsEvent::FrameVerdict {
                dialog_id: id,
                frames: 1 + (id % 16) as u32,
                probability_milli: (id % 1001) as u16,
            })
            .collect();
        let encoded = AvsEvent::Batch(events).encode();
        let cut = (cut as usize) % encoded.len();
        prop_assert!(
            AvsEvent::decode(&encoded[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte batch record decoded",
            encoded.len()
        );
    }

    /// A single bit flipped *anywhere* in a sealed explicit-sequence
    /// record — length header, record type, sequence, ciphertext or tag —
    /// makes the cloud reject it loudly (counted, never committed), and
    /// the intact record still commits afterwards.
    #[test]
    fn bitflipped_sealed_records_are_rejected_and_counted(
        dialog_id in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let psk = [0x42u8; PSK_LEN];
        let cloud = MockCloudService::new(psk);
        let mut client = SecureChannelClient::new(psk, 7);
        let server_hello = cloud.handle(1, &client.client_hello());
        client.process_server_hello(&server_hello).unwrap();
        let batch = AvsEvent::Batch(vec![AvsEvent::FrameVerdict {
            dialog_id,
            frames: 3,
            probability_milli: 500,
        }]);
        let record = client.seal_at(0, &batch.encode()).unwrap();
        let mut tampered = record.clone();
        let bit = (flip as usize) % (tampered.len() * 8);
        tampered[bit / 8] ^= 1 << (bit % 8);
        let response = cloud.handle(1, &tampered);
        prop_assert!(response.is_empty(), "tampered record was acknowledged");
        let report = cloud.report();
        prop_assert!(report.events.is_empty(), "tampered record committed a decision");
        prop_assert_eq!(report.rejected_records, 1);
        prop_assert_eq!(report.committed_records, 0);
        // Rejection is per-record: the intact original still commits.
        let ack = cloud.handle(1, &record);
        prop_assert!(!ack.is_empty());
        let report = cloud.report();
        prop_assert_eq!(report.events.len(), 1);
        prop_assert_eq!(report.committed_records, 1);
    }

    /// Sharded verdict merging is permutation- and partition-invariant:
    /// however the scheduler splits a batch's windows across {1,2,4,8}
    /// sessions, and in whatever order the per-shard replies come back,
    /// the merged verdict list is identical — the property that makes the
    /// sharded pipeline's cloud outcome equal the unsharded pipeline's
    /// (pinned end to end by `tests/shard_parity.rs`).
    #[test]
    fn sharded_verdict_merging_is_partition_invariant(
        verdict_seeds in proptest::collection::vec(any::<u64>(), 0..64),
        order in any::<u64>(),
    ) {
        let verdicts: Vec<WindowVerdict> =
            verdict_seeds.iter().copied().map(verdict_from_seed).collect();
        let reference = merge_verdicts(verdicts.clone());
        for shards in [1usize, 2, 4, 8] {
            // Partition with the real scheduler, exactly as the sharded
            // stages do (weight 1 per window here; any weights give a
            // valid partition).
            let mut scheduler = SessionScheduler::new(shards);
            let assignment = scheduler.assign(&vec![1u64; verdicts.len()]);
            let mut shard_replies: Vec<Vec<WindowVerdict>> = vec![Vec::new(); shards];
            for (verdict, &shard) in verdicts.iter().zip(&assignment) {
                shard_replies[shard].push(*verdict);
            }
            // Shard replies arrive in an arbitrary order.
            let mut rotation = (order as usize) % shards.max(1);
            let mut collected = Vec::with_capacity(verdicts.len());
            for _ in 0..shards {
                collected.extend(shard_replies[rotation].iter().copied());
                rotation = (rotation + 1) % shards;
            }
            prop_assert_eq!(merge_verdicts(collected), reference.clone(),
                "merge diverged at {} shards", shards);
        }
        // The merged list is sorted and free of duplicate dialog ids.
        for pair in reference.windows(2) {
            prop_assert!(pair[0].dialog_id < pair[1].dialog_id);
        }
    }

    /// Virtual durations add up associatively and never go negative.
    #[test]
    fn sim_duration_arithmetic(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!((da - db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(da + SimDuration::ZERO, da);
    }

    /// The scheduler's steal pass never drops or duplicates a window, its
    /// load account stays an exact tally of the assignment, the cumulative
    /// makespan never exceeds the greedy scheduler's, and mirrored
    /// schedulers make identical steal decisions — for any batch split of
    /// any ragged weight sequence on any session count, and for any
    /// per-window fixed cost (the crossing + dispatch overhead the steal
    /// weights model on top of frames).
    #[test]
    fn work_stealing_scheduler_invariants(
        weight_seeds in proptest::collection::vec(any::<u64>(), 1..48),
        shape in any::<u64>(),
    ) {
        let sessions = (shape % 7 + 1) as usize;
        let batch = (shape >> 8) as usize % 9 + 1;
        let overhead = (shape >> 16) % 24;
        let weights: Vec<u64> = weight_seeds.iter().map(|s| s % 32).collect();
        let mut stealing = SessionScheduler::with_window_overhead(sessions, overhead);
        let mut mirror = SessionScheduler::with_window_overhead(sessions, overhead);
        for chunk in weights.chunks(batch) {
            // The makespan guarantee is per batch, against the same
            // prior state: stealing never places this batch worse than
            // plain greedy would have from here.
            let mut greedy = stealing.clone();
            greedy.assign(chunk);
            let (assignment, steals) = stealing.assign_with_stealing(chunk);
            let greedy_makespan = greedy.loads().iter().map(|l| l.weight).max().unwrap_or(0);
            let stealing_makespan =
                stealing.loads().iter().map(|l| l.weight).max().unwrap_or(0);
            prop_assert!(
                stealing_makespan <= greedy_makespan,
                "stealing makespan {} exceeds greedy {} on the same batch",
                stealing_makespan,
                greedy_makespan
            );
            // Mirrored schedulers agree on placement *and* steals.
            prop_assert_eq!(
                mirror.assign_with_stealing(chunk),
                (assignment.clone(), steals.clone())
            );
            // Every window placed exactly once, on a real session.
            prop_assert_eq!(assignment.len(), chunk.len());
            for &session in &assignment {
                prop_assert!(session < sessions);
            }
            // Steal records describe the final placement, in effective
            // (overhead-inclusive) weights.
            for steal in &steals {
                prop_assert_eq!(assignment[steal.window], steal.to);
                prop_assert!(steal.from != steal.to);
                prop_assert_eq!(steal.weight, chunk[steal.window].max(1) + overhead);
            }
        }
        // The load account tallies the full sequence: nothing dropped,
        // nothing duplicated.
        let total_windows: u64 = weights.len() as u64;
        let total_weight: u64 = weights.iter().map(|w| (*w).max(1) + overhead).sum();
        prop_assert_eq!(
            stealing.loads().iter().map(|l| l.windows).sum::<u64>(),
            total_windows
        );
        prop_assert_eq!(
            stealing.loads().iter().map(|l| l.weight).sum::<u64>(),
            total_weight
        );
    }

    /// The int8 and f32 forward passes agree within a bounded tolerance
    /// on *random* token sequences — including token ids outside the
    /// vocabulary and degenerate lengths — and the int8 path is
    /// deterministic across independent scratch plans.
    #[test]
    fn int8_and_f32_classifiers_agree_within_tolerance(
        token_seeds in proptest::collection::vec(any::<u64>(), 0..16),
    ) {
        let (f32_model, int8_model) = quant_pair();
        let tokens: Vec<usize> = token_seeds.iter().map(|s| (s % 96) as usize).collect();
        let p_f32 = f32_model.predict(&tokens).expect("f32 predicts");
        let mut plan = FeaturePlan::new();
        let p_int8 = int8_model.predict_with(&tokens, &mut plan).expect("int8 predicts");
        prop_assert!(
            (p_f32 - p_int8).abs() <= 0.2,
            "probability drift {} vs {} on {:?}",
            p_f32, p_int8, tokens
        );
        let mut fresh = FeaturePlan::new();
        prop_assert_eq!(
            int8_model.predict_with(&tokens, &mut fresh).expect("int8 repeats"),
            p_int8
        );
    }

    /// The int8 and f32 frame classifiers agree within a bounded
    /// tolerance on random frames.
    #[test]
    fn int8_and_f32_frame_cnns_agree_within_tolerance(pixel_seed in any::<u64>()) {
        let (f32_model, int8_model) = vision_quant_pair();
        let len = f32_model.frame_len();
        let pixels: Vec<u8> = (0..len)
            .map(|i| {
                let mixed = pixel_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add((i as u64).wrapping_mul(1442695040888963407));
                (mixed >> 33) as u8
            })
            .collect();
        let p_f32 = f32_model.predict(&pixels).expect("f32 predicts");
        let mut plan = FeaturePlan::new();
        let p_int8 = int8_model.predict_with(&pixels, &mut plan).expect("int8 predicts");
        prop_assert!(
            (p_f32 - p_int8).abs() <= 0.25,
            "frame probability drift {} vs {}",
            p_f32, p_int8
        );
    }

    /// The fleet executor never drops or duplicates a device task, for
    /// any fleet size, worker count, steal seed and yield pattern —
    /// every queued device reports exactly once, in device order.
    #[test]
    fn fleet_executor_never_drops_or_duplicates_tasks(
        shape in any::<u64>(),
        yield_seeds in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        use perisec::core::executor::{
            DeviceTask, ExecutorConfig, FleetExecutor, QueuedDevice, StepOutcome,
        };
        use perisec::core::fleet::{DeviceReport, Modality};
        use perisec::core::report::{CloudOutcome, LatencyBreakdown, PipelineReport, WorkloadSummary};

        struct SyntheticTask {
            device: usize,
            yields: usize,
        }
        impl DeviceTask for SyntheticTask {
            fn step(&mut self) -> perisec::core::Result<StepOutcome> {
                if self.yields == 0 {
                    return Ok(StepOutcome::Complete(Box::new(DeviceReport {
                        device: self.device,
                        modality: Modality::Audio,
                        scenario: format!("prop-{}", self.device),
                        report: PipelineReport {
                            pipeline: "synthetic".to_owned(),
                            workload: WorkloadSummary::default(),
                            latency: LatencyBreakdown::default(),
                            cloud: CloudOutcome::default(),
                            tz: Default::default(),
                            energy: perisec::tz::power::EnergyReport {
                                window: SimDuration::ZERO,
                                total_mj: 0.0,
                                per_component: Default::default(),
                            },
                            virtual_time: SimDuration::ZERO,
                            bytes_to_cloud: 0,
                        },
                    })));
                }
                self.yields -= 1;
                Ok(StepOutcome::Yielded)
            }
        }

        let workers = (shape % 6 + 1) as usize;
        let steal_seed = shape >> 8;
        let tasks: Vec<QueuedDevice> = yield_seeds
            .iter()
            .enumerate()
            .map(|(device, &seed)| {
                let yields = (seed % 7) as usize;
                QueuedDevice::new(device, move || {
                    Ok(Box::new(SyntheticTask { device, yields }) as Box<dyn DeviceTask>)
                })
            })
            .collect();
        let devices = tasks.len();
        let executor = FleetExecutor::new(ExecutorConfig {
            workers,
            steal_seed,
            ..ExecutorConfig::default()
        });
        let (reports, stats) = executor.run(tasks).unwrap();
        prop_assert_eq!(reports.len(), devices);
        for (index, report) in reports.iter().enumerate() {
            prop_assert_eq!(report.device, index);
            prop_assert_eq!(&report.scenario, &format!("prop-{}", index));
        }
        prop_assert_eq!(stats.completed, devices);
        prop_assert!(stats.peak_resident <= stats.workers);
    }
}

/// Decodes one drawn `u64` into a device telemetry snapshot: a few
/// histogram recordings and counters over a fixed name set, all derived
/// from independent bit ranges of the draw.
fn device_telemetry_from_seed(seed: u64) -> perisec::telemetry::DeviceTelemetry {
    use perisec::telemetry::{DeviceTelemetry, LogHistogram};
    const NAMES: [&str; 4] = ["stage.filter", "smc.call", "ta.classify", "tee.rpc"];
    let mut telemetry = DeviceTelemetry::default();
    for (i, name) in NAMES.iter().enumerate() {
        let bits = seed >> (i * 16) & 0xFFFF;
        if bits == 0 {
            continue;
        }
        let mut histogram = LogHistogram::new();
        for n in 0..bits % 5 + 1 {
            histogram.record(SimDuration::from_nanos(bits * 37 + n * 13 + 1));
        }
        telemetry.histograms.insert(name, histogram);
        telemetry.counters.insert(name, bits % 5 + 1);
    }
    telemetry.dropped_spans = seed % 3;
    telemetry
}

proptest! {
    /// The fleet telemetry fold is order-invariant and merge is
    /// commutative/associative: absorbing devices in any order, or
    /// folding any partition of them into partial folds and merging
    /// those in any order, yields the same `FleetTelemetry`. This is the
    /// structural property that keeps fleet telemetry deterministic
    /// under work stealing at any worker count.
    #[test]
    fn telemetry_fold_is_order_invariant(
        device_seeds in proptest::collection::vec(any::<u64>(), 1..24),
        split_seed in any::<u64>(),
    ) {
        use perisec::telemetry::FleetTelemetry;
        let devices: Vec<_> = device_seeds
            .iter()
            .map(|&seed| device_telemetry_from_seed(seed))
            .collect();

        let mut forward = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate() {
            forward.absorb(i, d.clone());
        }
        let mut backward = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate().rev() {
            backward.absorb(i, d.clone());
        }
        prop_assert_eq!(&forward, &backward);

        // Partition by one seed bit per device, fold each side, merge in
        // both orders: both equal the flat fold (associativity plus
        // commutativity over an arbitrary partition).
        let mut left = FleetTelemetry::new();
        let mut right = FleetTelemetry::new();
        for (i, d) in devices.iter().enumerate() {
            if split_seed >> (i % 64) & 1 == 0 {
                left.absorb(i, d.clone());
            } else {
                right.absorb(i, d.clone());
            }
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(&lr, &forward);
        prop_assert_eq!(&rl, &forward);
        prop_assert_eq!(forward.devices, devices.len() as u64);
    }
}
