//! Sharded-vs-unsharded parity and scale-out acceptance — the multi-core
//! scheduler's mirror of `tests/batch_parity.rs`.
//!
//! The sharding contract: fanning one camera's stream across N TA
//! sessions changes *throughput*, never *outcome*.
//!
//! * identical cloud outcomes (same dialog ids received, zero sensitive
//!   leaks) for shards in {1, 2, 4, 8}, and identical to the unsharded
//!   `SecureCameraPipeline`;
//! * every shard session really participates (per-core SMCs > 0);
//! * on the quad-core IoT gateway a high-fps stream misses its frame
//!   budget with one session and meets it with two or four;
//! * with >= 2 co-resident sessions, secure-RAM residency with model
//!   dedup stays strictly below residency without it.

use perisec::core::pipeline::{CameraPipelineConfig, SecureCameraPipeline, SharedModels};
use perisec::ml::classifier::Architecture;
use perisec::sched::pipeline::{ShardedCameraConfig, ShardedVisionPipeline};
use perisec::sched::pool::TeePoolConfig;
use perisec::workload::scenario::CameraScenario;

fn camera_config(batch_windows: usize) -> CameraPipelineConfig {
    CameraPipelineConfig {
        batch_windows,
        ..CameraPipelineConfig::default()
    }
}

fn sharded_config(shards: usize, pool: TeePoolConfig) -> ShardedCameraConfig {
    ShardedCameraConfig {
        camera: camera_config(4),
        pool: TeePoolConfig {
            cores: shards,
            ..pool
        },
        ..ShardedCameraConfig::default()
    }
}

#[test]
fn sharding_preserves_cloud_outcomes_across_shard_counts() {
    // One model set for every run, so outcomes can only differ through
    // the sharding itself.
    let models =
        SharedModels::deferred(Architecture::Cnn, 16, 0x5A2D).with_vision_spec(120, 0x5A2D);
    let scenario = CameraScenario::high_fps(32, 4, 12_000, 0.4, 0x5A2D);
    assert!(scenario.sensitive_count() > 0);

    let mut unsharded =
        SecureCameraPipeline::with_models(camera_config(4), &models).expect("unsharded builds");
    let reference = unsharded.run_scenario(&scenario).expect("unsharded runs");
    assert_eq!(reference.cloud.leaked_sensitive_utterances(), 0);
    let reference_ids = reference.cloud.report.received_dialog_ids();
    assert!(!reference_ids.is_empty());

    for shards in [1usize, 2, 4, 8] {
        let mut pipeline = ShardedVisionPipeline::with_models(
            sharded_config(shards, TeePoolConfig::jetson(shards)),
            &models,
        )
        .expect("sharded pipeline builds");
        let run = pipeline.run_scenario(&scenario).expect("sharded run");

        // The privacy ledger is identical to the unsharded pipeline's.
        assert_eq!(
            run.report.cloud.leaked_sensitive_utterances(),
            0,
            "{shards} shards leaked sensitive content"
        );
        assert_eq!(
            run.report.cloud.report.received_dialog_ids(),
            reference_ids,
            "cloud outcome diverged at {shards} shards"
        );
        // Verdict records only — pixels never cross outward.
        assert!(run
            .report
            .cloud
            .report
            .events
            .iter()
            .all(|e| e.audio_bytes == 0 && e.encrypted));
        // Every session actually served windows through its own core.
        assert_eq!(run.per_core.len(), shards);
        for core in &run.per_core {
            assert!(core.smc_calls > 0, "core {} of {shards} idle", core.core);
            assert!(core.utilization > 0.0);
        }
        assert_eq!(run.report.workload.utterances, scenario.len());
    }
}

#[test]
fn high_fps_stream_needs_at_least_two_shards_on_the_quad_node() {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 0xE14).with_vision_spec(120, 0xE14);
    let scenario = CameraScenario::high_fps(48, 4, 12_000, 0.4, 0xE14);
    let deadline = scenario.duration() + scenario.event_spacing();

    let mut met = Vec::new();
    let mut clocks = Vec::new();
    for shards in [1usize, 2, 4] {
        let mut pipeline = ShardedVisionPipeline::with_models(
            sharded_config(shards, TeePoolConfig::iot_quad_node(shards)),
            &models,
        )
        .expect("sharded pipeline builds");
        let run = pipeline.run_scenario(&scenario).expect("sharded run");
        assert_eq!(run.report.cloud.leaked_sensitive_utterances(), 0);
        met.push(run.kept_up(deadline));
        clocks.push(run.report.virtual_time);
    }
    // One session is outrun by the stream; two and four keep up.
    assert!(
        !met[0],
        "single session unexpectedly met the frame budget ({} <= {deadline})",
        clocks[0]
    );
    assert!(
        met[1],
        "2 shards missed the budget ({} > {deadline})",
        clocks[1]
    );
    assert!(
        met[2],
        "4 shards missed the budget ({} > {deadline})",
        clocks[2]
    );
    // More shards never slow the device down.
    assert!(clocks[1] < clocks[0]);
    assert!(clocks[2] <= clocks[1]);
}

#[test]
fn work_stealing_cuts_tail_latency_on_ragged_mixes_without_changing_outcomes() {
    // A bursty sensor: window frame counts vary 4..=20, so greedy
    // least-loaded placement strands heavy windows on already-loaded
    // sessions. The 96 kfps average rate outruns the two-session pool,
    // so the run clock is the processing makespan — the regime where
    // placement quality shows up as tail latency.
    let models =
        SharedModels::deferred(Architecture::Cnn, 16, 0x57EA).with_vision_spec(120, 0x57EA);
    let scenario = CameraScenario::ragged_high_fps(64, 4, 20, 96_000, 0.4, 0xBEEF);

    let config = |stealing: bool| ShardedCameraConfig {
        camera: camera_config(8),
        pool: TeePoolConfig::iot_quad_node(2),
        work_stealing: stealing,
        ..ShardedCameraConfig::default()
    };
    let mut greedy_pipeline =
        ShardedVisionPipeline::with_models(config(false), &models).expect("greedy builds");
    let greedy = greedy_pipeline
        .run_scenario(&scenario)
        .expect("greedy runs");
    let mut stealing_pipeline =
        ShardedVisionPipeline::with_models(config(true), &models).expect("stealing builds");
    let stealing = stealing_pipeline
        .run_scenario(&scenario)
        .expect("stealing runs");

    // The steal pass really fired on this mix, and only on the stealing
    // pipeline.
    assert_eq!(greedy.stolen_windows, 0);
    assert!(
        stealing.stolen_windows > 0,
        "ragged mix triggered no steals"
    );
    // Rebalancing changes placement, never outcome: the same windows
    // reach the cloud and nothing sensitive leaks.
    assert_eq!(stealing.report.cloud.leaked_sensitive_utterances(), 0);
    assert_eq!(
        stealing.report.cloud.report.received_dialog_ids(),
        greedy.report.cloud.report.received_dialog_ids(),
        "stealing diverged the cloud outcome"
    );
    // The point of the pass: the slowest core finishes earlier, so the
    // run clock and the p99 window latency both drop.
    assert!(
        stealing.report.virtual_time < greedy.report.virtual_time,
        "stealing run clock {} did not beat greedy {}",
        stealing.report.virtual_time,
        greedy.report.virtual_time
    );
    assert!(
        stealing.report.latency.p99_end_to_end() < greedy.report.latency.p99_end_to_end(),
        "stealing p99 {} did not beat greedy {}",
        stealing.report.latency.p99_end_to_end(),
        greedy.report.latency.p99_end_to_end()
    );
}

#[test]
fn model_dedup_strictly_undercuts_duplicate_reservations() {
    let models = SharedModels::deferred(Architecture::Cnn, 16, 0xDEDA).with_vision_spec(96, 0xDEDA);
    for shards in [2usize, 4] {
        let with_dedup = ShardedVisionPipeline::with_models(
            sharded_config(shards, TeePoolConfig::jetson(shards)),
            &models,
        )
        .expect("dedup pipeline builds");
        let without_dedup = ShardedVisionPipeline::with_models(
            ShardedCameraConfig {
                dedup_models: false,
                ..sharded_config(shards, TeePoolConfig::jetson(shards))
            },
            &models,
        )
        .expect("no-dedup pipeline builds");
        let deduped = with_dedup.pool().secure_ram().bytes_in_use();
        let duplicated = without_dedup.pool().secure_ram().bytes_in_use();
        assert!(
            deduped < duplicated,
            "{shards} sessions: dedup {deduped} B not below duplicated {duplicated} B"
        );
        // The dedup counters account for the gap (up to one allocation
        // alignment per session: the split into private + shared parts
        // may round each part up separately).
        let accounted = deduped as u64 + with_dedup.pool().secure_ram().dedup_saved_bytes();
        assert!(accounted >= duplicated as u64);
        assert!(accounted <= duplicated as u64 + 64 * shards as u64);
        assert_eq!(
            with_dedup.pool().secure_ram().dedup_hits(),
            shards as u64 - 1
        );
    }
}
