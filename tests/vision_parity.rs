//! Vision-path parity and privacy acceptance — the camera-modality mirror
//! of `tests/batch_parity.rs`.
//!
//! The secure camera pipeline may batch N frame windows per TEE crossing;
//! these tests pin down the contract:
//!
//! * **zero sensitive frames relayed** at every batch size, while at least
//!   90% of non-sensitive scene events still reach the cloud as verdict
//!   records;
//! * identical cloud outcomes at batch 1 and batch 8;
//! * `TzStats::world_switches` strictly decreases as the batch grows;
//! * nothing that reaches the cloud ever carries pixel payload bytes.

use perisec::core::fleet::{FleetConfig, Modality, PipelineFleet};
use perisec::core::pipeline::{
    CameraPipelineConfig, PipelineConfig, SecureCameraPipeline, SharedModels,
};
use perisec::tz::time::SimDuration;
use perisec::workload::scenario::{CameraScenario, Scenario};

fn camera_config(batch_windows: usize) -> CameraPipelineConfig {
    CameraPipelineConfig {
        batch_windows,
        ..CameraPipelineConfig::default()
    }
}

#[test]
fn camera_batching_amortizes_world_switches_without_changing_privacy_outcomes() {
    // One model set for every batch size, so outcomes can only differ
    // through the batching itself. Deferred: only the frame classifier
    // ever trains — this test runs no audio pipeline.
    let models = SharedModels::deferred_for_config(&PipelineConfig::default());
    let scenario = CameraScenario::mixed_scenes(16, 0.4, SimDuration::from_secs(2), 0xCAFE7);
    assert!(scenario.sensitive_count() > 0);
    let neutral = scenario.len() - scenario.sensitive_count();

    let mut switches_per_event = Vec::new();
    let mut baseline_outcome = None;
    for batch in [1usize, 2, 4, 8] {
        let mut pipeline = SecureCameraPipeline::with_models(camera_config(batch), &models)
            .expect("pipeline builds");
        let report = pipeline.run_scenario(&scenario).expect("scenario runs");

        // Zero sensitive frames relayed, at every batch size.
        assert_eq!(
            report.cloud.leaked_sensitive_utterances(),
            0,
            "batch {batch} leaked a sensitive scene"
        );
        // ...while non-sensitive traffic flows: >= 90% of neutral scene
        // events produce a verdict record at the cloud.
        assert!(
            report.cloud.received_utterances() * 10 >= neutral * 9,
            "batch {batch}: only {}/{neutral} neutral events reached the cloud",
            report.cloud.received_utterances()
        );
        // No pixel data ever crosses the TEE boundary outward: every
        // event the cloud decoded is a payload-free verdict record.
        for event in &report.cloud.report.events {
            assert_eq!(
                event.audio_bytes, 0,
                "batch {batch} relayed payload bytes to the cloud"
            );
            assert!(event.encrypted, "batch {batch} relayed in plaintext");
        }

        // Identical cloud outcomes across batch sizes.
        let outcome = (
            report.cloud.report.received_dialog_ids(),
            report.cloud.leaked_sensitive_utterances(),
        );
        match &baseline_outcome {
            None => baseline_outcome = Some(outcome),
            Some(expected) => assert_eq!(
                &outcome, expected,
                "cloud outcome diverged at batch {batch}"
            ),
        }

        // Every event was processed and the TEE was really crossed.
        assert_eq!(report.workload.utterances, scenario.len());
        assert!(report.tz.smc_calls >= scenario.len().div_ceil(batch) as u64);
        switches_per_event.push(report.tz.world_switches as f64 / scenario.len() as f64);
    }

    // World switches per frame event strictly decrease with the batch size.
    for pair in switches_per_event.windows(2) {
        assert!(
            pair[1] < pair[0],
            "world switches did not decrease: {switches_per_event:?}"
        );
    }
    // Batch 8 is at least 4x cheaper than batch 1.
    let unbatched = switches_per_event[0];
    let batched = *switches_per_event.last().expect("swept batches");
    assert!(
        unbatched >= 4.0 * batched,
        "expected >= 4x fewer world switches per event at batch 8: \
         batch1 = {unbatched:.2}, batch8 = {batched:.2}"
    );
}

#[test]
fn mixed_fleet_filters_both_modalities_off_one_model_set() {
    let fleet = PipelineFleet::new(FleetConfig {
        devices: 4,
        pipeline: PipelineConfig {
            train_utterances: 160,
            batch_windows: 8,
            policy: perisec::core::policy::PrivacyPolicy {
                mode: perisec::core::policy::FilterMode::BlockSensitive,
                threshold: 0.8,
                lexical_guard: true,
            },
            ..PipelineConfig::default()
        },
        camera_devices: 4,
        camera_pipeline: camera_config(8),
        ..FleetConfig::of(0)
    })
    .expect("fleet trains once");
    let audio = Scenario::fleet(4, 8, 0.25, SimDuration::from_secs(2), 0xF1EE7);
    let cameras = CameraScenario::fleet_cameras(4, 8, 0.25, SimDuration::from_secs(2), 0xF1EE8);
    let report = fleet.run_mixed(&audio, &cameras).expect("fleet runs");

    assert_eq!(report.device_count(), 8);
    assert_eq!(report.device_count_of(Modality::Audio), 4);
    assert_eq!(report.device_count_of(Modality::Camera), 4);
    assert_eq!(report.total_utterances(), 64);
    assert!(report.total_sensitive_utterances() > 0);
    // Fleet-wide: nothing sensitive leaks from either modality.
    assert_eq!(report.leaked_sensitive_utterances(), 0);
    // Every device crossed its own TEE; batching keeps the fleet under 2
    // world switches per event.
    assert!(report.total_smc_calls() >= 8);
    assert!(
        report.world_switches_per_utterance() < 2.0,
        "switches/event = {:.2}",
        report.world_switches_per_utterance()
    );
    // Camera devices relayed verdict records only.
    for device in report.devices() {
        if device.modality == Modality::Camera {
            assert!(device
                .report
                .cloud
                .report
                .events
                .iter()
                .all(|e| e.audio_bytes == 0));
        }
    }
}
