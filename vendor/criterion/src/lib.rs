//! In-repo stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal benchmark harness exposing the slice of criterion's API its
//! benches use: [`Criterion::benchmark_group`], `sample_size`,
//! `throughput`, `bench_function`, `bench_with_input`, [`BenchmarkId`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Timing is a simple mean over a bounded number of iterations — enough to
//! print comparable numbers, with none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{parameter}", function.into()),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (bounded to keep runs short).
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.clamp(1, 50);
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        if bencher.iterations == 0 {
            println!("{label}: no iterations");
            return;
        }
        let mean = bencher.elapsed / bencher.iterations as u32;
        match self.throughput {
            Some(Throughput::Bytes(bytes)) => {
                let mib_s =
                    bytes as f64 / 1024.0 / 1024.0 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                println!("{label}: {mean:?}/iter ({mib_s:.1} MiB/s)");
            }
            Some(Throughput::Elements(elements)) => {
                let elem_s = elements as f64 / mean.as_secs_f64().max(f64::MIN_POSITIVE);
                println!("{label}: {mean:?}/iter ({elem_s:.0} elem/s)");
            }
            None => println!("{label}: {mean:?}/iter"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to each benchmark closure to drive the timed loop.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` over a bounded number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then the timed samples.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += self.samples as u64;
    }
}

/// Declares a benchmark entry function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
