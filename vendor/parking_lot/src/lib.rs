//! In-repo stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the workspace vendors the small slice of `parking_lot`'s API it uses:
//! [`Mutex`] and [`RwLock`] whose guards are returned directly (no
//! poisoning `Result`s). The implementation simply wraps the `std::sync`
//! primitives and recovers from poisoning, which matches `parking_lot`'s
//! observable behaviour for this codebase.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: match self.inner.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: match self.inner.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            },
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
