//! In-repo stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest's API its property tests use: the [`proptest!`]
//! macro over `arg in strategy` bindings, [`prelude::any`], integer/float
//! range strategies, [`collection::vec`], and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros. Sampling is
//! deterministic per test (seeded from the test name), with no shrinking —
//! a failing case reports the case number instead.

/// Number of cases each property runs.
pub const NUM_CASES: usize = 48;

/// Deterministic test RNG (splitmix64 stream).
pub mod test_runner {
    /// The random source handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from an arbitrary string (the test name).
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                seed ^= u64::from(byte);
                seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty bound");
            self.next_u64() % bound
        }
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A value-generation recipe.
    pub trait Strategy {
        /// Type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy of any value of a type (see [`crate::prelude::any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> AnyStrategy<T> {
        /// Creates the strategy.
        pub fn new() -> Self {
            AnyStrategy {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, roughly symmetric values are what the tests want.
            (rng.unit_f64() - 0.5) * 2.0e9
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f64::arbitrary(rng) as f32
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = u128::from(rng.next_u64()) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = u128::from(rng.next_u64()) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.unit_f64() as $t * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    start + rng.unit_f64() as $t * (end - start)
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// `Vec` strategy over an element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element,
            min_len: size.start,
            max_len_exclusive: size.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len_exclusive - self.min_len) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported prelude.
pub mod prelude {
    pub use crate::strategy::{Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Strategy of any value of `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::AnyStrategy<T> {
        crate::strategy::AnyStrategy::new()
    }
}

/// Defines property tests: `proptest! { #[test] fn name(arg in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("property {} failed on case {case}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// Property-test assertion: fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`", left, right));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                left,
                right
            ));
        }
    }};
}
