//! In-repo stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand`'s 0.8 API it actually uses: [`SeedableRng`]
//! (`seed_from_u64`), [`Rng`] (`gen_range`, `gen_bool`), the
//! [`rngs::SmallRng`] generator, and [`seq::SliceRandom`]
//! (`choose`/`shuffle`). The generator is xoshiro256++ seeded through
//! splitmix64 — fast, deterministic and statistically sound for the
//! simulation and training workloads in this repository (no cryptographic
//! claims, exactly like the real `SmallRng`).

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let f = unit_f64(rng) as $t;
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let f = unit_f64(rng) as $t;
                start + f * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            SmallRng {
                state: [
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                    splitmix64(&mut s),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.state = [s0, s1, s2, s3];
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-10..10i16);
            assert!((-10..10).contains(&v));
            let f = rng.gen_range(-1.0..=1.0f64);
            assert!((-1.0..=1.0).contains(&f));
            let u = rng.gen_range(4..=10usize);
            assert!((4..=10).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: Vec<i32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
        let mut order: Vec<usize> = (0..100).collect();
        order.shuffle(&mut rng);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(order, sorted, "shuffle should permute");
    }
}
