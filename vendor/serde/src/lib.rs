//! In-repo stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a miniature serde: instead of the visitor-based zero-copy architecture,
//! types convert to and from a self-describing [`value::Value`] tree. The
//! companion `serde_derive` proc-macro crate provides `#[derive(Serialize,
//! Deserialize)]` for structs and enums, and `serde_json` renders and
//! parses `Value` as JSON. The API surface is exactly what this workspace
//! uses; it makes no attempt at drop-in compatibility beyond that.

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

use value::Value;

/// Error produced while converting a [`Value`] back into a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion out of the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ----- primitive impls ----------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::UInt(n) => i128::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::custom("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(Error::custom(format!(
                        "expected integer, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!(
                "expected single-char string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(Error::custom(format!(
                "expected 3-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (stringify_key(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (stringify_key(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort the rendered values so output is deterministic.
        let mut values: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        values.sort_by_key(|v| format!("{v:?}"));
        Value::Array(values)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, found {}",
                other.kind()
            ))),
        }
    }
}

/// Rebuilds a map key from its object-key string: first as a string value
/// (covers `String` and unit-enum keys), then as an integer.
fn key_from_str<K: Deserialize>(key: &str) -> Result<K, Error> {
    if let Ok(k) = K::from_value(&Value::Str(key.to_owned())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<u128>() {
        return K::from_value(&Value::UInt(n));
    }
    if let Ok(n) = key.parse::<i128>() {
        return K::from_value(&Value::Int(n));
    }
    Err(Error::custom(format!("cannot reconstruct map key `{key}`")))
}

fn stringify_key(value: &Value) -> String {
    match value {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        other => format!("{other:?}"),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
