//! The self-describing value tree at the heart of the vendored serde.

/// A JSON-shaped value. Integers keep full 128-bit precision so `u64`
/// counters survive round trips; objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u128),
    /// Signed integer.
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable description of the variant, for error
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, crate::Error> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| crate::Error::custom(format!("missing field `{name}`"))),
            other => Err(crate::Error::custom(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Returns the single `(key, value)` entry of a one-entry object —
    /// the encoding the derive macro uses for data-carrying enum variants.
    pub fn single_entry(&self) -> Result<(&str, &Value), crate::Error> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), &entries[0].1))
            }
            other => Err(crate::Error::custom(format!(
                "expected single-entry object, found {}",
                other.kind()
            ))),
        }
    }

    /// Returns the string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
