//! In-repo stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` crate's `Value` data model. Because the build
//! environment has no crates.io access, this is written against bare
//! `proc_macro` — no `syn`, no `quote`: the input item is parsed with a
//! small hand-rolled token walker and the generated impls are assembled as
//! source strings.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums whose variants are unit, tuple, or struct-like.
//!
//! Generics and `#[serde(...)]` attributes are intentionally not
//! supported; the derive panics with a clear message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one parsed item looks like.
enum Item {
    /// `struct Name { fields }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T0, T1, ...);`
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Object(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         ::serde::value::Value::Array(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::value::Value {{\n\
                     ::serde::value::Value::Null\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::value::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                            let vals: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::value::Value::Array(::std::vec![{}]))]),",
                                binds.join(", "),
                                vals.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::value::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                  ::serde::value::Value::Object(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(value.field(\"{f}\")?)?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {} }})\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let items = value.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n\
                         if items.len() != {arity} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"wrong arity for tuple struct {name}\"));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(_value: &::serde::value::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                        vname = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let items = inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected array payload\"))?;\n\
                                     if items.len() != {arity} {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::Error::custom(\"wrong variant arity\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }},",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok(\
                                 {name}::{vname} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::value::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::value::Value::Str(tag) = value {{\n\
                             return match tag.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::Error::custom(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }};\n\
                         }}\n\
                         let (tag, inner) = value.single_entry()?;\n\
                         let _ = inner;\n\
                         match tag {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ----- token walking ------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic type `{name}` is not supported");
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_commas(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1;
        }
        match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
            other => panic!("serde_derive: malformed attribute near {other:?}"),
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{field}`, found {other:?}"),
        }
        skip_type_to_comma(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Advances past a type up to and including the next top-level `,`
/// (angle-bracket aware; grouped tokens are atomic).
fn skip_type_to_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*i) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Counts the fields of a tuple struct/variant from its paren contents.
fn count_top_level_commas(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1usize;
    let mut angle_depth = 0i32;
    for (idx, token) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                // A trailing comma does not introduce a new field.
                ',' if angle_depth == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_commas(g.stream());
                i += 1;
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
