//! In-repo stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` crate's `Value` tree as JSON and parses
//! JSON back into it. Only the entry points this workspace uses are
//! provided: [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Error raised while rendering or parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails for finite data; kept fallible for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for finite data; kept fallible for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    T::from_value(&value).map_err(Error::from)
}

// ----- rendering ----------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value parses back as a float.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&f.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----- parsing ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        let found = self.peek()?;
        if found != byte {
            return Err(Error::new(format!(
                "expected `{}` at offset {}, found `{}`",
                byte as char, self.pos, found as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let byte = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::new("unterminated string"))?;
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escape = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = text
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_whitespace();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&byte) = self.bytes.get(self.pos) {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at offset {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u128>()
                .map(|n| Value::Int(-(n as i128)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u128>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            ("name".into(), Value::Str("pipeline \"secure\"\n".into())),
            ("count".into(), Value::UInt(u64::MAX as u128)),
            ("delta".into(), Value::Int(-42)),
            ("ratio".into(), Value::Float(0.25)),
            ("whole".into(), Value::Float(3.0)),
            ("flag".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "items".into(),
                Value::Array(vec![Value::UInt(1), Value::UInt(2)]),
            ),
            ("empty".into(), Value::Array(Vec::new())),
        ]);
        for text in [
            to_string(&value).unwrap(),
            to_string_pretty(&value).unwrap(),
        ] {
            let parsed = super::parse_value(&text).unwrap();
            assert_eq!(parsed, value, "via {text}");
        }
    }

    #[test]
    fn malformed_json_is_rejected() {
        for bad in ["", "{", "[1,", "\"open", "nul", "{\"a\" 1}", "12 34", "-"] {
            assert!(super::parse_value(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whole_floats_keep_their_decimal_point() {
        let text = to_string(&Value::Float(5.0)).unwrap();
        assert_eq!(text, "5.0");
        assert_eq!(super::parse_value(&text).unwrap(), Value::Float(5.0));
    }
}
